"""Chaos crawl: the measurement study over a hostile network.

The paper's nine-month crawl fought rate limits, server hiccups, hung
redirect chains, and apps deleted mid-crawl.  This example replays the
study twice over the *same* simulated world — once through a perfect
network, once through a transport injecting a 20% per-request fault
rate — and shows what the resilience layer buys: almost every
transiently faulted collection recovers, the classifier's accuracy
barely moves, and the price is paid in simulated crawl hours instead
of lost data.

Run:  python examples/chaos_crawl.py
"""

from repro.config import ScaleConfig
from repro.core import FrappePipeline
from repro.crawler.crawler import outcome_tallies, recovery_rate
from repro.ecosystem.simulation import run_simulation

SCALE = 0.02
SEED = 2012
FAULT_RATE = 0.2


def run_study(fault_rate: float):
    config = ScaleConfig(scale=SCALE, master_seed=SEED, fault_rate=fault_rate)
    world = run_simulation(config)
    return FrappePipeline(config).run_on_world(world, sweep_unlabelled=False)


def accuracy(result) -> float:
    records, labels = result.sample_records()
    model = result.cascade or result.classifier
    predictions = model.predict(records)
    return sum(
        int(p) == label for p, label in zip(predictions, labels)
    ) / len(labels)


def main() -> None:
    print("Crawling through a perfect network (fault rate 0%) ...")
    clean = run_study(0.0)
    print(f"Crawling the same world at a {FAULT_RATE:.0%} fault rate ...\n")
    chaos = run_study(FAULT_RATE)

    stats = chaos.transport_stats
    print(f"requests            {stats.requests}")
    print(f"injected faults     {stats.fault_count()}")
    for kind, count in sorted(stats.injected.items()):
        print(f"    {kind:<15} {count}")
    print(f"feeds truncated     {stats.truncated_feeds}")
    print(f"apps vanished       {len(stats.vanished)} (deleted mid-crawl)")

    records = chaos.bundle.records
    rate = recovery_rate(records)
    print(f"\nrecovery rate       {rate:.1%} of faulted collections "
          "still reached a verdict")
    tallies = outcome_tallies(records)
    for collection, tally in tallies.items():
        counts = ", ".join(f"{k}: {v}" for k, v in sorted(tally.items()))
        print(f"    {collection:<8} {counts}")

    print(f"\nsimulated crawl     {clean.transport_stats.elapsed_s / 3600:5.1f} h "
          "fault-free")
    print(f"                    {stats.elapsed_s / 3600:5.1f} h under chaos "
          f"({stats.wait_s / 3600:.1f} h of backoff waiting)")

    print(f"\nD-Sample accuracy   {accuracy(clean):.1%} fault-free")
    print(f"                    {accuracy(chaos):.1%} under chaos "
          "(degraded records fall back through the cascade)")

    degraded = [r for r in records.values() if r.degraded]
    print(f"\n{len(degraded)} record(s) ended with an uninformative gap "
          "(crawler gave up):")
    for record in degraded[:5]:
        gaps = ", ".join(record.degraded_collections)
        tier = chaos.cascade.tier_of(record)
        print(f"    app {record.app_id}: lost [{gaps}] -> classified "
              f"by the {tier!r} tier")
    if not degraded:
        print("    (none — every faulted collection recovered this run)")


if __name__ == "__main__":
    main()
