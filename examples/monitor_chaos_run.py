"""Monitor chaos: SIGKILL an epoch worker mid-epoch, lose no history.

The watchdog FRAppE's conclusion calls for never gets to stop: it
re-crawls suspicious apps for months, through platform outages and its
own process deaths.  This example runs the same three-epoch monitoring
campaign twice over an identical simulated world at a 20% transport
fault rate with a sustained blackout window pinned across the first
epoch:

* **reference** — uninterrupted, inline epochs;
* **chaos** — supervised epochs with ``REPRO_MONITOR_CHAOS=kill:3``
  exported, so each epoch's first worker SIGKILLs itself right after
  its third durable observation.  The supervisor restarts it from the
  monitor journal and the epoch finishes where it left off.

Both runs must produce a **byte-identical** history store, exported
dataset, and recrawl-scheduler state.  The chaos run is traced; the
monitor journals and the trace land in an artifacts directory so CI
can upload them.

Run:    python examples/monitor_chaos_run.py
Output: $REPRO_MONITOR_ARTIFACTS (default ./monitor-artifacts)
Exits nonzero if chaos did not fire or any byte differs.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from pathlib import Path

from repro.config import ScaleConfig
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.monitor import (
    MONITOR_CHAOS_ENV,
    AppMonitor,
    MonitorConfig,
    MonitorJournal,
    SupervisedEpochRunner,
)
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper
from repro.obs import TracingObserver, observation

SCALE = 0.01
SEED = 2012
FAULT_RATE = 0.2
EPOCHS = 3
KILL_AFTER = 3  # observations a worker survives before its SIGKILL
#: one sustained outage the first epoch is guaranteed to crawl into:
#: long enough that a crawl entering it (burning its retry budget on
#: blackout faults) still ends inside, so the next dispatch poll sees
#: the window and pauses instead of crawling into the outage
BLACKOUT_WINDOW = (850.0, 5000.0)


def artifacts_dir() -> Path:
    root = Path(os.environ.get("REPRO_MONITOR_ARTIFACTS", "monitor-artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def fresh_monitor(journal_dir: Path) -> AppMonitor:
    """An identical world, sample, and monitor for each run."""
    world = run_simulation(ScaleConfig(
        scale=SCALE, master_seed=SEED, fault_rate=FAULT_RATE, blackouts=1,
    ))
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    sample = sorted(DatasetBuilder(world, report).build(crawl=False).d_sample)
    crawler = make_crawler(world)
    crawler.transport.plan = dataclasses.replace(
        crawler.transport.plan, blackout_windows=(BLACKOUT_WINDOW,)
    )
    return AppMonitor(
        world,
        crawler,
        sample,
        config=MonitorConfig(
            epochs=EPOCHS, stride_days=7, forensics=True, lifecycle=True
        ),
        journal=MonitorJournal(journal_dir),
    )


def main() -> int:
    root = artifacts_dir()

    print(f"Monitoring run 1/2: {EPOCHS} inline epochs, uninterrupted "
          f"(scale {SCALE}, fault rate {FAULT_RATE:.0%}, one blackout) ...")
    monitor = fresh_monitor(root / "reference")
    reference_report = monitor.run()
    reference_history = monitor.export_history_bytes()
    reference_dataset = monitor.export_dataset_bytes()
    reference_schedule = monitor.scheduler.snapshot()
    monitor.journal.close()

    print(f"Monitoring run 2/2: supervised epochs, "
          f"{MONITOR_CHAOS_ENV}=kill:{KILL_AFTER} — each epoch's first "
          "worker is SIGKILLed after its third observation ...")
    os.environ[MONITOR_CHAOS_ENV] = f"kill:{KILL_AFTER}"
    try:
        monitor = fresh_monitor(root / "chaos")
        runner = SupervisedEpochRunner(monitor)  # chaos comes from the env
        observer = TracingObserver()
        with observation(observer):
            for epoch in range(EPOCHS):
                runner.run_epoch(epoch)
    finally:
        del os.environ[MONITOR_CHAOS_ENV]
    chaos_report = monitor.report()
    chaos_history = monitor.export_history_bytes()
    chaos_dataset = monitor.export_dataset_bytes()
    chaos_schedule = monitor.scheduler.snapshot()
    monitor.journal.close()
    trace = observer.tracer.export(root / "monitor-trace.jsonl")

    kinds: dict[str, int] = {}
    for event in chaos_report.forensic_events:
        kinds[event.kind] = kinds.get(event.kind, 0) + 1
    print(f"\nworker restarts     {runner.restarts} (injected SIGKILL)")
    print(f"inline fallbacks    {runner.inline_fallbacks}")
    print(f"observations        {chaos_report.observations} durable "
          f"across {EPOCHS} epochs")
    print(f"backpressure pauses {chaos_report.pauses}")
    print(f"forensic events     {json.dumps(kinds, sort_keys=True)}")
    print(f"tier census         "
          f"{json.dumps(chaos_report.tier_census, sort_keys=True)}")
    print(f"monitor trace       {trace}")

    failures = []
    if runner.restarts < 1:
        failures.append("chaos did not fire (no worker was restarted)")
    if chaos_report.pauses < 1:
        failures.append("the blackout window never paused the scheduler")
    if chaos_history != reference_history:
        failures.append("history stores differ")
    if chaos_dataset != reference_dataset:
        failures.append("exported datasets differ")
    if chaos_schedule != reference_schedule:
        failures.append("recrawl scheduler states differ")
    if chaos_report.observations != reference_report.observations:
        failures.append("observation counts differ")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nhistory identical   {len(reference_history)} bytes, "
          "chaos == reference")
    print(f"dataset identical   {len(reference_dataset)} bytes")
    print("schedule identical  supervised run converged to the same tiers")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
