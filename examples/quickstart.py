"""Quickstart: build a simulated Facebook, run the FRAppE study end-to-end.

Runs the complete measurement chain at a small scale — ecosystem
simulation, MyPageKeeper post labelling, crawls, dataset construction,
FRAppE training, the unlabelled sweep, and validation — then evaluates
a single app ID on demand, the way a user-facing watchdog would.

Run:  python examples/quickstart.py
"""

from repro.config import ScaleConfig
from repro.core import FrappePipeline, frappe_lite


def main() -> None:
    print("Building the simulated world and running the pipeline ...")
    pipeline = FrappePipeline(ScaleConfig(scale=0.02, master_seed=7))
    result = pipeline.run(sweep_unlabelled=True)

    print("\n=== Table 1: datasets ===")
    for name, benign, malicious in result.bundle.table1_rows():
        if malicious < 0:
            print(f"  {name:<14} {benign} apps observed")
        else:
            print(f"  {name:<14} benign={benign:<5} malicious={malicious}")

    # Train FRAppE Lite (on-demand features only) on the labelled sample.
    records, labels = result.sample_records()
    lite = frappe_lite(result.extractor).fit(records, labels)

    # Evaluate one known-malicious and one known-benign app on demand.
    malicious_id = next(iter(result.bundle.d_sample_malicious))
    benign_id = next(iter(result.bundle.d_sample_benign))
    for app_id in (malicious_id, benign_id):
        record = result.bundle.records[app_id]
        verdict = "MALICIOUS" if lite.predict_one(record) else "benign"
        name = result.world.post_log.app_name(app_id) or "<unknown>"
        print(f"\nOn-demand check of app {app_id} ({name!r}): {verdict}")

    print("\n=== Sweep of the unlabelled apps (Sec 5.3) ===")
    validation = result.validation
    print(f"  flagged: {len(result.flagged_new)} apps")
    print(f"  validated: {validation.validated_fraction:.1%}")
    truth = result.world.truth_malicious_ids()
    precision = len(result.flagged_new & truth) / max(len(result.flagged_new), 1)
    print(f"  precision vs hidden ground truth: {precision:.1%}")


if __name__ == "__main__":
    main()
