"""How a malicious app spreads: the Fig 2 life-cycle on a social graph.

Simulates the paper's four-step operation of a malicious app over an
explicit friendship graph: a seed user is lured into installing the
app, the app exfiltrates the OAuth token, posts lures on the victim's
behalf, and the victim's friends click through and install in turn —
the epidemic the paper's click counts (Fig 3) reflect.

Run:  python examples/propagation_demo.py
"""

import numpy as np

from repro.platform.apps import AppRegistry
from repro.platform.install import InstallationService
from repro.platform.oauth import TokenService
from repro.platform.permissions import PUBLISH_STREAM
from repro.platform.posts import PostLog
from repro.platform.users import SocialGraph, UserBase


def main() -> None:
    rng = np.random.default_rng(13)
    n_users = 400
    users = UserBase(n_users, rng)
    friendships = SocialGraph(n_users, mean_friends=8, rng=rng)
    registry = AppRegistry(rng)
    tokens = TokenService()
    installer = InstallationService(registry, tokens, users, rng)
    post_log = PostLog()

    scam = registry.create(
        name="Who Viewed Profile Viewer",
        developer_id="hacker:demo",
        permissions=(PUBLISH_STREAM,),
        redirect_uri="http://profilecheck1.com/lp/1",
        truth_malicious=True,
    )
    exfiltrated_tokens = []  # step 5 of Fig 2: tokens forwarded to hackers

    infected: set[int] = set()
    frontier = [0]  # patient zero saw the lure off-platform
    day = 0
    waves = []
    while frontier and day < 12:
        next_frontier: list[int] = []
        for user_id in frontier:
            if user_id in infected:
                continue
            # Step 1-4 of Fig 2: visit install URL, grant permissions.
            prompt = installer.visit_install_url(scam.app_id, day=day)
            token = installer.accept(prompt, user_id, day=day)
            exfiltrated_tokens.append(token)
            infected.add(user_id)
            # Step 6: the app posts a lure on the victim's wall.
            post_log.new_post(
                day=day,
                user_id=user_id,
                app_id=scam.app_id,
                app_name=scam.name,
                message="Shocking! See who viewed your profile",
                link="http://bit.ly/whoviewed",
                truth_malicious=True,
            )
            # A fraction of friends click the lure and install next wave.
            for friend in friendships.friends(user_id):
                if friend not in infected and rng.random() < 0.35:
                    next_frontier.append(friend)
        waves.append(len(infected))
        frontier = next_frontier
        day += 1

    print("Epidemic of 'Who Viewed Profile Viewer' over a "
          f"{n_users}-user friendship graph:")
    for day_index, total in enumerate(waves):
        bar = "#" * max(1, int(40 * total / max(waves[-1], 1)))
        print(f"  day {day_index:>2}: {total:>4} infected {bar}")

    print(f"\n  posts made on victims' walls: {len(post_log)}")
    print(f"  OAuth tokens in the hackers' hands: {len(exfiltrated_tokens)}")
    print(f"  reach: {len(infected) / n_users:.0%} of all users "
          "(cf. Sec 3: 60% of malicious apps accumulate 100K+ clicks)")

    # Facebook eventually deletes the app; every token dies with it.
    scam.deleted_day = day
    revoked = tokens.revoke_app(scam.app_id)
    print(f"  after takedown: {revoked} tokens revoked, install URL now "
          "returns an error")


if __name__ == "__main__":
    main()
