"""The independent app watchdog: assessment, advisories, and ranking.

The paper's conclusion envisions "an independent watchdog for app
assessment and ranking, so as to warn Facebook users before installing
apps."  This example runs that service: it trains FRAppE, bulk-assesses
a mixed population, prints the risk ranking with human-readable
advisories, and shows the caching behaviour a production service needs.

Run:  python examples/app_ranking.py
"""

import numpy as np

from repro.config import ScaleConfig
from repro.core import AppWatchdog, FrappePipeline, frappe
from repro.crawler.crawler import AppCrawler


def main() -> None:
    print("Training FRAppE and starting the watchdog ...")
    result = FrappePipeline(ScaleConfig(scale=0.02, master_seed=31)).run(
        sweep_unlabelled=False
    )
    records, labels = result.sample_records()
    classifier = frappe(result.extractor).fit(records, labels)
    watchdog = AppWatchdog(
        classifier, result.extractor, AppCrawler(result.world)
    )

    # Bulk-assess a random slice of the whole observed population.
    rng = np.random.default_rng(2)
    population = sorted(result.bundle.d_total)
    sample = [population[i] for i in rng.choice(len(population), 60, replace=False)]
    watchdog.bulk_assess(sample, day=400)

    print(f"\nAssessed {watchdog.cached_count()} apps. "
          "The ten riskiest:\n")
    for assessment in watchdog.ranking(top=10):
        print(assessment.summary())
        print()

    # The cache avoids re-crawling until assessments go stale.
    app_id = sample[0]
    again = watchdog.assess(app_id, day=401)
    assert again is watchdog.assess(app_id, day=402)
    print(f"(cached verdicts are reused for "
          f"{watchdog.max_staleness_days} days before a re-crawl)")

    truth = result.world.truth_malicious_ids()
    risky = [a for a in watchdog.ranking(top=len(sample)) if a.is_risky]
    hits = sum(1 for a in risky if a.app_id in truth)
    print(f"\nOf {len(risky)} high-risk verdicts, {hits} are truly "
          "malicious (per the simulation's hidden labels).")


if __name__ == "__main__":
    main()
