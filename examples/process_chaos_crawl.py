"""Process chaos: SIGKILL a crawl worker mid-shard, lose nothing.

The paper's crawl ran for nine months; any real re-run of it will see
worker processes die — OOM-killed, segfaulted, or wedged.  This example
crawls the same D-Sample twice over an identical simulated world at a
20% transport fault rate: once sequentially, once sharded across three
OS processes with a SIGKILL injected into worker 0 right after its
second app.  The supervisor detects the death, quarantines nothing it
can keep, respawns the worker resuming from its shard journal, and the
final records and checkpoint journal are **byte-identical** to the
sequential run.

The supervised run is traced: the supervisor's spawn / worker_death /
restart events, the per-shard journals, and both canonical record
exports are written to an artifacts directory so CI can upload them.

Run:    python examples/process_chaos_crawl.py
Output: $REPRO_SUPERVISOR_ARTIFACTS (default ./supervisor-artifacts)
Exits nonzero if any supervised byte differs from the sequential run.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.config import ScaleConfig
from repro.crawler.checkpoint import CrawlJournal, record_to_jsonable
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.crawler.supervisor import KILL, ShardSupervisor, WorkerChaos
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper
from repro.obs import TracingObserver, observation

SCALE = 0.01
SEED = 2012
FAULT_RATE = 0.2
PROCESSES = 3


def artifacts_dir() -> Path:
    root = Path(os.environ.get("REPRO_SUPERVISOR_ARTIFACTS", "supervisor-artifacts"))
    root.mkdir(parents=True, exist_ok=True)
    return root


def export_records(records, path: Path) -> bytes:
    """Canonical JSON export of a crawl's records, written and returned."""
    payload = {a: record_to_jsonable(r) for a, r in sorted(records.items())}
    data = json.dumps(payload, sort_keys=True, indent=2).encode() + b"\n"
    path.write_bytes(data)
    return data


def main() -> int:
    root = artifacts_dir()
    print(f"Simulating the app ecosystem (scale {SCALE}, "
          f"fault rate {FAULT_RATE:.0%}) ...")
    world = run_simulation(
        ScaleConfig(scale=SCALE, master_seed=SEED, fault_rate=FAULT_RATE)
    )
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    sample = sorted(DatasetBuilder(world, report).build(crawl=False).d_sample)
    rng_state = world.installer.rng_state()

    print(f"Crawling {len(sample)} apps sequentially ...")
    with CrawlJournal(root / "sequential") as journal:
        records = make_crawler(world).crawl_many(sample, journal=journal)
    sequential_export = export_records(records, root / "sequential-records.json")
    sequential_journal = (root / "sequential" / "journal.jsonl").read_bytes()

    print(f"Crawling the same apps across {PROCESSES} processes, "
          "SIGKILLing worker 0 after its second app ...")
    world.installer.restore_rng_state(rng_state)
    observer = TracingObserver()
    with observation(observer):
        supervisor = ShardSupervisor(
            make_crawler(world),
            processes=PROCESSES,
            chaos=WorkerChaos(mode=KILL, shard=0, app_index=1),
        )
        with CrawlJournal(root / "supervised") as journal:
            records = supervisor.crawl(sample, journal=journal)
    trace = observer.tracer.export(root / "supervisor-trace.jsonl")
    supervised_export = export_records(records, root / "supervised-records.json")
    supervised_journal = (root / "supervised" / "journal.jsonl").read_bytes()

    shards = sorted(p.name for p in (root / "supervised" / "shards").iterdir())
    print(f"\nworker deaths       {supervisor.worker_deaths} (injected SIGKILL)")
    print(f"restarts            {supervisor.restarts}")
    print(f"committed spec.     {supervisor.committed_speculative}")
    print(f"recrawled inline    {supervisor.recrawled_inline}")
    print(f"shard journals      {', '.join(shards)}")
    print(f"supervisor trace    {trace}")

    failures = []
    if supervised_export != sequential_export:
        failures.append("record exports differ")
    if supervised_journal != sequential_journal:
        failures.append("checkpoint journal bytes differ")
    if supervisor.worker_deaths < 1:
        failures.append("chaos did not fire (no worker died)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"\nexport identical    {len(sequential_export)} bytes, "
          "supervised == sequential")
    print(f"journal identical   {len(sequential_journal)} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
