"""A FRAppE-Lite watchdog: warn users before they install an app.

The paper envisions FRAppE Lite "incorporated into a browser extension
that can evaluate any Facebook application at the time when a user is
considering installing it" (Sec 5.1).  This example plays that role: a
stream of users visit installation URLs; the watchdog crawls each app's
on-demand features and either waves the install through or warns.

Run:  python examples/watchdog_service.py
"""

import numpy as np

from repro.config import ScaleConfig
from repro.core import FrappePipeline, frappe_lite
from repro.crawler.crawler import AppCrawler
from repro.platform.install import AppRemovedError


def main() -> None:
    print("Training the watchdog ...")
    result = FrappePipeline(ScaleConfig(scale=0.02, master_seed=11)).run(
        sweep_unlabelled=False
    )
    records, labels = result.sample_records()
    watchdog = frappe_lite(result.extractor).fit(records, labels)
    crawler = AppCrawler(result.world)

    world = result.world
    rng = np.random.default_rng(5)
    alive = [a for a in world.registry.all_apps() if not a.is_deleted(340)]
    candidates = [alive[i] for i in rng.choice(len(alive), size=12, replace=False)]

    warned_malicious = warned_benign = 0
    print("\nUsers are about to install the following apps:\n")
    for user_id, app in enumerate(candidates):
        record = crawler.crawl_app(app.app_id)
        warn = watchdog.predict_one(record)
        verdict = "!! WARN" if warn else "   ok "
        print(f"  [{verdict}] {app.name!r} (app {app.app_id})")
        if warn:
            if app.truth_malicious:
                warned_malicious += 1
            else:
                warned_benign += 1
            continue  # the user heeds the warning and walks away
        # Install proceeds through the real OAuth flow (Fig 2).
        try:
            prompt = world.installer.visit_install_url(app.app_id, day=340)
        except AppRemovedError:
            print("         (install page is gone — Facebook removed the app)")
            continue
        token = world.installer.accept(prompt, user_id=user_id, day=340)
        assert world.tokens.validate(token.token) is not None
        if prompt.client_id_mismatch:
            print(
                "         note: the install URL handed out a different "
                f"client ID ({prompt.client_id}) — the Sec 4.1.4 trick"
            )

    truly_malicious = sum(1 for a in candidates if a.truth_malicious)
    print(
        f"\nWatchdog summary: warned on {warned_malicious}/{truly_malicious} "
        f"malicious installs, {warned_benign} false alarms "
        f"out of {len(candidates) - truly_malicious} benign installs."
    )


if __name__ == "__main__":
    main()
