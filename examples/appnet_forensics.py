"""AppNet forensics: rediscover colluding app networks from posts.

Reproduces the Sec 6 investigation: expand every posted link, follow
indirection websites repeatedly to enumerate their rotating targets,
build the promoter/promotee graph, and profile its structure and
hosting infrastructure.

Run:  python examples/appnet_forensics.py
"""

from collections import Counter

from repro.collusion import CollusionAnalyzer
from repro.config import ScaleConfig
from repro.ecosystem import run_simulation


def main() -> None:
    print("Simulating nine months of Facebook activity ...")
    world = run_simulation(ScaleConfig(scale=0.03, master_seed=21))

    print("Probing posted links (the paper followed each indirection "
          "site 100 times a day for 1.5 months) ...")
    analyzer = CollusionAnalyzer(world, probe_visits=3000)
    collusion = analyzer.discover()
    stats = analyzer.stats(collusion)

    print("\n=== The AppNet ecosystem ===")
    print(f"  colluding apps:        {stats.n_colluding}")
    print(f"  promoters / promotees / dual: "
          f"{stats.n_promoters} / {stats.n_promotees} / {stats.n_dual}")
    print(f"  connected components:  {stats.n_components} "
          f"(top sizes: {stats.top_component_sizes})")
    print(f"  collude with > 10 apps: {stats.degree_over_10_fraction:.0%}")
    print(f"  max collusions by one app: {stats.max_degree}")
    print(f"  clustering coeff > 0.74: "
          f"{stats.clustering_over_074_fraction:.0%} of apps")

    print("\n=== Promotion mechanisms ===")
    print(f"  direct links: {len(collusion.direct_promoters())} promoters "
          f"-> {len(collusion.direct_promotees())} promotees")
    indirection = collusion.indirection
    print(f"  indirection sites: {indirection.n_sites} "
          f"-> {len(indirection.promotees())} promoted apps")
    promoter_names, promotee_names = analyzer.name_reuse(collusion)
    print(f"  name reuse: {len(indirection.promoters())} promoters share "
          f"{promoter_names} names; {len(indirection.promotees())} promotees "
          f"share {promotee_names} names")

    print("\n=== Hosting of indirection sites ===")
    for provider, count in sorted(
        analyzer.hosting_providers(collusion).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {provider:<28} {count} sites")

    # Zoom into the densest neighborhood (the paper's Fig 15).
    graph = collusion.graph
    best = max(
        (n for n in graph.nodes() if graph.degree(n) >= 8),
        key=graph.local_clustering,
        default=None,
    )
    if best is not None:
        neighbors = graph.neighbors(best)
        names = Counter(
            world.post_log.app_name(n) for n in neighbors
        )
        name = world.post_log.app_name(best)
        print(f"\n=== Example neighborhood (cf. 'Death Predictor') ===")
        print(f"  app {best} ({name!r}): {len(neighbors)} neighbors, "
              f"clustering coefficient "
              f"{graph.local_clustering(best):.2f}")
        top_name, top_count = names.most_common(1)[0]
        print(f"  {top_count} of its neighbors share the name {top_name!r}")


if __name__ == "__main__":
    main()
