"""App piggybacking: forging posts as FarmVille, and auditing for it.

Walks through the Sec 6.2 vulnerability live: an attacker calls the
``prompt_feed`` endpoint with a popular app's ID and Facebook attributes
the spam to that app with no authentication.  Then runs the paper's
audit — the malicious-posts-to-all-posts ratio (Fig 16) — to show how
piggybacked apps separate from outright malicious ones, and why the
dataset construction needs a popular-app whitelist.

Run:  python examples/piggyback_audit.py
"""

from repro.config import ScaleConfig
from repro.core import FrappePipeline
from repro.ecosystem import run_simulation


def demonstrate_the_exploit() -> None:
    print("=== The prompt_feed exploit, step by step ===")
    world = run_simulation(ScaleConfig(scale=0.01, master_seed=3))
    victim = world.benign_population.apps[0]  # FarmVille
    before = world.post_log.post_count(victim.app_id)

    post = world.graph_api.prompt_feed(
        api_key=victim.app_id,  # no proof we ARE FarmVille required!
        user_id=42,
        message="WOW I just got 5000 Facebook Credits for Free",
        link="http://bit.ly/fake-credits",
        day=100,
        truth_malicious=True,
        truth_piggybacked=True,
    )
    print(f"  forged a post as {victim.name!r}: the post's application "
          f"field reads app {post.app_id} ({post.app_name!r})")
    print(f"  {victim.name!r} post count: {before} -> "
          f"{world.post_log.post_count(victim.app_id)}")
    print("  recommendation to Facebook (Sec 7): authenticate the caller "
          "of prompt_feed.\n")


def audit_a_world() -> None:
    print("=== Auditing a full world for piggybacking (Fig 16) ===")
    result = FrappePipeline(ScaleConfig(scale=0.02, master_seed=3)).run(
        sweep_unlabelled=False
    )
    report = result.monitor_report
    log = result.world.post_log

    flagged_apps = [
        (app_id, flagged / total, total)
        for app_id, (flagged, total) in report.app_post_counts.items()
        if app_id is not None and flagged > 0
    ]
    low = [row for row in flagged_apps if row[1] < 0.2]
    print(f"  {len(flagged_apps)} apps have flagged posts; "
          f"{len(low)} show the piggybacking signature (ratio < 0.2):")
    for app_id, ratio, total in sorted(low, key=lambda r: -r[2])[:5]:
        name = log.app_name(app_id) or "<unknown>"
        print(f"    {name:<28} ratio={ratio:.2f} over {total} posts")

    rescued = result.world.piggybacked_ids() & result.bundle.whitelist
    print(f"\n  the popular-app whitelist rescued "
          f"{len(rescued)}/{len(result.world.piggybacked_ids())} "
          "piggybacked apps from being mislabelled malicious")


if __name__ == "__main__":
    demonstrate_the_exploit()
    audit_a_world()
