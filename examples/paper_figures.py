"""Draw the paper's figures as ASCII plots from a simulated run.

Renders the actual distribution curves (not just threshold read-offs)
behind Figures 3, 4, 7, 9, 12, 14, and the Fig 5 bars, so a terminal
run of the reproduction *looks* like flipping through the paper's
evaluation section.

Run:  python examples/paper_figures.py
"""

from repro.analysis.curves import ascii_bars, ascii_cdf
from repro.collusion import CollusionAnalyzer
from repro.config import ScaleConfig
from repro.core import FrappePipeline
from repro.experiments import fig03, fig04, fig05, fig07, fig09, fig12


def main() -> None:
    print("Running the pipeline (this builds the world once) ...\n")
    result = FrappePipeline(ScaleConfig(scale=0.03, master_seed=17)).run(
        sweep_unlabelled=False
    )

    clicks = list(fig03.clicks_per_malicious_app(result).values())
    print(ascii_cdf(
        {"malicious apps": clicks},
        log_x=True,
        title="Fig 3 — clicks on bit.ly links posted by malicious apps (CDF)",
    ))
    print()

    medians, maxima = fig04.mau_of_malicious(result)
    print(ascii_cdf(
        {"median MAU": medians, "max MAU": maxima},
        log_x=True,
        title="Fig 4 — monthly active users of malicious apps (CDF)",
    ))
    print()

    fractions = fig05.field_fractions(result)
    rows = []
    for field in ("category", "company", "description"):
        rows.append((f"benign    {field}", fractions["benign"][field]))
        rows.append((f"malicious {field}", fractions["malicious"][field]))
    print(ascii_bars(rows, maximum=1.0,
                     title="Fig 5 — apps providing summary fields"))
    print()

    counts = fig07.permission_counts(result)
    print(ascii_cdf(
        {"malicious": counts["malicious"], "benign": counts["benign"]},
        title="Fig 7 — permissions requested per app (CDF)",
    ))
    print()

    profile = fig09.profile_post_counts(result)
    print(ascii_cdf(
        {"malicious": profile["malicious"], "benign": profile["benign"]},
        title="Fig 9 — posts in the app profile page (CDF)",
    ))
    print()

    ratios = fig12.external_ratios(result)
    print(ascii_cdf(
        {"malicious": ratios["malicious"], "benign": ratios["benign"]},
        title="Fig 12 — external-link-to-post ratio (CDF)",
    ))
    print()

    collusion = CollusionAnalyzer(result.world, probe_visits=2000).discover()
    coefficients = [
        collusion.graph.local_clustering(n) for n in collusion.graph.nodes()
    ]
    print(ascii_cdf(
        {"colluding apps": coefficients},
        title="Fig 14 — local clustering coefficient (CDF)",
    ))


if __name__ == "__main__":
    main()
