"""Resumable crawl: kill the study anywhere, resume it, lose nothing.

The paper's dataset took nine months of continuous crawling — no single
process survives that long.  This example runs the D-Sample crawl with a
crash-safe checkpoint journal, 'kills' the process three times at nasty
moments (including mid-way through writing a journal line, leaving a
torn write on disk), resumes after each death, and shows that the final
records are byte-identical to a run that was never interrupted.

Run:  python examples/resumable_crawl.py
"""

import hashlib
import json
import shutil
import tempfile
from pathlib import Path

from repro.config import ScaleConfig
from repro.crawler.checkpoint import (
    CrashPlan,
    CrawlJournal,
    SimulatedCrash,
    record_to_jsonable,
)
from repro.crawler.crawler import make_crawler
from repro.crawler.datasets import DatasetBuilder
from repro.ecosystem.simulation import run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MyPageKeeper

SCALE = 0.02
SEED = 2012
FAULT_RATE = 0.2  # the network misbehaves too, for good measure

#: (app index within the incarnation, crash point) of each injected death
DEATHS = [
    (5, "after_crawl"),   # work done, nothing journaled yet
    (8, "mid_append"),    # dies WHILE writing — leaves a torn line
    (3, "before_app"),    # dies between apps
]


def fingerprint(records) -> str:
    canonical = json.dumps(
        {a: record_to_jsonable(r) for a, r in sorted(records.items())},
        sort_keys=True,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def main() -> None:
    config = ScaleConfig(scale=SCALE, master_seed=SEED, fault_rate=FAULT_RATE)
    world = run_simulation(config)
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    apps = sorted(DatasetBuilder(world, report).build(crawl=False).d_sample)
    print(f"D-Sample: {len(apps)} apps to crawl "
          f"(fault rate {FAULT_RATE:.0%})\n")

    # The reference: one uninterrupted crawl.
    rng_state = world.installer.rng_state()
    reference = make_crawler(world).crawl_many(apps)
    print(f"uninterrupted run    {len(reference)} records, "
          f"fingerprint {fingerprint(reference)}\n")

    # The crash-ridden run: same world, same configuration, three deaths.
    checkpoint = Path(tempfile.mkdtemp(prefix="repro-checkpoint-"))
    world.installer.restore_rng_state(rng_state)
    records = None
    incarnation = 0
    deaths = iter(DEATHS)
    while records is None:
        incarnation += 1
        journal = CrawlJournal(checkpoint)
        durable = len(journal)
        plan = None
        death = next(deaths, None)
        if death is not None:
            plan = CrashPlan(app_index=death[0], point=death[1])
        try:
            records = make_crawler(world).crawl_many(
                apps, journal=journal, crash_plan=plan
            )
        except SimulatedCrash as crash:
            print(f"incarnation {incarnation}: resumed with {durable} apps "
                  f"durable, then died — {crash}")
        finally:
            journal.close()
    print(f"incarnation {incarnation}: resumed with {durable} apps durable "
          "and finished the crawl\n")

    match = fingerprint(records) == fingerprint(reference)
    print(f"final run            {len(records)} records, "
          f"fingerprint {fingerprint(records)}")
    print(f"byte-identical to the uninterrupted run: {match}")
    assert match, "resume invariant violated"
    shutil.rmtree(checkpoint, ignore_errors=True)

    print("\nThe journal made every completed app durable (written, "
          "flushed, fsynced)\nbefore the next one started; the torn line "
          "from death #2 was truncated on\nresume and its app re-crawled. "
          "See repro.crawler.checkpoint for the contract.")


if __name__ == "__main__":
    main()
