"""Typosquat detection and version-suffix handling (Sec 4.2.1 / 5.3).

Hackers "typo-squat" popular app names ('FarmVile' for 'FarmVille') and
append version numbers to otherwise-identical names ('Profile Watchers
v4.32').  Both signals feed FRAppE's validation stage.
"""

from __future__ import annotations

import re

from repro.text.editdist import name_similarity

__all__ = ["strip_version_suffix", "is_typosquat"]

#: 'Name v4.32', 'Name v8', 'Name V2' — a trailing version marker.
_VERSION_RE = re.compile(r"\s+v\d+(?:\.\d+)*\s*$", re.IGNORECASE)


def strip_version_suffix(name: str) -> tuple[str, bool]:
    """Remove a trailing version marker from an app name.

    Returns ``(base_name, had_version)``.

    >>> strip_version_suffix("Profile Watchers v4.32")
    ('Profile Watchers', True)
    >>> strip_version_suffix("FarmVille")
    ('FarmVille', False)
    """
    stripped = _VERSION_RE.sub("", name)
    return stripped, stripped != name


def is_typosquat(
    name: str,
    popular_names: list[str] | set[str],
    min_similarity: float = 0.85,
) -> bool:
    """Is *name* a near-miss of a popular app name, without matching it?

    A typosquat is highly similar to — but not identical to — some
    popular name.  Identical names are *not* typosquats (they are exact
    impersonation, which the paper treats separately).
    """
    if name in popular_names:
        return False
    base, _ = strip_version_suffix(name)
    if base != name and base in popular_names:
        return True
    for popular in popular_names:
        if name_similarity(name, popular) >= min_similarity:
            return True
    return False
