"""Text similarity primitives used to compare application names.

The paper measures name similarity with the Damerau-Levenshtein edit
distance normalized by the longer name's length (Sec 4.2.1), clusters app
names at several similarity thresholds (Fig 10/11), and detects
typosquatting of popular app names (Sec 5.3).
"""

from repro.text.editdist import (
    damerau_levenshtein,
    levenshtein,
    name_similarity,
    unrestricted_damerau_levenshtein,
)
from repro.text.fastdist import (
    bounded_osa,
    fast_damerau_levenshtein,
    myers_levenshtein,
    similar,
)
from repro.text.clustering import NameClustering, cluster_names
from repro.text.typosquat import is_typosquat, strip_version_suffix

__all__ = [
    "damerau_levenshtein",
    "levenshtein",
    "name_similarity",
    "unrestricted_damerau_levenshtein",
    "bounded_osa",
    "fast_damerau_levenshtein",
    "myers_levenshtein",
    "similar",
    "NameClustering",
    "cluster_names",
    "is_typosquat",
    "strip_version_suffix",
]
