"""Fast bounded edit-distance kernels for name clustering.

Clustering app names (Sec 4.2.1) only ever asks a *threshold* question:
is the normalized Damerau-Levenshtein similarity of two names at least
``t``?  That is an integer question — "is the OSA distance at most
``k``?" for a ``k`` derived from the threshold and the longer length —
and answering it is much cheaper than computing the full distance:

* **reject bounds** — the distance is at least the length difference,
  and at least the character-multiset imbalance (transpositions move
  no mass between multisets, so the bound holds for OSA too).  A
  64-bit character-set signature gives a hash-collision-safe
  approximation of the multiset bound in O(1) per pair;
* **accept bound** — plain Levenshtein is an upper bound on OSA
  (OSA has strictly more moves), and :func:`myers_levenshtein`
  computes it bit-parallel in O(⌈m/64⌉·n).  Conversely a transposition
  is worth at most two substitutions, so ``levenshtein <= 2·OSA`` and
  Myers doubles as a second reject bound;
* **banded DP** — when the bounds don't decide, :func:`bounded_osa`
  runs the OSA recurrence restricted to the ``|i-j| <= k`` diagonal
  band (cells outside cost more than ``k`` in pure indels), aborting
  as soon as a whole band row exceeds the limit (diagonal values are
  non-decreasing, so no later cell can dip back under it).

Everything here is exact: :func:`fast_damerau_levenshtein` equals
:func:`repro.text.editdist.damerau_levenshtein` on every input (the
property tests draw random unicode to check), and :func:`similar`
reproduces the naive ``name_similarity(a, b) >= threshold`` comparison
bit-for-bit, including its float rounding, via :func:`edit_limit`.
"""

from __future__ import annotations

from repro.text.editdist import damerau_levenshtein

__all__ = [
    "myers_levenshtein",
    "bounded_osa",
    "fast_damerau_levenshtein",
    "edit_limit",
    "similar",
    "char_signature",
]

#: Myers runs single-word only; longer patterns fall back to banded DP.
_WORD = 64


def char_signature(s: str) -> int:
    """64-bit hash-set of the string's characters.

    ``popcount(sig_a & ~sig_b)`` lower-bounds the number of *distinct*
    characters of ``a`` absent from ``b`` (collisions can only merge
    bits, shrinking the count), and each such character forces at least
    one edit — a sound O(1) reject bound for both Levenshtein and OSA.
    Buckets by codepoint, not :func:`hash`, so signatures do not vary
    with ``PYTHONHASHSEED``.
    """
    sig = 0
    for ch in s:
        sig |= 1 << (ord(ch) & 63)
    return sig


def _multiset_lower_bound(a: str, b: str) -> int:
    """``max(chars to remove from a, chars to add to a)`` — OSA-sound."""
    counts: dict[str, int] = {}
    for ch in a:
        counts[ch] = counts.get(ch, 0) + 1
    for ch in b:
        counts[ch] = counts.get(ch, 0) - 1
    surplus = deficit = 0
    for diff in counts.values():
        if diff > 0:
            surplus += diff
        elif diff < 0:
            deficit -= diff
    return surplus if surplus > deficit else deficit


def myers_levenshtein(a: str, b: str) -> int:
    """Bit-parallel Levenshtein distance (Myers/Hyyrö, single word).

    Requires the shorter string to fit one machine word (<= 64 chars);
    processes the longer string one character per O(1) word step.
    """
    if len(a) < len(b):
        a, b = b, a
    m = len(b)
    if m == 0:
        return len(a)
    if m > _WORD:
        raise ValueError(f"pattern too long for single-word Myers: {m}")
    peq: dict[str, int] = {}
    for i, ch in enumerate(b):
        peq[ch] = peq.get(ch, 0) | (1 << i)
    mask = (1 << m) - 1
    last = 1 << (m - 1)
    pv = mask
    mv = 0
    score = m
    for ch in a:
        eq = peq.get(ch, 0)
        xv = eq | mv
        xh = (((eq & pv) + pv) ^ pv) | eq
        ph = mv | (~(xh | pv) & mask)
        mh = pv & xh
        if ph & last:
            score += 1
        elif mh & last:
            score -= 1
        ph = ((ph << 1) | 1) & mask
        mh = (mh << 1) & mask
        pv = mh | (~(xv | ph) & mask)
        mv = ph & xv
    return score


def bounded_osa(a: str, b: str, limit: int) -> int:
    """OSA (restricted Damerau-Levenshtein) distance, capped at *limit*.

    Returns the exact distance when it is <= ``limit`` and ``limit + 1``
    otherwise.  Runs the three-row OSA recurrence over the diagonal band
    ``|i - j| <= limit`` — any alignment leaving the band spends more
    than ``limit`` on insertions/deletions alone — and aborts early once
    every cell of a row exceeds the limit, which is final because values
    never decrease along a diagonal.
    """
    if a == b:
        return 0
    if limit <= 0:
        return limit + 1
    la, lb = len(a), len(b)
    if lb > la:
        a, b, la, lb = b, a, lb, la
    if la - lb > limit:
        return limit + 1
    big = limit + 1
    prev2: list[int] = []
    prev = [j if j <= limit else big for j in range(lb + 1)]
    for i in range(1, la + 1):
        lo = i - limit if i > limit else 1
        hi = i + limit if i + limit < lb else lb
        current = [big] * (lb + 1)
        if lo == 1:
            current[0] = i if i <= limit else big
        row_min = current[0] if lo == 1 else big
        ca = a[i - 1]
        for j in range(lo, hi + 1):
            cb = b[j - 1]
            d = prev[j - 1] + (ca != cb)  # substitution / match
            up = prev[j] + 1  # deletion
            if up < d:
                d = up
            left = current[j - 1] + 1  # insertion
            if left < d:
                d = left
            if i > 1 and j > 1 and ca == b[j - 2] and a[i - 2] == cb:
                tr = prev2[j - 2] + 1  # transposition
                if tr < d:
                    d = tr
            if d > limit:
                d = big
            current[j] = d
            if d < row_min:
                row_min = d
        if row_min > limit:
            return big
        prev2, prev = prev, current
    distance = prev[lb]
    return distance if distance <= limit else big


def fast_damerau_levenshtein(a: str, b: str) -> int:
    """Exact OSA distance via limit-doubling over :func:`bounded_osa`.

    Equals :func:`repro.text.editdist.damerau_levenshtein` everywhere;
    the doubling search keeps the band (and therefore the work) sized to
    the answer instead of to the strings.
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if not la:
        return lb
    if not lb:
        return la
    longest = la if la > lb else lb
    limit = abs(la - lb) + 1
    while True:
        if limit >= longest:
            return bounded_osa(a, b, longest)  # distance <= max length
        distance = bounded_osa(a, b, limit)
        if distance <= limit:
            return distance
        limit *= 2


def edit_limit(longest: int, threshold: float) -> int:
    """Largest edit distance still *similar* at ``threshold``.

    Exactly characterises the naive comparison: for integer ``d >= 0``,
    ``1.0 - d / longest >= threshold``  iff  ``d <= edit_limit(...)``.
    The seed guess is corrected by evaluating the float predicate
    itself, so no rounding disagreement with the naive path is possible
    (``1.0 - d / longest`` is non-increasing in ``d``, hence the
    predicate is a prefix property).
    """
    if longest <= 0:
        raise ValueError(f"longest must be positive, got {longest}")
    limit = int((1.0 - threshold) * longest)
    while limit > 0 and 1.0 - limit / longest < threshold:
        limit -= 1
    while limit < longest and 1.0 - (limit + 1) / longest >= threshold:
        limit += 1
    return limit


def similar(
    a: str,
    b: str,
    threshold: float,
    sig_a: int | None = None,
    sig_b: int | None = None,
) -> bool:
    """``name_similarity(a, b) >= threshold``, decided by bounds.

    Bit-identical to the naive comparison (via :func:`edit_limit`), but
    usually decided without touching the quadratic DP.  Pass cached
    :func:`char_signature` values when screening many pairs.
    """
    if a == b:
        return True
    la, lb = len(a), len(b)
    longest = la if la > lb else lb
    if longest == 0:
        return True
    limit = edit_limit(longest, threshold)
    if abs(la - lb) > limit:
        return False
    if limit >= longest:
        return True  # even replacing every character is similar enough
    if sig_a is None:
        sig_a = char_signature(a)
    if sig_b is None:
        sig_b = char_signature(b)
    missing = (sig_a & ~sig_b).bit_count()
    extra = (sig_b & ~sig_a).bit_count()
    if (missing if missing > extra else extra) > limit:
        return False
    if _multiset_lower_bound(a, b) > limit:
        return False
    if lb <= _WORD or la <= _WORD:
        lev = myers_levenshtein(a, b)
        if lev <= limit:
            return True  # OSA <= Levenshtein
        if lev > 2 * limit:
            return False  # Levenshtein <= 2 * OSA
    return bounded_osa(a, b, limit) <= limit
