"""Threshold clustering of application names (Sec 4.2.1, Fig 10/11).

The paper clusters app names at several similarity thresholds: two names
join the same cluster when their normalized Damerau-Levenshtein
similarity is at least the threshold.  Clustering is transitive
(single-linkage), which we realise with a union-find over names.

For efficiency we first collapse identical names (always in the same
cluster for any threshold <= 1) and only run pairwise comparisons over
the unique names, pruned by the length bound
``|len(a) - len(b)| <= (1 - t) * max(len(a), len(b))``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.text.editdist import name_similarity

__all__ = ["NameClustering", "cluster_names"]


class _UnionFind:
    """Union-find over ``range(n)`` with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class NameClustering:
    """The result of clustering a multiset of names at one threshold."""

    threshold: float
    #: total number of (non-unique) names clustered
    n_names: int
    #: clusters as lists of names; a name appears once per occurrence
    clusters: list[list[str]]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def reduction_ratio(self) -> float:
        """Clusters as a fraction of names — the y-axis of Fig 10."""
        if self.n_names == 0:
            return 1.0
        return self.n_clusters / self.n_names

    def cluster_sizes(self) -> list[int]:
        """Cluster sizes, descending — the x-axis of Fig 11."""
        return sorted((len(c) for c in self.clusters), reverse=True)

    def largest(self) -> list[str]:
        """The largest cluster (empty list if there are no names)."""
        if not self.clusters:
            return []
        return max(self.clusters, key=len)


def cluster_names(names: list[str], threshold: float = 1.0) -> NameClustering:
    """Cluster *names* at a similarity *threshold* (single linkage).

    ``threshold=1`` clusters only identical names; lower thresholds
    additionally merge near-identical names (e.g. 'FarmVile' with
    'FarmVille' at 0.8).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    counts = Counter(names)
    unique = list(counts)
    if threshold == 1.0:
        clusters = [[name] * counts[name] for name in unique]
        return NameClustering(threshold, len(names), clusters)

    uf = _UnionFind(len(unique))
    # Sort by length so the pruning window is contiguous.
    order = sorted(range(len(unique)), key=lambda i: len(unique[i]))
    max_gap = 1.0 - threshold
    for pos, i in enumerate(order):
        name_i = unique[i]
        for j in order[pos + 1 :]:
            name_j = unique[j]
            longest = len(name_j)  # sorted: len(name_j) >= len(name_i)
            if longest and (longest - len(name_i)) / longest > max_gap:
                break  # all later names are even longer
            if uf.find(i) == uf.find(j):
                continue
            if name_similarity(name_i, name_j) >= threshold:
                uf.union(i, j)

    grouped: dict[int, list[str]] = {}
    for i, name in enumerate(unique):
        grouped.setdefault(uf.find(i), []).extend([name] * counts[name])
    return NameClustering(threshold, len(names), list(grouped.values()))
