"""Threshold clustering of application names (Sec 4.2.1, Fig 10/11).

The paper clusters app names at several similarity thresholds: two names
join the same cluster when their normalized Damerau-Levenshtein
similarity is at least the threshold.  Clustering is transitive
(single-linkage), which we realise with a union-find over names.

For efficiency we first collapse identical names (always in the same
cluster for any threshold <= 1) and only run pairwise comparisons over
the unique names, pruned by the length bound
``|len(a) - len(b)| <= (1 - t) * max(len(a), len(b))``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.text.editdist import name_similarity
from repro.text.fastdist import char_signature, similar

__all__ = ["NameClustering", "cluster_names"]


class _UnionFind:
    """Union-find over ``range(n)`` with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class NameClustering:
    """The result of clustering a multiset of names at one threshold."""

    threshold: float
    #: total number of (non-unique) names clustered
    n_names: int
    #: clusters as lists of names; a name appears once per occurrence
    clusters: list[list[str]]

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def reduction_ratio(self) -> float:
        """Clusters as a fraction of names — the y-axis of Fig 10."""
        if self.n_names == 0:
            return 1.0
        return self.n_clusters / self.n_names

    def cluster_sizes(self) -> list[int]:
        """Cluster sizes, descending — the x-axis of Fig 11."""
        return sorted((len(c) for c in self.clusters), reverse=True)

    def largest(self) -> list[str]:
        """The largest cluster (empty list if there are no names)."""
        if not self.clusters:
            return []
        return max(self.clusters, key=len)


def cluster_names(
    names: list[str], threshold: float = 1.0, kernel: str = "fast"
) -> NameClustering:
    """Cluster *names* at a similarity *threshold* (single linkage).

    ``threshold=1`` clusters only identical names; lower thresholds
    additionally merge near-identical names (e.g. 'FarmVile' with
    'FarmVille' at 0.8).

    ``kernel`` selects how pairwise similarity is decided: ``"fast"``
    (default) screens pairs through the bounded kernels in
    :mod:`repro.text.fastdist`; ``"naive"`` computes the full
    :func:`name_similarity` DP per pair.  Both kernels answer the exact
    same threshold predicate, and the cluster list depends only on the
    resulting partition (grouping is by first occurrence, not by
    union-find internals), so the two outputs are identical — the tests
    assert it.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if kernel not in ("fast", "naive"):
        raise ValueError(f"unknown kernel: {kernel!r}")
    counts = Counter(names)
    unique = list(counts)
    if threshold == 1.0:
        clusters = [[name] * counts[name] for name in unique]
        return NameClustering(threshold, len(names), clusters)

    uf = _UnionFind(len(unique))
    if kernel == "naive":
        _link_naive(unique, threshold, uf)
    else:
        _link_fast(unique, threshold, uf)

    grouped: dict[int, list[str]] = {}
    for i, name in enumerate(unique):
        grouped.setdefault(uf.find(i), []).extend([name] * counts[name])
    return NameClustering(threshold, len(names), list(grouped.values()))


def _link_naive(unique: list[str], threshold: float, uf: _UnionFind) -> None:
    """Reference kernel: full DP per candidate pair."""
    # Sort by length so the pruning window is contiguous.
    order = sorted(range(len(unique)), key=lambda i: len(unique[i]))
    max_gap = 1.0 - threshold
    for pos, i in enumerate(order):
        name_i = unique[i]
        for j in order[pos + 1 :]:
            name_j = unique[j]
            longest = len(name_j)  # sorted: len(name_j) >= len(name_i)
            if longest and (longest - len(name_i)) / longest > max_gap:
                break  # all later names are even longer
            if uf.find(i) == uf.find(j):
                continue
            if name_similarity(name_i, name_j) >= threshold:
                uf.union(i, j)


def _link_fast(unique: list[str], threshold: float, uf: _UnionFind) -> None:
    """Bounded kernel: same pairs, same predicate, far fewer DPs.

    The candidate window replicates the naive kernel's length prune
    expression verbatim (same float arithmetic), so both kernels see the
    same pair set; :func:`repro.text.fastdist.similar` then decides each
    pair with reject/accept bounds before falling back to a banded DP.
    Within a window, pairs sharing a first character are visited first:
    franchise names ("FarmVille 2", "FarmVille 3", ...) union early, and
    the connectivity skip then discards the remaining quadratic bulk of
    their pairs without touching any kernel.  Visit order cannot change
    the partition — it is the connected components of the similarity
    graph — so this is purely a scheduling optimisation.
    """
    order = sorted(range(len(unique)), key=lambda i: len(unique[i]))
    signatures = {i: char_signature(unique[i]) for i in order}
    max_gap = 1.0 - threshold
    for pos, i in enumerate(order):
        name_i = unique[i]
        len_i = len(name_i)
        window: list[int] = []
        for j in order[pos + 1 :]:
            longest = len(unique[j])  # sorted: len(name_j) >= len(name_i)
            if longest and (longest - len_i) / longest > max_gap:
                break  # all later names are even longer
            window.append(j)
        if not window:
            continue
        head = name_i[:1]
        window.sort(key=lambda j: unique[j][:1] != head)
        sig_i = signatures[i]
        for j in window:
            if uf.find(i) == uf.find(j):
                continue
            if similar(name_i, unique[j], threshold, sig_i, signatures[j]):
                uf.union(i, j)
