"""Edit distances between strings.

The paper (Sec 4.2.1) measures the similarity between two app names as
the Damerau-Levenshtein edit distance normalized by the length of the
longer name.  We provide:

* :func:`levenshtein` — plain insert/delete/substitute distance,
* :func:`damerau_levenshtein` — the *optimal string alignment* variant
  (adds adjacent transposition; each substring edited at most once),
  which is what implementations the paper cites use in practice,
* :func:`unrestricted_damerau_levenshtein` — the true metric variant,
* :func:`name_similarity` — the normalized similarity in [0, 1].
"""

from __future__ import annotations

__all__ = [
    "levenshtein",
    "damerau_levenshtein",
    "unrestricted_damerau_levenshtein",
    "name_similarity",
]


def levenshtein(a: str, b: str) -> int:
    """Classic Levenshtein distance (insert / delete / substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the inner loop over the shorter string.
    if len(b) > len(a):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str) -> int:
    """Optimal-string-alignment Damerau-Levenshtein distance.

    Like :func:`levenshtein` but also counts the transposition of two
    adjacent characters as a single edit.  This is the variant commonly
    called "Damerau-Levenshtein" in spell-checking code; it is not a
    true metric (the triangle inequality can fail by at most a factor
    related to repeated edits of one substring), which is irrelevant for
    the paper's normalized-similarity use.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    la, lb = len(a), len(b)
    # Three rolling rows: i-2, i-1, i.
    prev2: list[int] = []
    prev = list(range(lb + 1))
    for i in range(1, la + 1):
        current = [i]
        for j in range(1, lb + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            d = min(
                prev[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                prev[j - 1] + cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                d = min(d, prev2[j - 2] + 1)  # transposition
            current.append(d)
        prev2, prev = prev, current
    return prev[-1]


def unrestricted_damerau_levenshtein(a: str, b: str) -> int:
    """True Damerau-Levenshtein distance (a metric).

    Allows edits to substrings that were already involved in a
    transposition, via the classic alphabet-indexed DP.
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if not la:
        return lb
    if not lb:
        return la
    max_dist = la + lb
    # last row index (1-based) in `a` where each character was seen
    last_row: dict[str, int] = {}
    # d has a sentinel row/column of value max_dist at index 0,
    # then the usual (la+1) x (lb+1) table shifted by one.
    d = [[max_dist] * (lb + 2) for _ in range(la + 2)]
    for i in range(la + 1):
        d[i + 1][1] = i
    for j in range(lb + 1):
        d[1][j + 1] = j
    for i in range(1, la + 1):
        last_col = 0  # last column in `b` matching a[i-1]
        for j in range(1, lb + 1):
            i_prime = last_row.get(b[j - 1], 0)
            j_prime = last_col
            if a[i - 1] == b[j - 1]:
                cost = 0
                last_col = j
            else:
                cost = 1
            d[i + 1][j + 1] = min(
                d[i][j] + cost,  # substitution
                d[i + 1][j] + 1,  # insertion
                d[i][j + 1] + 1,  # deletion
                # transposition spanning the gap back to the last match
                d[i_prime][j_prime] + (i - i_prime - 1) + 1 + (j - j_prime - 1),
            )
        last_row[a[i - 1]] = i
    return d[la + 1][lb + 1]


def name_similarity(a: str, b: str) -> float:
    """Normalized name similarity in [0, 1] (Sec 4.2.1).

    ``1 - DL(a, b) / max(len(a), len(b))``; two empty names are fully
    similar.  A similarity of 1 means identical names.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - damerau_levenshtein(a, b) / longest
