"""Dataset export/import: share a study as plain JSON.

Serialises the labelled crawl records (features come from the crawl,
labels from MyPageKeeper's heuristic) so downstream users can train
their own models without running the simulation, and loads such files
back into :class:`~repro.crawler.crawler.CrawlRecord` objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.crawler.crawler import CrawlRecord
from repro.crawler.resilience import CrawlOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import PipelineResult

__all__ = ["export_dataset", "load_dataset", "dataset_to_dict"]

_FORMAT_VERSION = 1


def _record_to_dict(record: CrawlRecord) -> dict:
    return {
        "app_id": record.app_id,
        "summary_ok": record.summary_ok,
        "name": record.name,
        "description": record.description,
        "company": record.company,
        "category": record.category,
        "mau_observations": list(record.mau_observations),
        "feed_ok": record.feed_ok,
        "profile_post_count": len(record.profile_posts),
        "inst_ok": record.inst_ok,
        "permissions": list(record.permissions),
        "observed_client_id": record.observed_client_id,
        "redirect_uri": record.redirect_uri,
        "outcomes": {
            collection: {
                "status": outcome.status,
                "attempts": outcome.attempts,
                "faults": list(outcome.faults),
                "elapsed_s": outcome.elapsed_s,
            }
            for collection, outcome in record.outcomes.items()
        },
    }


def _record_from_dict(data: dict) -> CrawlRecord:
    profile_posts = [
        {"message": "", "link": None, "created_time": 0, "from": 0}
    ] * int(data.get("profile_post_count", 0))
    return CrawlRecord(
        app_id=data["app_id"],
        summary_ok=bool(data["summary_ok"]),
        name=data.get("name"),
        description=data.get("description", ""),
        company=data.get("company", ""),
        category=data.get("category", ""),
        mau_observations=[int(v) for v in data.get("mau_observations", [])],
        feed_ok=bool(data["feed_ok"]),
        profile_posts=profile_posts,
        inst_ok=bool(data["inst_ok"]),
        permissions=tuple(data.get("permissions", ())),
        observed_client_id=data.get("observed_client_id"),
        redirect_uri=data.get("redirect_uri"),
        # Older exports carry no outcomes; such records read as
        # authoritative (no transient give-ups), matching their era.
        outcomes={
            collection: CrawlOutcome(
                collection=collection,
                status=entry.get("status", "ok"),
                attempts=int(entry.get("attempts", 0)),
                faults=list(entry.get("faults", [])),
                elapsed_s=float(entry.get("elapsed_s", 0.0)),
            )
            for collection, entry in data.get("outcomes", {}).items()
        },
    )


def dataset_to_dict(result: "PipelineResult") -> dict:
    """The D-Sample dataset as a JSON-serialisable dictionary."""
    bundle = result.bundle
    entries = []
    for app_id in sorted(bundle.d_sample):
        record = bundle.records[app_id]
        entry = _record_to_dict(record)
        entry["label"] = bundle.label(app_id)
        entry["external_link_ratio"] = result.extractor.feature_value(
            "external_link_ratio", record
        )
        entry["name_matches_malicious"] = result.extractor.feature_value(
            "name_matches_malicious", record
        )
        entries.append(entry)
    return {
        "format_version": _FORMAT_VERSION,
        "paper": "FRAppE (CoNEXT 2012) reproduction",
        "scale": result.world.config.scale,
        "seed": result.world.config.master_seed,
        "n_benign": len(bundle.d_sample_benign),
        "n_malicious": len(bundle.d_sample_malicious),
        "records": entries,
    }


def export_dataset(result: "PipelineResult", path: str | Path) -> Path:
    """Write the labelled D-Sample dataset to *path* as JSON."""
    path = Path(path)
    path.write_text(json.dumps(dataset_to_dict(result), indent=1))
    return path


def load_dataset(path: str | Path) -> tuple[list[CrawlRecord], list[int], dict]:
    """Load an exported dataset: (records, labels, metadata)."""
    data = json.loads(Path(path).read_text())
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version}")
    records, labels = [], []
    for entry in data["records"]:
        records.append(_record_from_dict(entry))
        labels.append(int(entry["label"]))
    metadata = {k: v for k, v in data.items() if k != "records"}
    return records, labels, metadata
