"""Dataset export/import: share a study as plain JSON.

Serialises the labelled crawl records (features come from the crawl,
labels from MyPageKeeper's heuristic) so downstream users can train
their own models without running the simulation, and loads such files
back into :class:`~repro.crawler.crawler.CrawlRecord` objects.

Format versions
---------------
``format_version: 2`` (current)
    Adds ``records_sha256``, a checksum over the canonical JSON of the
    record list, so truncated or bit-rotted exports are detected at
    load time instead of silently training a model on damage.
``format_version: 1``
    The original checksum-less layout.  Loading migrates it to v2 in
    memory via :func:`migrate_dataset_v1_to_v2`; re-exporting writes v2.

Exports are written through
:func:`~repro.crawler.checkpoint.atomic_write`, so a crash mid-export
leaves the previous complete file (or nothing), never a torn one.

Lossy by design: ``profile_posts`` are exported as a *count* only and
reloaded as that many placeholder posts — post-content features are not
recomputable from an export (the precomputed aggregate features ride
along instead).  The crawl checkpoint journal
(:mod:`repro.crawler.checkpoint`) is the lossless format.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.crawler.checkpoint import atomic_write
from repro.crawler.crawler import CrawlRecord
from repro.crawler.resilience import CrawlOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.pipeline import PipelineResult

__all__ = [
    "export_dataset",
    "load_dataset",
    "dataset_to_dict",
    "migrate_dataset_v1_to_v2",
    "DatasetFormatError",
    "atomic_write",
]

_FORMAT_VERSION = 2


class DatasetFormatError(ValueError):
    """An exported dataset file cannot be trusted or understood.

    Raised (instead of a raw ``json.JSONDecodeError`` or ``KeyError``)
    for corrupt/truncated JSON, unsupported format versions, and
    checksum mismatches — always with what to do about it.
    """


def _records_checksum(entries: list[dict]) -> str:
    """sha256 over the canonical JSON of the record list."""
    canonical = json.dumps(entries, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _record_to_dict(record: CrawlRecord) -> dict:
    return {
        "app_id": record.app_id,
        "summary_ok": record.summary_ok,
        "name": record.name,
        "description": record.description,
        "company": record.company,
        "category": record.category,
        "mau_observations": list(record.mau_observations),
        "feed_ok": record.feed_ok,
        "profile_post_count": len(record.profile_posts),
        "inst_ok": record.inst_ok,
        "permissions": list(record.permissions),
        "observed_client_id": record.observed_client_id,
        "redirect_uri": record.redirect_uri,
        "outcomes": {
            collection: {
                "status": outcome.status,
                "attempts": outcome.attempts,
                "faults": list(outcome.faults),
                "elapsed_s": outcome.elapsed_s,
            }
            for collection, outcome in record.outcomes.items()
        },
    }


def _record_from_dict(data: dict) -> CrawlRecord:
    # Placeholder posts: the export carries only the count, so each
    # post is rebuilt as an *independent* empty dict — callers may
    # mutate one without spookily mutating the other n-1.
    profile_posts = [
        {"message": "", "link": None, "created_time": 0, "from": 0}
        for _ in range(int(data.get("profile_post_count", 0)))
    ]
    return CrawlRecord(
        app_id=data["app_id"],
        summary_ok=bool(data["summary_ok"]),
        name=data.get("name"),
        description=data.get("description", ""),
        company=data.get("company", ""),
        category=data.get("category", ""),
        mau_observations=[int(v) for v in data.get("mau_observations", [])],
        feed_ok=bool(data["feed_ok"]),
        profile_posts=profile_posts,
        inst_ok=bool(data["inst_ok"]),
        permissions=tuple(data.get("permissions", ())),
        observed_client_id=data.get("observed_client_id"),
        redirect_uri=data.get("redirect_uri"),
        # Older exports carry no outcomes; such records read as
        # authoritative (no transient give-ups), matching their era.
        outcomes={
            collection: CrawlOutcome(
                collection=collection,
                status=entry.get("status", "ok"),
                attempts=int(entry.get("attempts", 0)),
                faults=list(entry.get("faults", [])),
                elapsed_s=float(entry.get("elapsed_s", 0.0)),
            )
            for collection, entry in data.get("outcomes", {}).items()
        },
    )


def dataset_to_dict(result: "PipelineResult") -> dict:
    """The D-Sample dataset as a JSON-serialisable dictionary (v2)."""
    bundle = result.bundle
    entries = []
    for app_id in sorted(bundle.d_sample):
        record = bundle.records[app_id]
        entry = _record_to_dict(record)
        entry["label"] = bundle.label(app_id)
        entry["external_link_ratio"] = result.extractor.feature_value(
            "external_link_ratio", record
        )
        entry["name_matches_malicious"] = result.extractor.feature_value(
            "name_matches_malicious", record
        )
        entries.append(entry)
    return {
        "format_version": _FORMAT_VERSION,
        "records_sha256": _records_checksum(entries),
        "paper": "FRAppE (CoNEXT 2012) reproduction",
        "scale": result.world.config.scale,
        "seed": result.world.config.master_seed,
        "n_benign": len(bundle.d_sample_benign),
        "n_malicious": len(bundle.d_sample_malicious),
        "records": entries,
    }


def migrate_dataset_v1_to_v2(data: dict) -> dict:
    """Upgrade a loaded v1 dataset dict to v2 (adds the checksum).

    Returns a new dict; the input is not mutated.  The checksum is
    computed over the v1 records as-is — migration vouches for the
    bytes from here on, it cannot retroactively detect damage that
    predates it.
    """
    version = data.get("format_version")
    if version != 1:
        raise DatasetFormatError(
            f"migrate_dataset_v1_to_v2 expects format_version 1, got "
            f"{version!r}"
        )
    migrated = dict(data)
    migrated["format_version"] = 2
    migrated["records_sha256"] = _records_checksum(data["records"])
    return migrated


def export_dataset(result: "PipelineResult", path: str | Path) -> Path:
    """Write the labelled D-Sample dataset to *path* as JSON, atomically."""
    return atomic_write(path, json.dumps(dataset_to_dict(result), indent=1))


def load_dataset(path: str | Path) -> tuple[list[CrawlRecord], list[int], dict]:
    """Load an exported dataset: (records, labels, metadata).

    Accepts format v2 (checksum verified) and v1 (migrated in memory).
    Raises :class:`DatasetFormatError` — never a raw JSON traceback —
    for corrupt/truncated files, unknown versions, and checksum
    mismatches.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as err:
        raise DatasetFormatError(
            f"{path} is not valid JSON ({err}); the export is likely "
            "truncated or corrupt. Re-export it with `repro export` (v2 "
            "exports are written atomically and checksummed)."
        ) from err
    version = data.get("format_version")
    if version == 1:
        data = migrate_dataset_v1_to_v2(data)
    elif version != _FORMAT_VERSION:
        raise DatasetFormatError(
            f"unsupported dataset format version: {version!r} (supported: "
            "1 — migrated on load — and 2). Re-export the dataset with "
            "this version of `repro export`."
        )
    try:
        entries = data["records"]
        stored = data["records_sha256"]
    except KeyError as err:
        raise DatasetFormatError(
            f"{path} is missing the {err.args[0]!r} field; the export is "
            "incomplete. Re-export it with `repro export`."
        ) from err
    actual = _records_checksum(entries)
    if actual != stored:
        raise DatasetFormatError(
            f"{path} failed its integrity check (records_sha256 mismatch: "
            f"stored {stored[:12]}…, computed {actual[:12]}…); the file "
            "was corrupted after export. Restore it from a good copy or "
            "re-export with `repro export`."
        )
    records, labels = [], []
    for entry in entries:
        records.append(_record_from_dict(entry))
        labels.append(int(entry["label"]))
    metadata = {k: v for k, v in data.items() if k != "records"}
    return records, labels, metadata
