"""AppNet forensics (Sec 6).

Rediscovers the collusion (promoter/promotee) graph from observed posts:
direct links to other apps' installation URLs, and shortened links to
indirection websites that are probed repeatedly to enumerate the apps
they forward to — the paper's own measurement method.
"""

from repro.collusion.graph import DirectedGraph
from repro.collusion.appnets import (
    AppNetStats,
    CollusionAnalyzer,
    CollusionGraph,
    IndirectionStats,
)

__all__ = [
    "DirectedGraph",
    "AppNetStats",
    "CollusionAnalyzer",
    "CollusionGraph",
    "IndirectionStats",
]
