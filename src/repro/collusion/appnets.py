"""Discovering and quantifying AppNets from observed posts (Sec 6.1).

The analyzer follows the paper's method:

1. scan posted links; expand shortened URLs through the shorteners'
   APIs (some fail — private/deleted links),
2. a link to ``facebook.com/apps/application.php?id=X`` is a *direct*
   promotion edge from the posting app to X,
3. a link to an external website that forwards to app installation
   pages is an *indirection* site; each is probed repeatedly (the paper
   followed every site 100 times a day for 1.5 months) to enumerate the
   promoted apps,
4. the resulting directed graph is analysed: roles (promoter /
   promotee / dual), components, degrees, clustering, hosting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.collusion.graph import DirectedGraph
from repro.urlinfra.url import Url

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["CollusionGraph", "IndirectionStats", "AppNetStats", "CollusionAnalyzer"]

_INSTALL_PATH = "/apps/application.php"


@dataclass
class IndirectionStats:
    """What the indirection-site probe discovered (Sec 6.1b)."""

    #: site URL -> set of app IDs observed landing there
    site_targets: dict[str, set[str]] = field(default_factory=dict)
    #: site URL -> promoter app IDs that posted (short links to) it
    site_promoters: dict[str, set[str]] = field(default_factory=dict)
    #: how many of the posted links to sites were shortened via bit.ly
    bitly_links: int = 0
    total_short_links: int = 0

    @property
    def n_sites(self) -> int:
        return len(self.site_targets)

    def promoters(self) -> set[str]:
        return set().union(*self.site_promoters.values()) if self.site_promoters else set()

    def promotees(self) -> set[str]:
        return set().union(*self.site_targets.values()) if self.site_targets else set()

    def sites_over(self, n_apps: int) -> int:
        return sum(1 for t in self.site_targets.values() if len(t) > n_apps)


@dataclass
class CollusionGraph:
    """The discovered promotion graph plus per-mechanism detail."""

    graph: DirectedGraph
    #: edges discovered through direct install-URL links
    direct_edges: set[tuple[str, str]] = field(default_factory=set)
    indirection: IndirectionStats = field(default_factory=IndirectionStats)

    def promoters(self) -> set[str]:
        """Apps that only promote (out-edges, no in-edges)."""
        g = self.graph
        return {
            n for n in g.nodes() if g.out_degree(n) > 0 and g.in_degree(n) == 0
        }

    def promotees(self) -> set[str]:
        """Apps that are only promoted."""
        g = self.graph
        return {
            n for n in g.nodes() if g.in_degree(n) > 0 and g.out_degree(n) == 0
        }

    def dual_role(self) -> set[str]:
        g = self.graph
        return {
            n for n in g.nodes() if g.in_degree(n) > 0 and g.out_degree(n) > 0
        }

    def direct_promoters(self) -> set[str]:
        return {src for src, _ in self.direct_edges}

    def direct_promotees(self) -> set[str]:
        return {dst for _, dst in self.direct_edges}


@dataclass(frozen=True)
class AppNetStats:
    """The summary numbers Sec 6.1 reports."""

    n_colluding: int
    n_promoters: int
    n_promotees: int
    n_dual: int
    n_components: int
    top_component_sizes: tuple[int, ...]
    degree_over_10_fraction: float
    max_degree: int
    clustering_over_074_fraction: float
    largest_component_average_degree: float


class CollusionAnalyzer:
    """Runs the Sec 6 forensics over a simulated world's post log."""

    def __init__(self, world: "SimulatedWorld", probe_visits: int = 4500) -> None:
        self._world = world
        self._probe_visits = probe_visits

    # -- discovery ------------------------------------------------------

    def discover(self) -> CollusionGraph:
        """Build the collusion graph from every posted link."""
        world = self._world
        result = CollusionGraph(graph=DirectedGraph())
        #: long URL -> set of poster app IDs, expanding short links once
        posters_by_long_url: dict[str, set[str]] = {}
        for app_id in world.post_log.app_ids():
            for url in world.post_log.urls_of_app(app_id):
                long_url, was_bitly, was_short = self._expand(url)
                if long_url is None:
                    continue
                entry = posters_by_long_url.setdefault(long_url, set())
                if was_short and world.services.redirector.is_indirection(long_url):
                    result.indirection.total_short_links += 1
                    result.indirection.bitly_links += int(was_bitly)
                entry.add(app_id)

        for long_url, posters in posters_by_long_url.items():
            target = self._direct_target(long_url)
            if target is not None:
                for poster in posters:
                    if poster != target:
                        result.graph.add_edge(poster, target)
                        result.direct_edges.add((poster, target))
                continue
            if world.services.redirector.is_indirection(long_url):
                landed = world.services.redirector.probe(
                    long_url, self._probe_visits
                )
                result.indirection.site_targets[long_url] = landed
                result.indirection.site_promoters[long_url] = set(posters)
                for poster in posters:
                    for target in landed:
                        if poster != target:
                            result.graph.add_edge(poster, target)
        return result

    def _expand(self, url: str) -> tuple[str | None, bool, bool]:
        """Resolve *url*: returns (long URL or None, via bit.ly, was short)."""
        for domain, shortener in self._world.services.shorteners.items():
            if shortener.owns(url):
                return shortener.expand(url), domain == "bit.ly", True
        return url, False, False

    @staticmethod
    def _direct_target(url: str) -> str | None:
        """App ID if *url* is an app installation URL, else None."""
        try:
            parsed = Url.parse(url)
        except ValueError:
            return None
        if parsed.domain == "facebook.com" and parsed.path == _INSTALL_PATH:
            return parsed.params.get("id")
        return None

    # -- statistics ------------------------------------------------------------

    def stats(self, collusion: CollusionGraph, top_n: int = 5) -> AppNetStats:
        graph = collusion.graph
        nodes = graph.nodes()
        components = graph.connected_components()
        degrees = [graph.degree(n) for n in nodes]
        coefficients = [graph.local_clustering(n) for n in nodes]
        largest = components[0] if components else set()
        return AppNetStats(
            n_colluding=len(nodes),
            n_promoters=len(collusion.promoters()),
            n_promotees=len(collusion.promotees()),
            n_dual=len(collusion.dual_role()),
            n_components=len(components),
            top_component_sizes=tuple(len(c) for c in components[:top_n]),
            degree_over_10_fraction=(
                sum(1 for d in degrees if d > 10) / len(degrees) if degrees else 0.0
            ),
            max_degree=max(degrees, default=0),
            clustering_over_074_fraction=(
                sum(1 for c in coefficients if c > 0.74) / len(coefficients)
                if coefficients
                else 0.0
            ),
            largest_component_average_degree=graph.average_degree(largest),
        )

    def hosting_providers(self, collusion: CollusionGraph) -> dict[str, int]:
        """Provider -> number of indirection sites hosted there."""
        histogram = self._world.services.hosting.provider_histogram(
            list(collusion.indirection.site_targets)
        )
        return dict(histogram)

    def name_reuse(self, collusion: CollusionGraph) -> tuple[int, int]:
        """(unique promoter names, unique promotee names) via sites."""
        registry = self._world.registry
        promoter_names = {
            registry.get(a).name
            for a in collusion.indirection.promoters()
            if a in registry
        }
        promotee_names = {
            registry.get(a).name
            for a in collusion.indirection.promotees()
            if a in registry
        }
        return len(promoter_names), len(promotee_names)
