"""A small directed graph with the analyses Sec 6.1 needs.

Implemented from scratch (connected components via iterative DFS, local
clustering coefficients on the undirected view); the test suite
cross-validates both against networkx.
"""

from __future__ import annotations

from typing import Hashable, Iterator

__all__ = ["DirectedGraph"]


class DirectedGraph:
    """Directed graph over hashable nodes, with an undirected view."""

    def __init__(self) -> None:
        self._out: dict[Hashable, set[Hashable]] = {}
        self._in: dict[Hashable, set[Hashable]] = {}

    # -- construction ------------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        if src == dst:
            return  # self-promotion is not collusion
        self.add_node(src)
        self.add_node(dst)
        self._out[src].add(dst)
        self._in[dst].add(src)

    # -- basic queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._out)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._out

    def nodes(self) -> list[Hashable]:
        return list(self._out)

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        for src, dsts in self._out.items():
            for dst in dsts:
                yield src, dst

    def edge_count(self) -> int:
        return sum(len(dsts) for dsts in self._out.values())

    def successors(self, node: Hashable) -> set[Hashable]:
        return set(self._out[node])

    def predecessors(self, node: Hashable) -> set[Hashable]:
        return set(self._in[node])

    def out_degree(self, node: Hashable) -> int:
        return len(self._out[node])

    def in_degree(self, node: Hashable) -> int:
        return len(self._in[node])

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Undirected neighborhood (successors ∪ predecessors)."""
        return self._out[node] | self._in[node]

    def degree(self, node: Hashable) -> int:
        """Undirected degree — the paper's "number of collusions"."""
        return len(self.neighbors(node))

    # -- components -------------------------------------------------------------

    def connected_components(self) -> list[set[Hashable]]:
        """Weakly connected components, largest first."""
        seen: set[Hashable] = set()
        components: list[set[Hashable]] = []
        for start in self._out:
            if start in seen:
                continue
            component: set[Hashable] = set()
            stack = [start]
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(self.neighbors(node) - component)
            seen |= component
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    # -- clustering ----------------------------------------------------------------

    def local_clustering(self, node: Hashable) -> float:
        """Local clustering coefficient on the undirected view.

        Edges among the neighbors of *node* over the maximum possible;
        nodes with fewer than two neighbors have coefficient 0 (the
        networkx convention).
        """
        neighborhood = self.neighbors(node)
        k = len(neighborhood)
        if k < 2:
            return 0.0
        links = 0
        for u in neighborhood:
            # Count undirected adjacency within the neighborhood once.
            links += len((self._out[u] | self._in[u]) & neighborhood)
        links //= 2  # every undirected edge counted from both ends
        return links / (k * (k - 1) / 2)

    def clustering_coefficients(self) -> dict[Hashable, float]:
        return {node: self.local_clustering(node) for node in self._out}

    def average_degree(self, nodes: set[Hashable] | None = None) -> float:
        targets = nodes if nodes is not None else set(self._out)
        if not targets:
            return 0.0
        return sum(self.degree(n) for n in targets) / len(targets)

    def subgraph(self, nodes: set[Hashable]) -> "DirectedGraph":
        sub = DirectedGraph()
        for node in nodes:
            if node in self._out:
                sub.add_node(node)
        for src, dst in self.edges():
            if src in nodes and dst in nodes:
                sub.add_edge(src, dst)
        return sub
