"""``repro.obs`` — deterministic tracing, metrics, and profiling.

The observability subsystem for the crawl → features → cascade → serve
stack.  Three backends behind one :class:`~repro.obs.observer.Observer`
protocol:

* the structured **tracer** (:mod:`repro.obs.tracer`) — spans with
  parent/child causality and typed events, timestamped on the
  *simulated* clock so traces are byte-reproducible,
* the **metrics registry** (:mod:`repro.obs.metrics`) — counters,
  gauges, bounded histograms; JSONL and Prometheus-style dumps,
* the **profiler** (:mod:`repro.obs.profiler`) — per-stage simulated
  cost next to real CPU time.

The default observer is a no-op: with it installed (which is always,
unless a caller opts in via :func:`set_observer` / :func:`observation`
or the CLI's ``--trace``/``--metrics`` flags) the pipeline is
bit-identical to an unobserved one — no RNG draws, no simulated-clock
consumption, no output change.
"""

from repro.obs.metrics import DEFAULT_SECONDS_EDGES, Histogram, MetricsRegistry
from repro.obs.observer import (
    NULL_OBSERVER,
    NullObserver,
    Observer,
    TracingObserver,
    get_observer,
    observation,
    set_observer,
)
from repro.obs.profiler import Profiler, StageProfile
from repro.obs.replay import (
    load_trace,
    render_summary,
    render_tree,
    walk_events,
    walk_spans,
)
from repro.obs.tracer import NULL_SPAN, Span, TraceEvent, Tracer

__all__ = [
    "Observer",
    "NullObserver",
    "TracingObserver",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "observation",
    "Tracer",
    "Span",
    "TraceEvent",
    "NULL_SPAN",
    "MetricsRegistry",
    "Histogram",
    "DEFAULT_SECONDS_EDGES",
    "Profiler",
    "StageProfile",
    "load_trace",
    "render_tree",
    "render_summary",
    "walk_spans",
    "walk_events",
]
