"""The structured tracer: spans with causality, typed events, no wall clock.

A **span** is one unit of work with a begin/end on a simulated clock
(``t_start``/``t_end``), a bag of typed attributes, a list of point
**events**, and child spans.  Causality is the tree: a span opened while
another is open on the same thread becomes its child; otherwise it is a
**root** span, registered under a ``(category, key)`` identity.

Determinism
-----------
Traces must be byte-reproducible across runs *and* across crawl worker
counts, which drives three rules:

* **Timestamps are simulated.**  Hook sites pass ``t`` from the
  transport's app-frame clock (crawl side), the global simulated clock
  (serve side), or an iteration index (training).  Wall time never
  appears.
* **Roots are canonically ordered.**  The export sorts root spans by
  ``(category, key)``, not by completion order — so the nondeterministic
  interleaving of parallel crawl workers cannot reach the bytes.
* **Last recording wins.**  Re-recording a root key replaces the
  previous recording.  The batch-parallel scheduler speculates an app's
  crawl in a sandbox and occasionally re-crawls it inline against the
  true state; whichever crawl produced the *committed* record is also
  the one whose root span survives, matching the sequential trace.

Scheduling metadata (category ``"schedule"``) exists only in
multi-worker runs; exports can exclude it (``categories=...``) when
comparing traces across worker counts.
"""

from __future__ import annotations

import json
import threading
from typing import Any

__all__ = ["TraceEvent", "Span", "NULL_SPAN", "Tracer"]


class TraceEvent:
    """One typed point event inside a span."""

    __slots__ = ("name", "t", "attrs")

    def __init__(
        self, name: str, t: float = 0.0, attrs: dict[str, Any] | None = None
    ) -> None:
        self.name = name
        self.t = t
        self.attrs = attrs if attrs is not None else {}

    def to_jsonable(self) -> dict[str, Any]:
        return {"name": self.name, "t": self.t, "attrs": self.attrs}


class Span:
    """One traced unit of work (see module docstring)."""

    __slots__ = (
        "name", "key", "category", "t_start", "t_end",
        "attrs", "events", "children",
    )

    def __init__(
        self,
        name: str,
        key: str,
        category: str,
        t_start: float = 0.0,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self.key = key
        self.category = category
        self.t_start = t_start
        self.t_end = t_start
        self.attrs: dict[str, Any] = attrs or {}
        self.events: list[TraceEvent] = []
        self.children: list["Span"] = []

    def note(self, **attrs: Any) -> None:
        """Merge attributes into the span (usable even after close)."""
        self.attrs.update(attrs)

    def end(self, t: float) -> None:
        """Set the span's end timestamp (same clock as ``t_start``)."""
        self.t_end = t

    @property
    def duration_s(self) -> float:
        return max(0.0, self.t_end - self.t_start)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "key": self.key,
            "category": self.category,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": self.attrs,
            "events": [event.to_jsonable() for event in self.events],
            "children": [child.to_jsonable() for child in self.children],
        }


class _NullSpan(Span):
    """The shared do-nothing span the null observer hands out."""

    def __init__(self) -> None:
        super().__init__("", "", "")

    def note(self, **attrs: Any) -> None:
        return None

    def end(self, t: float) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    """The context manager :meth:`Tracer.span` hands out.

    A hand-rolled CM (not ``@contextmanager``): span open/close sits on
    the hottest instrumented paths, and the generator machinery costs
    several times the bookkeeping it wraps.
    """

    __slots__ = ("_tracer", "_span", "_parent")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        tls = self._tracer._tls
        stack = getattr(tls, "stack", None)
        if stack is None:
            stack = tls.stack = []
        self._parent = stack[-1] if stack else None
        stack.append(self._span)
        return self._span

    def __exit__(self, *exc: Any) -> None:
        tracer = self._tracer
        span = self._span
        tracer._tls.stack.pop()
        parent = self._parent
        if parent is not None:
            parent.children.append(span)
        else:
            with tracer._lock:
                # Last recording wins: a scheduler inline re-crawl
                # replaces the discarded speculation's trace.
                tracer._roots[(span.category, span.key)] = span
        return None


class Tracer:
    """Collects spans/events; exports a canonical JSONL trace."""

    def __init__(self) -> None:
        self._roots: dict[tuple[str, str], Span] = {}
        self._auto: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- the span stack (per thread) ---------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _auto_key(self, category: str, name: str) -> str:
        """A deterministic per-``(category, name)`` sequence key.

        Only safe for single-threaded span families (serve requests,
        SVM fits); parallel crawl spans key on the app ID instead.
        """
        with self._lock:
            index = self._auto.get((category, name), 0)
            self._auto[(category, name)] = index + 1
        return f"{index:06d}"

    def span(
        self,
        name: str,
        key: str | None = None,
        category: str = "crawl",
        t: float = 0.0,
        **attrs: Any,
    ) -> _SpanContext:
        """Open a span; nested spans become children, others roots."""
        if key is None:
            key = self._auto_key(category, name)
        return _SpanContext(
            self, Span(name, key=key, category=category, t_start=t, attrs=attrs)
        )

    def event(
        self, name: str, t: float = 0.0, category: str = "crawl", **attrs: Any
    ) -> None:
        """Record a point event on the current span (or a category root)."""
        stack = getattr(self._tls, "stack", None)
        if stack:
            stack[-1].events.append(TraceEvent(name, t, attrs))
            return
        with self._lock:
            root = self._roots.get((category, "_root"))
            if root is None:
                root = Span("_root", key="_root", category=category)
                self._roots[(category, "_root")] = root
            root.events.append(TraceEvent(name, t, attrs))

    # -- export ------------------------------------------------------------

    def roots(self, categories: tuple[str, ...] | None = None) -> list[Span]:
        """Root spans in canonical ``(category, key)`` order."""
        with self._lock:
            items = sorted(self._roots.items())
        return [
            span for (category, _key), span in items
            if categories is None or category in categories
        ]

    def to_jsonl(self, categories: tuple[str, ...] | None = None) -> str:
        """One canonical JSON line per root span, sorted keys throughout."""
        lines = [
            json.dumps(span.to_jsonable(), sort_keys=True, separators=(",", ":"))
            for span in self.roots(categories)
        ]
        return "".join(line + "\n" for line in lines)

    def export(
        self, path, categories: tuple[str, ...] | None = None
    ):
        """Write the canonical trace to *path* atomically; returns the path."""
        from repro.crawler.checkpoint import atomic_write

        return atomic_write(path, self.to_jsonl(categories))
