"""Trace replay: turn an exported trace back into a causal view.

``repro obs TRACE.jsonl`` reads the canonical JSONL trace the tracer
exported and renders either

* a **causal tree** — every root span with its nested children and
  typed events, timestamps on the simulated clock it was recorded
  against (app-frame seconds on the crawl side), or
* a **per-stage summary table** — span/event tallies aggregated by
  name: counts, total simulated duration, and the attribute values that
  matter operationally (fault kinds, breaker transitions, ladder rungs).

The replay works from the file alone — no live tracer, no pipeline —
so a trace uploaded from CI can be investigated anywhere.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "load_trace",
    "render_tree",
    "render_summary",
    "walk_spans",
    "walk_events",
]


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Parse a canonical JSONL trace into root-span dicts (file order)."""
    roots: list[dict[str, Any]] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            span = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}:{number}: not a JSON span: {err}") from err
        if not isinstance(span, dict) or "name" not in span:
            raise ValueError(f"{path}:{number}: not a span object")
        roots.append(span)
    return roots


def walk_spans(roots: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """Every span in the trace, depth-first."""
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.get("children", [])))


def walk_events(
    roots: list[dict[str, Any]]
) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
    """``(span, event)`` pairs over the whole trace, depth-first."""
    for span in walk_spans(roots):
        for event in span.get("events", []):
            yield span, event


def _attr_text(attrs: dict[str, Any]) -> str:
    return " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))


def _render_span(span: dict[str, Any], indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    head = (
        f"{pad}{span['name']} [{span.get('key', '')}] "
        f"t={span.get('t_start', 0.0):.2f}..{span.get('t_end', 0.0):.2f}s"
    )
    attrs = span.get("attrs", {})
    if attrs:
        head += f"  {_attr_text(attrs)}"
    lines.append(head)
    for event in span.get("events", []):
        lines.append(
            f"{pad}  · {event['name']} t={event.get('t', 0.0):.2f}s "
            f"{_attr_text(event.get('attrs', {}))}".rstrip()
        )
    for child in span.get("children", []):
        _render_span(child, indent + 1, lines)


def render_tree(
    roots: list[dict[str, Any]],
    category: str | None = None,
    key: str | None = None,
    limit: int | None = None,
) -> str:
    """The causal tree, optionally filtered by category and/or root key."""
    selected = [
        span for span in roots
        if (category is None or span.get("category") == category)
        and (key is None or key in str(span.get("key", "")))
    ]
    shown = selected if limit is None else selected[:limit]
    lines: list[str] = []
    for span in shown:
        _render_span(span, 0, lines)
    if limit is not None and len(selected) > limit:
        lines.append(f"... ({len(selected) - limit} more root spans)")
    return "\n".join(lines) if lines else "(no spans matched)"


def render_summary(roots: list[dict[str, Any]]) -> str:
    """Per-stage tallies: span counts/durations and event breakdowns."""
    span_counts: Counter[str] = Counter()
    span_duration: Counter[str] = Counter()
    event_counts: Counter[str] = Counter()
    fault_kinds: Counter[str] = Counter()
    transitions: Counter[str] = Counter()
    rungs: Counter[str] = Counter()
    for span in walk_spans(roots):
        if span["name"] != "_root":
            span_counts[span["name"]] += 1
            span_duration[span["name"]] += max(
                0.0, span.get("t_end", 0.0) - span.get("t_start", 0.0)
            )
        rung = span.get("attrs", {}).get("rung")
        if rung is not None:
            rungs[str(rung)] += 1
    for _span, event in walk_events(roots):
        event_counts[event["name"]] += 1
        attrs = event.get("attrs", {})
        if event["name"] in ("retry.fault", "transport.fault"):
            fault_kinds[str(attrs.get("kind"))] += 1
        if event["name"] == "breaker.transition":
            transitions[f"{attrs.get('from_state')}->{attrs.get('to_state')}"] += 1
    lines = [f"{'span':<22} {'count':>7} {'sim_s total':>12}"]
    for name in sorted(span_counts):
        lines.append(
            f"{name:<22} {span_counts[name]:>7} {span_duration[name]:>12.1f}"
        )
    lines.append("")
    lines.append(f"{'event':<22} {'count':>7}")
    for name in sorted(event_counts):
        lines.append(f"{name:<22} {event_counts[name]:>7}")
    for title, counter in (
        ("fault kinds", fault_kinds),
        ("breaker transitions", transitions),
        ("ladder rungs", rungs),
    ):
        if counter:
            lines.append("")
            lines.append(
                f"{title}: "
                + ", ".join(f"{k}={v}" for k, v in sorted(counter.items()))
            )
    return "\n".join(lines)
