"""Profiling hooks: simulated-cost and real CPU time per pipeline stage.

The simulated clock says what a run *would have cost* on the modelled
platform (crawl latency, backoff, cache hits); ``time.process_time``
says what it *did cost* in CPU on this machine.  The profiler keeps the
two attributions side by side per stage (``crawl``, ``score``,
``serve``, ``train``), so a report can show e.g. that 97% of simulated
time is crawl latency while 80% of real CPU is SVM scoring.

The profiler is the one observability backend whose output is **not**
deterministic (CPU time varies run to run); it is therefore kept out of
trace exports and compared only as structure, never bytes.  Reading
``process_time`` happens only when observation is enabled, so the
disabled path touches no clock of any kind.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["StageProfile", "Profiler"]


class StageProfile:
    """Accumulated attribution for one stage."""

    __slots__ = ("calls", "cpu_s", "sim_s")

    def __init__(self) -> None:
        self.calls = 0
        self.cpu_s = 0.0
        self.sim_s = 0.0

    def to_jsonable(self) -> dict[str, Any]:
        return {"calls": self.calls, "cpu_s": self.cpu_s, "sim_s": self.sim_s}


class _StageTimer:
    """The CM :meth:`Profiler.stage` hands out (hand-rolled for speed)."""

    __slots__ = ("_profiler", "_profile", "_started")

    def __init__(self, profiler: "Profiler", profile: StageProfile) -> None:
        self._profiler = profiler
        self._profile = profile

    def __enter__(self) -> StageProfile:
        self._started = time.process_time()
        return self._profile

    def __exit__(self, *exc: Any) -> None:
        elapsed = time.process_time() - self._started
        profile = self._profile
        with self._profiler._lock:
            profile.calls += 1
            profile.cpu_s += elapsed
        return None


class Profiler:
    """Per-stage CPU/simulated-cost attribution (thread-safe)."""

    def __init__(self) -> None:
        self._stages: dict[str, StageProfile] = {}
        self._lock = threading.Lock()

    def _stage(self, name: str) -> StageProfile:
        profile = self._stages.get(name)
        if profile is None:
            profile = self._stages.setdefault(name, StageProfile())
        return profile

    def stage(self, name: str) -> _StageTimer:
        """Attribute the block's real CPU time to *name*."""
        return _StageTimer(self, self._stage(name))

    def add_sim(self, name: str, seconds: float) -> None:
        """Attribute *seconds* of simulated cost to stage *name*."""
        profile = self._stage(name)
        with self._lock:
            profile.sim_s += float(seconds)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """``{stage: {calls, cpu_s, sim_s}}``, stages sorted."""
        with self._lock:
            return {
                name: self._stages[name].to_jsonable()
                for name in sorted(self._stages)
            }

    def render(self) -> str:
        """A fixed-width per-stage table (CPU vs simulated attribution)."""
        rows = self.snapshot()
        if not rows:
            return "(no profiled stages)"
        lines = [f"{'stage':<12} {'calls':>8} {'cpu_s':>10} {'sim_s':>12}"]
        for name, data in rows.items():
            lines.append(
                f"{name:<12} {data['calls']:>8} "
                f"{data['cpu_s']:>10.3f} {data['sim_s']:>12.1f}"
            )
        return "\n".join(lines)
