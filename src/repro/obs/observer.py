"""The ``Observer`` protocol: one injection point for all instrumentation.

Every hook site in the crawl/score/serve stack does the same two-step::

    obs = get_observer()
    if obs.enabled:
        obs.event("retry.attempt", t=..., endpoint=..., app_id=...)

The default observer is :data:`NULL_OBSERVER`, whose every method is a
no-op and whose ``enabled`` is ``False`` — so the disabled path costs
one global read and one attribute check, consumes **no RNG draws and no
simulated-clock time**, and the instrumented pipeline is bit-identical
to an uninstrumented one (asserted in ``tests/test_obs_identity.py``).

A :class:`TracingObserver` composes the three observability backends —
the structured :class:`~repro.obs.tracer.Tracer`, the
:class:`~repro.obs.metrics.MetricsRegistry`, and the
:class:`~repro.obs.profiler.Profiler` — behind the same protocol.

Determinism contract
--------------------
Hook sites supply their own timestamps (``t=...``), always taken from a
*simulated* clock: the transport's app-frame clock on the crawl side
(bit-identical between the sequential loop and the batch-parallel
scheduler's sandboxes), the global simulated clock on the serve side
(single-threaded), and the iteration index during SVM training.  Wall
time never enters a trace; it only enters the profiler, whose output is
explicitly non-deterministic and kept out of trace exports.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import Profiler
from repro.obs.tracer import NULL_SPAN, Span, Tracer

__all__ = [
    "Observer",
    "NullObserver",
    "TracingObserver",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "observation",
]


class Observer:
    """The no-op base every hook site talks to.

    Subclasses override what they need; the base class is itself the
    null implementation so a partial observer (metrics only, say) stays
    trivially correct.  ``enabled`` gates *everything*: hook sites skip
    even timestamp reads when it is ``False``.
    """

    enabled: bool = False

    # -- tracing -----------------------------------------------------------

    def span(
        self,
        name: str,
        key: str | None = None,
        category: str = "crawl",
        t: float = 0.0,
        **attrs: Any,
    ):
        """A context manager yielding a span handle (no-op: NULL_SPAN)."""
        return _NULL_SPAN_CM

    def event(
        self, name: str, t: float = 0.0, category: str = "crawl", **attrs: Any
    ) -> None:
        """Record one typed point event (attached to the current span)."""

    # -- metrics -----------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        """Increment a counter."""

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge."""

    def observe(
        self,
        name: str,
        value: float,
        edges: tuple[float, ...] | None = None,
        **labels: str,
    ) -> None:
        """Record one sample into a bounded histogram."""

    def scrape(self, prefix: str, source: Any) -> None:
        """Scrape a component's uniform ``snapshot() -> dict`` into gauges."""

    # -- profiling ---------------------------------------------------------

    def profile(self, stage: str):
        """A context manager attributing real CPU time to *stage*."""
        return _NULL_SPAN_CM

    def sim_cost(self, stage: str, seconds: float) -> None:
        """Attribute *seconds* of simulated cost to *stage*."""


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN_CM = _NullSpanContext()


class NullObserver(Observer):
    """The default: observation off, every hook a no-op."""


NULL_OBSERVER = NullObserver()


class TracingObserver(Observer):
    """Tracer + metrics registry + profiler behind the Observer protocol."""

    enabled = True

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: Profiler | None = None,
    ) -> None:
        self.tracer = tracer or Tracer()
        self.metrics = metrics or MetricsRegistry()
        self.profiler = profiler or Profiler()
        # Hook sites call these thousands of times per run; the backend
        # signatures match the protocol exactly, so bind the bound
        # methods directly and each hook costs one call frame.
        self.span = self.tracer.span
        self.event = self.tracer.event
        self.count = self.metrics.count
        self.gauge = self.metrics.gauge
        self.observe = self.metrics.observe
        self.profile = self.profiler.stage
        self.sim_cost = self.profiler.add_sim

    def scrape(self, prefix: str, source: Any) -> None:
        self.metrics.scrape(prefix, source.snapshot())


# -- the current observer ---------------------------------------------------
#
# One process-wide slot, defaulting to the null observer.  The crawl
# scheduler's worker threads read the same slot, so a single
# ``set_observer`` instruments a whole batch-parallel crawl.

_current: Observer = NULL_OBSERVER


def get_observer() -> Observer:
    """The observer hook sites report to (default: :data:`NULL_OBSERVER`)."""
    return _current


def set_observer(observer: Observer | None) -> Observer:
    """Install *observer* (``None`` = null); returns the previous one."""
    global _current
    previous = _current
    _current = observer if observer is not None else NULL_OBSERVER
    return previous


@contextmanager
def observation(observer: Observer | None) -> Iterator[Observer]:
    """Install *observer* for the duration of a ``with`` block."""
    previous = set_observer(observer)
    try:
        yield get_observer()
    finally:
        set_observer(previous)
