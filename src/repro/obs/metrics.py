"""The metrics registry: counters, gauges, bounded histograms.

Metrics are the *aggregate* window on the same hook points the tracer
sees: a counter per fault kind, a gauge per queue depth, a histogram of
simulated request latencies.  Three rules keep the registry safe in a
deterministic pipeline:

* **Bounded.**  Histograms have *fixed* bucket edges chosen at first
  observation (or passed explicitly) — no dynamic resizing, so memory
  is O(series), never O(samples).
* **Canonical.**  Exports sort by metric name then label set, so two
  identical runs produce byte-identical dumps.
* **Scrapeable.**  Components with a uniform ``snapshot() -> dict``
  (``TransportStats``, ``AdmissionQueue``, ``VerdictCache``) are folded
  into gauges by :meth:`MetricsRegistry.scrape` — one shape, one code
  path, instead of per-component adapters.

Two export formats: JSONL (one metric series per line) and a
Prometheus-style text dump, both written via
:func:`~repro.crawler.checkpoint.atomic_write`.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Any

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_SECONDS_EDGES"]

#: default bucket edges for simulated-seconds histograms: spans the
#: cache-hit cost (10ms) up to the per-app crawl budget (30 min)
DEFAULT_SECONDS_EDGES: tuple[float, ...] = (
    0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    # Hook sites pass zero or one label almost always; skip the
    # genexp+sort on those hot shapes (kwargs keys are already str).
    if not labels:
        return ()
    if len(labels) == 1:
        [(k, v)] = labels.items()
        return ((k, str(v)),)
    if len(labels) == 2:
        (k1, v1), (k2, v2) = labels.items()
        if k1 <= k2:
            return ((k1, str(v1)), (k2, str(v2)))
        return ((k2, str(v2)), (k1, str(v1)))
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """A fixed-bucket histogram (cumulative on export, Prometheus-style)."""

    __slots__ = ("edges", "counts", "total", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"bucket edges must be strictly increasing: {edges}")
        self.edges = tuple(float(e) for e in edges)
        #: per-bucket counts; one extra bucket for +Inf
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left finds the first edge >= value — exactly the
        # ``value <= edge`` bucket; past the last edge it returns
        # len(edges), the +Inf bucket.
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative bucket counts (``le`` semantics), +Inf last."""
        out, running = [], 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, tuple], float] = {}
        self._gauges: dict[tuple[str, tuple], float] = {}
        self._histograms: dict[tuple[str, tuple], Histogram] = {}
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: str) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: tuple[float, ...] | None = None,
        **labels: str,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    edges if edges is not None else DEFAULT_SECONDS_EDGES
                )
        histogram.observe(value)

    def scrape(self, prefix: str, snapshot: dict[str, Any]) -> None:
        """Fold a uniform ``snapshot()`` dict into ``<prefix>_*`` gauges.

        Numbers become gauges, ``{str: number}`` sub-dicts become one
        labelled gauge per entry (label ``key``), and lists/sets are
        collapsed to their length — so every component with the uniform
        snapshot shape is scrapeable without a bespoke adapter.
        """
        for field, value in snapshot.items():
            name = f"{prefix}_{field}"
            if isinstance(value, bool):
                self.gauge(name, float(value))
            elif isinstance(value, (int, float)):
                self.gauge(name, float(value))
            elif isinstance(value, dict):
                for label, entry in value.items():
                    if isinstance(entry, (int, float)):
                        self.gauge(name, float(entry), key=str(label))
            elif isinstance(value, (list, tuple, set, frozenset)):
                self.gauge(name, float(len(value)))

    # -- reading -----------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def gauge_value(self, name: str, **labels: str) -> float | None:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    def histogram_of(self, name: str, **labels: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get((name, _label_key(labels)))

    # -- export ------------------------------------------------------------

    def _series(self) -> list[dict[str, Any]]:
        with self._lock:
            rows: list[dict[str, Any]] = []
            for (name, labels), value in self._counters.items():
                rows.append(
                    {"type": "counter", "name": name,
                     "labels": dict(labels), "value": value}
                )
            for (name, labels), value in self._gauges.items():
                rows.append(
                    {"type": "gauge", "name": name,
                     "labels": dict(labels), "value": value}
                )
            for (name, labels), histogram in self._histograms.items():
                rows.append(
                    {"type": "histogram", "name": name,
                     "labels": dict(labels), **histogram.to_jsonable()}
                )
        rows.sort(key=lambda r: (r["name"], r["type"], sorted(r["labels"].items())))
        return rows

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self._series()
        )

    def to_prometheus(self) -> str:
        """A Prometheus-text-format-style dump (for humans and scrapers)."""
        lines: list[str] = []
        for row in self._series():
            labels = row["labels"]
            body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            suffix = "{" + body + "}" if body else ""
            if row["type"] == "histogram":
                cumulative = 0
                for edge, count in zip(
                    list(row["edges"]) + [math.inf], row["counts"]
                ):
                    cumulative += count
                    le = "+Inf" if edge == math.inf else f"{edge:g}"
                    edge_body = (body + "," if body else "") + f'le="{le}"'
                    lines.append(
                        f"{row['name']}_bucket{{{edge_body}}} {cumulative}"
                    )
                lines.append(f"{row['name']}_sum{suffix} {row['sum']:g}")
                lines.append(f"{row['name']}_count{suffix} {row['count']}")
            else:
                lines.append(f"{row['name']}{suffix} {row['value']:g}")
        return "".join(line + "\n" for line in lines)

    def export(self, jsonl_path=None, prometheus_path=None) -> list:
        """Atomically write the requested dump formats; returns the paths."""
        from repro.crawler.checkpoint import atomic_write

        written = []
        if jsonl_path is not None:
            written.append(atomic_write(jsonl_path, self.to_jsonl()))
        if prometheus_path is not None:
            written.append(atomic_write(prometheus_path, self.to_prometheus()))
        return written
