"""The simulation driver: builds one complete observed world.

:func:`run_simulation` assembles the platform, the benign and malicious
populations, nine months of posting, the click/engagement traces, the
piggybacking operation, and Facebook-side moderation — and returns a
:class:`SimulatedWorld` from which the measurement pipeline (crawler,
MyPageKeeper, FRAppE) derives everything else, with no access to ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import PAPER, ScaleConfig
from repro.crawler.socialbakers import SocialBakers
from repro.ecosystem.benign import BenignPopulation
from repro.ecosystem.campaigns import CampaignPlan, HackerCampaign, plan_campaign_sizes
from repro.ecosystem.messages import MessageFactory
from repro.ecosystem.names import NameFactory
from repro.ecosystem.params import GenerationParams
from repro.ecosystem.piggyback import PiggybackOperation
from repro.ecosystem.services import EcosystemServices
from repro.platform.apps import AppRegistry, FacebookApp
from repro.platform.graph_api import GraphApi
from repro.platform.install import InstallationService
from repro.platform.moderation import ModerationEngine, hazard_for_survival
from repro.platform.oauth import TokenService
from repro.platform.posts import PostLog
from repro.platform.users import UserBase
from repro.rng import RngRegistry
from repro.urlinfra.blacklist import UrlBlacklist
from repro.urlinfra.hosting import HostingRegistry
from repro.urlinfra.redirector import RedirectorNetwork
from repro.urlinfra.shortener import Shortener
from repro.urlinfra.wot import WotService

__all__ = ["CrawlSchedule", "SimulatedWorld", "run_simulation"]


@dataclass(frozen=True)
class CrawlSchedule:
    """Simulated calendar, in days since June 2011 (Sec 2.3).

    Nine months of observation, then the March–May 2012 crawls (profile
    feeds first, summaries next, install URLs last), and the October
    2012 re-check used to validate ground truth (Sec 5.3).
    """

    horizon_days: int = 270
    profilefeed_crawl_day: int = 285
    summary_crawl_day: int = 310
    inst_crawl_day: int = 340
    validation_day: int = 480
    crawl_months: int = 3


@dataclass
class SimulatedWorld:
    """The fully built world handed to the measurement pipeline."""

    config: ScaleConfig
    params: GenerationParams
    schedule: CrawlSchedule
    services: EcosystemServices
    users: UserBase
    tokens: TokenService
    installer: InstallationService
    graph_api: GraphApi
    moderation: ModerationEngine
    benign_population: BenignPopulation
    campaigns: list[HackerCampaign]
    piggyback: PiggybackOperation
    socialbakers: SocialBakers
    #: the piggybacked popular apps (whitelist candidates)
    popular_apps: list[FacebookApp] = field(default_factory=list)

    # -- convenience views -------------------------------------------------

    @property
    def registry(self) -> AppRegistry:
        return self.services.registry

    @property
    def post_log(self) -> PostLog:
        return self.services.post_log

    # -- ground truth (for scoring only; the pipeline never calls these) --

    def truth_malicious_ids(self) -> set[str]:
        return {a.app_id for a in self.registry.malicious()}

    def loud_app_ids(self) -> set[str]:
        ids: set[str] = set()
        for campaign in self.campaigns:
            ids |= campaign.loud_app_ids
        return ids

    def piggybacked_ids(self) -> set[str]:
        return {a.app_id for a in self.popular_apps}

    def colluding_truth_ids(self) -> set[str]:
        ids: set[str] = set()
        for campaign in self.campaigns:
            if campaign.plan.colluding:
                ids |= {a.app_id for a in campaign.apps}
        return ids


def run_simulation(
    config: ScaleConfig | None = None,
    params: GenerationParams | None = None,
    schedule: CrawlSchedule | None = None,
) -> SimulatedWorld:
    """Build a complete simulated world at the configured scale."""
    config = config or ScaleConfig()
    params = params or GenerationParams()
    schedule = schedule or CrawlSchedule()
    rngs = RngRegistry(config.master_seed)

    services = _build_services(config, rngs)
    _seed_spam_domain_pool(config, params, services, rngs)
    users = UserBase(config.n_users, rngs.stream("users"))
    tokens = TokenService()
    installer = InstallationService(
        services.registry, tokens, users, rngs.stream("installs")
    )
    graph_api = GraphApi(services.registry, services.post_log)

    n_apps = config.n_apps
    n_malicious = max(20, int(round(n_apps * params.malicious_app_fraction)))
    n_benign = n_apps - n_malicious

    benign = BenignPopulation(
        services, params, rngs.stream("benign"), scale=config.scale
    )
    benign.build(n_benign, crawl_months=schedule.crawl_months)

    campaigns = _build_campaigns(
        config, params, services, rngs, n_malicious, schedule.crawl_months
    )

    _emit_all_posts(config, params, rngs, benign, campaigns, schedule.horizon_days)

    piggyback = PiggybackOperation(
        graph_api, services, params, rngs.stream("piggyback")
    )
    n_piggy = min(
        max(2, config.count(params.piggybacked_popular_apps)), len(benign.apps)
    )
    own_counts = {
        app.app_id: services.post_log.post_count(app.app_id)
        for app in benign.apps[:n_piggy]
    }
    popular = piggyback.run(
        benign.apps[:n_piggy], own_counts, schedule.horizon_days
    )

    _assign_clicks(config, params, services, rngs)

    moderation = _run_moderation(
        config, params, services, tokens, rngs, schedule
    )

    socialbakers = SocialBakers(rngs.stream("socialbakers"))
    socialbakers.vet_population(
        benign.apps, coverage=PAPER.d_sample_benign_vetted / PAPER.d_sample_benign
    )

    return SimulatedWorld(
        config=config,
        params=params,
        schedule=schedule,
        services=services,
        users=users,
        tokens=tokens,
        installer=installer,
        graph_api=graph_api,
        moderation=moderation,
        benign_population=benign,
        campaigns=campaigns,
        piggyback=piggyback,
        socialbakers=socialbakers,
        popular_apps=popular,
    )


def _build_services(config: ScaleConfig, rngs: RngRegistry) -> EcosystemServices:
    return EcosystemServices(
        registry=AppRegistry(rngs.stream("registry")),
        post_log=PostLog(),
        wot=WotService(rngs.stream("wot")),
        hosting=HostingRegistry(),
        redirector=RedirectorNetwork(rngs.stream("redirector")),
        blacklist=UrlBlacklist(),
        shorteners={
            "bit.ly": Shortener(rngs.stream("bitly"), "bit.ly"),
            "j.mp": Shortener(rngs.stream("jmp"), "j.mp"),
            "tinyurl.com": Shortener(rngs.stream("tinyurl"), "tinyurl.com"),
        },
        names=NameFactory(rngs.stream("names")),
        messages=MessageFactory(rngs.stream("messages")),
        n_users=config.n_users,
    )


def _seed_spam_domain_pool(
    config: ScaleConfig,
    params: GenerationParams,
    services: EcosystemServices,
    rngs: RngRegistry,
) -> None:
    """Mint the shared pool of bulletproof hosting domains (Table 3).

    Zipf-weighted sampling concentrates most campaigns on the head of
    the pool, reproducing the paper's finding that five domains host
    83% of the malicious apps in D-Inst.
    """
    rng = rngs.stream("spam-domains")
    stems = (
        "thenamemeans", "fastfreeupdates", "wikiworldmedia", "technicalyard",
        "freegiftzone", "profilecheck", "surveyrewards", "appprizes",
        "bestdailyoffers", "viralrewards", "checkyourfans", "megafreebies",
    )
    n_domains = config.structural(14, minimum=5)
    pool: list[str] = []
    while len(pool) < n_domains:
        stem = stems[int(rng.integers(0, len(stems)))]
        domain = f"{stem}{int(rng.integers(1, 10))}.com"
        if domain in pool:
            continue
        # Cover ~20% of the app weight with a (bad) WOT score; the
        # coverage pattern is fixed over the Zipf order so the app-level
        # unknown fraction tracks Fig 8 across scales.
        if len(pool) % 5 == 1:
            services.wot.set_score(
                domain, float(rng.uniform(0.0, params.malicious_wot_max_score))
            )
        else:
            services.wot.forget(domain)
        pool.append(domain)
        services.hosting.assign(domain, "bulletproof-hosting.net")
    weights = 1.0 / np.arange(1, len(pool) + 1) ** 1.6  # Zipf head
    services.spam_domain_pool = pool
    services.spam_domain_weights = weights / weights.sum()


def _build_campaigns(
    config: ScaleConfig,
    params: GenerationParams,
    services: EcosystemServices,
    rngs: RngRegistry,
    n_malicious: int,
    crawl_months: int,
) -> list[HackerCampaign]:
    rng = rngs.stream("campaign-planning")
    n_colluding = max(10, int(round(n_malicious * params.colluding_fraction)))
    n_colluding = min(n_colluding, n_malicious)
    n_standalone = n_malicious - n_colluding
    n_components = min(
        config.structural(PAPER.connected_components, minimum=3), n_colluding // 2
    )
    sizes = plan_campaign_sizes(n_colluding, n_components, rng)

    total_sites = config.structural(PAPER.indirection_websites, minimum=3)
    size_array = np.asarray(sizes, dtype=float)
    site_shares = np.maximum(
        1, np.round(total_sites * size_array / size_array.sum()).astype(int)
    )

    mega_pod = max(3, int(round(0.075 * n_malicious)))
    campaigns: list[HackerCampaign] = []
    for index, size in enumerate(sizes):
        plan = CampaignPlan(
            campaign_id=f"appnet-{index:03d}",
            n_apps=size,
            colluding=True,
            n_sites=int(site_shares[index]),
            mega_pod_size=mega_pod if index == 0 else 0,
        )
        campaign = HackerCampaign(
            plan,
            services,
            params,
            rngs.stream(f"campaign-{index:03d}"),
            scale=config.scale,
            crawl_months=crawl_months,
        )
        campaign.build()
        campaigns.append(campaign)

    # Standalone hacker crews: malicious apps that never collude.
    chunk = max(10, int(round(40 * max(config.scale * 20, 1.0))))
    index = len(sizes)
    while n_standalone > 0:
        size = min(chunk, n_standalone)
        plan = CampaignPlan(
            campaign_id=f"solo-{index:03d}",
            n_apps=size,
            colluding=False,
            n_sites=0,
        )
        campaign = HackerCampaign(
            plan,
            services,
            params,
            rngs.stream(f"campaign-{index:03d}"),
            scale=config.scale,
            crawl_months=crawl_months,
        )
        campaign.build()
        campaigns.append(campaign)
        n_standalone -= size
        index += 1
    return campaigns


def _emit_all_posts(
    config: ScaleConfig,
    params: GenerationParams,
    rngs: RngRegistry,
    benign: BenignPopulation,
    campaigns: list[HackerCampaign],
    horizon_days: int,
) -> None:
    """Allocate the post budget over apps and emit every wall post.

    The budget covers *all* monitored posts; 37% carry no application
    field (manual posts and social plugins, Sec 2.2) and are emitted by
    :func:`_emit_appless_posts` after the app populations post.
    """
    rng = rngs.stream("post-allocation")
    total_posts = config.n_posts
    app_posts = int(round(total_posts * (1.0 - params.appless_post_fraction)))
    benign_budget = int(round(app_posts * params.benign_fraction_of_posts))
    malicious_budget = app_posts - benign_budget

    benign_counts = _allocate(rng, benign.post_weights(), benign_budget)
    for app, count in zip(benign.apps, benign_counts):
        benign.emit_posts(app, int(count), horizon_days)

    weights: list[np.ndarray] = []
    for campaign in campaigns:
        weights.append(campaign.post_weights())
    if weights:
        flat = np.concatenate(weights)
        counts = _allocate(rng, flat, malicious_budget)
        offset = 0
        for campaign, campaign_weights in zip(campaigns, weights):
            for app, count in zip(
                campaign.apps, counts[offset : offset + len(campaign_weights)]
            ):
                campaign.emit_posts(app, int(count), horizon_days)
            offset += len(campaign_weights)

    appless_budget = total_posts - app_posts
    _emit_appless_posts(
        params, rngs, benign, campaigns, appless_budget, horizon_days
    )


def _emit_appless_posts(
    params: GenerationParams,
    rngs: RngRegistry,
    benign: BenignPopulation,
    campaigns: list[HackerCampaign],
    budget: int,
    horizon_days: int,
) -> None:
    """Manual/social-plugin posts: no application field (Sec 2.2).

    Most are ordinary chatter; a small share are users manually
    resharing scam links, which is why 27% of the paper's *malicious*
    posts have no associated application.
    """
    rng = rngs.stream("appless-posts")
    messages = benign._messages  # same factory as the app populations
    post_log = benign._post_log
    n_users = benign._n_users
    lure_pools = [
        [short for _landing, short in c.loud_lure_urls]
        for c in campaigns
        if c.loud_lure_urls
    ]
    for _ in range(budget):
        day = int(rng.integers(0, horizon_days))
        user_id = int(rng.integers(0, n_users))
        if lure_pools and rng.random() < params.appless_malicious_share:
            pool = lure_pools[int(rng.integers(0, len(lure_pools)))]
            link = pool[int(rng.integers(0, len(pool)))]
            likes = int(rng.poisson(0.8))
            post_log.new_post(
                day=day,
                user_id=user_id,
                app_id=None,
                message=messages.spam_message(messages.campaign_template()),
                link=link,
                likes=likes,
                comments=int(rng.poisson(0.3)),
                truth_malicious=True,
            )
            continue
        draw = rng.random()
        if draw < 0.70:
            link = None
        elif draw < 0.95:
            link = (
                f"http://blog{int(rng.integers(1, 2000))}.example-news.com/"
                f"story/{int(rng.integers(1, 100_000))}"
            )
        else:
            link = f"https://www.facebook.com/photo.php?fbid={int(rng.integers(10**9, 10**10))}"
        post_log.new_post(
            day=day,
            user_id=user_id,
            app_id=None,
            message=messages.chatter_message(),
            link=link,
            likes=int(rng.poisson(6.0)),
            comments=int(rng.poisson(2.0)),
            truth_malicious=False,
        )


def _allocate(
    rng: np.random.Generator, weights: np.ndarray, budget: int
) -> np.ndarray:
    """Multinomial split of *budget* posts; every app gets at least one."""
    if len(weights) == 0:
        return np.zeros(0, dtype=int)
    probabilities = weights / weights.sum()
    counts = rng.multinomial(max(budget, len(weights)), probabilities)
    return np.maximum(counts, 1)


def _assign_clicks(
    config: ScaleConfig,
    params: GenerationParams,
    services: EcosystemServices,
    rngs: RngRegistry,
) -> None:
    """Drive clicks onto every posted short link (Fig 3).

    Clicks are assigned per *link* (the bit.ly counter is per link);
    a campaign's lure URLs are shared across its apps, so an app's
    Fig 3 total — the sum of the counters of the links it posted —
    includes clicks earned through its siblings, exactly as the paper's
    bit.ly queries do.
    """
    rng = rngs.stream("clicks")
    for shortener in services.shorteners.values():
        for link in shortener.all_links():
            base = rng.lognormal(
                params.clicks_lognorm_mean, params.clicks_lognorm_sigma
            )
            clicks = max(1, int(base * config.scale))
            link.clicks_facebook += clicks
            link.clicks_external += int(clicks * params.external_click_fraction)
            # Some short links become private/deleted (expand API fails).
            if rng.random() < params.short_url_unresolvable:
                link.resolvable = False


def _run_moderation(
    config: ScaleConfig,
    params: GenerationParams,
    services: EcosystemServices,
    tokens: TokenService,
    rngs: RngRegistry,
    schedule: CrawlSchedule,
) -> ModerationEngine:
    """Assign deletion days calibrated to the paper's survival rates."""
    malicious_mean_creation = 100  # campaign apps appear over days 0..200
    malicious_hazard = hazard_for_survival(
        params.malicious_survival_at_summary_crawl,
        schedule.summary_crawl_day - malicious_mean_creation,
    )
    benign_hazard = hazard_for_survival(
        params.benign_survival_at_summary_crawl, schedule.summary_crawl_day
    )
    moderation = ModerationEngine(
        services.registry,
        tokens,
        rngs.stream("moderation"),
        malicious_daily_hazard=malicious_hazard,
        benign_daily_hazard=benign_hazard,
    )
    moderation.assign_deletion_days(
        services.registry.all_apps(), horizon_days=schedule.validation_day + 120
    )
    return moderation
