"""Post-message generation.

Spam campaigns reuse near-identical, keyword-dense lure texts (that is
what MyPageKeeper's text-similarity feature keys on); benign app posts
are varied game/activity updates that rarely contain spam vocabulary.
Like/comment counts also differ: malicious posts engage users less.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MessageFactory"]

_SPAM_TEMPLATES = (
    "WOW I just got {n} Facebook Credits for Free",
    "Get your FREE {n} FACEBOOK CREDITS",
    "OMG free iPad for the first {n} users, hurry!",
    "WOW! I Just Got a Recharge of Rs {n}.",
    "Get Your Free Facebook Sim Card before {n} run out",
    "Shocking! See who viewed your profile, {n} stalkers found",
    "Claim your exclusive {n}$ gift card now, limited offer",
    "I won {n} credits with this amazing app, free for everyone",
)

_CHATTER_TEMPLATES = (
    "Had a great day at the beach with the family",
    "Can't believe it's already day {n} of the semester",
    "Anyone up for coffee this weekend?",
    "Just finished a {n} km run, feeling great",
    "Happy birthday to my best friend!",
    "New photo album from our trip, {n} pictures",
    "Watching the game tonight, who else?",
    "Finally finished reading that book after {n} days",
)

_BENIGN_TEMPLATES = (
    "I just reached level {n} in {app}!",
    "{app}: come help me with my farm, I planted {n} crops",
    "I scored {n} points playing {app}",
    "Sent you a little present in {app}",
    "Can you beat my {app} streak of {n}?",
    "Just unlocked a new badge in {app} after {n} games",
    "My daily fortune from {app} made me smile",
    "Joined a new tournament in {app}, wish me luck",
    "Sharing my {app} results: {n} correct answers",
    "Look at the new decoration I placed in {app}",
)


class MessageFactory:
    """Draws post texts and engagement counts for both populations."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    # -- texts ----------------------------------------------------------

    def campaign_template(self) -> str:
        """Pick the (near-fixed) lure text template for one campaign."""
        return _SPAM_TEMPLATES[int(self._rng.integers(0, len(_SPAM_TEMPLATES)))]

    def spam_message(self, template: str) -> str:
        """Instantiate the campaign template with a varying number.

        Keeping everything but the number constant gives the high
        cross-post text similarity MyPageKeeper measures on campaigns.
        """
        n = int(self._rng.integers(1, 10)) * 10 ** int(self._rng.integers(1, 4))
        return template.format(n=n)

    def chatter_message(self) -> str:
        """A manual (app-less) status update."""
        template = _CHATTER_TEMPLATES[
            int(self._rng.integers(0, len(_CHATTER_TEMPLATES)))
        ]
        return template.format(n=int(self._rng.integers(1, 400)))

    def benign_message(self, app_name: str) -> str:
        template = _BENIGN_TEMPLATES[int(self._rng.integers(0, len(_BENIGN_TEMPLATES)))]
        return template.format(app=app_name, n=int(self._rng.integers(1, 500)))

    # -- engagement -------------------------------------------------------

    def spam_engagement(self) -> tuple[int, int]:
        """(likes, comments) for a malicious post — low engagement."""
        likes = int(self._rng.poisson(0.8))
        comments = int(self._rng.poisson(0.3))
        return likes, comments

    def benign_engagement(self) -> tuple[int, int]:
        """(likes, comments) for a benign post."""
        likes = int(self._rng.poisson(7.0))
        comments = int(self._rng.poisson(2.5))
        return likes, comments
