"""The benign developer population.

Generates legitimate apps whose profile matches the paper's benign
measurements: complete summaries (Fig 5), multi-permission installs
(Fig 6/7), redirect URIs inside apps.facebook.com or on reputable
company domains (Fig 8), honest client IDs (Sec 4.1.4), populated
profile feeds (Fig 9), high MAU (Fig 4), and posts that rarely leave
facebook.com (Fig 12).
"""

from __future__ import annotations

import numpy as np

from repro.ecosystem.params import GenerationParams
from repro.ecosystem.services import EcosystemServices
from repro.platform.apps import APP_CATEGORIES, FacebookApp
from repro.platform.permissions import PERMISSION_POOL, TOP_BENIGN_PERMISSIONS
from repro.platform.posts import Post

__all__ = ["BenignPopulation"]

_COMPANIES = (
    "Zynga", "Electronic Arts", "Playdom", "Wooga", "King", "Playfish",
    "RockYou", "CrowdStar", "Digital Chocolate", "Kabam", "6waves",
    "Social Point", "Peak Games", "Halfbrick", "PopCap",
)

#: Cap on generated profile-feed posts per app (Fig 9's axis tops at 10^3).
_MAX_PROFILE_POSTS = 600

#: Extra permissions cluster on the same popular capabilities (Fig 6:
#: each of the top five is requested by 12-57% of benign apps).
_COMMON_EXTRAS = TOP_BENIGN_PERMISSIONS + (
    "user_location",
    "user_photos",
    "user_likes",
    "read_stream",
)


def draw_benign_permissions(rng: np.random.Generator, params: GenerationParams) -> tuple[str, ...]:
    """The benign population's permission law (Fig 6/7).

    Module-level because professionally camouflaged malicious apps
    (Sec 5.1's false negatives) draw from exactly the same law.
    """
    weights = np.array([0.30, 0.20, 0.13, 0.27, 0.10])
    first = TOP_BENIGN_PERMISSIONS[
        int(rng.choice(len(TOP_BENIGN_PERMISSIONS), p=weights))
    ]
    if rng.random() < params.benign_single_permission:
        return (first,)
    # Multi-permission apps are social games: they typically take the
    # post + offline + email combo (Fig 6's tall benign bars) plus a
    # geometric tail of rarer permissions.
    chosen: dict[str, None] = {first: None}
    for perm, probability in (
        ("publish_stream", 0.50),
        ("offline_access", 0.55),
        ("email", 0.55),
        ("user_birthday", 0.30),
        ("publish_actions", 0.12),
    ):
        if rng.random() < probability:
            chosen.setdefault(perm)
    extra_count = int(rng.geometric(0.6)) - 1
    for _ in range(extra_count):
        if rng.random() < 0.6:
            pool: tuple[str, ...] = _COMMON_EXTRAS
        else:
            pool = PERMISSION_POOL
        chosen.setdefault(pool[int(rng.integers(0, len(pool)))])
    return tuple(chosen)


class BenignPopulation:
    """Builds benign apps and emits their wall posts."""

    def __init__(
        self,
        services: EcosystemServices,
        params: GenerationParams,
        rng: np.random.Generator,
        scale: float = 1.0,
    ) -> None:
        self._registry = services.registry
        self._post_log = services.post_log
        self._wot = services.wot
        self._hosting = services.hosting
        self._names = services.names
        self._messages = services.messages
        self._params = params
        self._rng = rng
        self._n_users = services.n_users
        self._scale = scale
        self._profile_post_serial = 0
        self.apps: list[FacebookApp] = []
        self.hobbyist_app_ids: set[str] = set()

    # -- app creation ------------------------------------------------------

    def build(self, n_apps: int, crawl_months: int = 3) -> list[FacebookApp]:
        """Create *n_apps* benign apps (popular names first)."""
        popular = list(self._names.popular_names())
        generated = self._names.benign_names(
            max(0, n_apps - len(popular)), self._params.benign_shared_name
        )
        all_names = (popular + generated)[:n_apps]
        for rank, name in enumerate(all_names):
            app = self._create_app(name, rank, crawl_months)
            self.apps.append(app)
        self._assign_dishonest_client_ids()
        return self.apps

    def _create_app(self, name: str, rank: int, crawl_months: int) -> FacebookApp:
        rng = self._rng
        p = self._params
        if rank >= 40 and rng.random() < p.benign_hobbyist_fraction:
            return self._create_hobbyist_app(name, crawl_months)
        company = _COMPANIES[int(rng.integers(0, len(_COMPANIES)))]
        popular = rank < 40  # the head of the popularity distribution
        has_desc = rng.random() < p.benign_has_description or popular
        app = self._registry.create(
            name=name,
            developer_id=f"dev:{company.lower().replace(' ', '-')}",
            created_day=0,
            description=(f"{name}: the official app by {company}" if has_desc else ""),
            company=(company if rng.random() < p.benign_has_company or popular else ""),
            category=(
                APP_CATEGORIES[int(rng.integers(0, len(APP_CATEGORIES)))]
                if rng.random() < p.benign_has_category or popular
                else ""
            ),
            permissions=self._draw_permissions(),
            redirect_uri=self._draw_redirect_uri(name),
            mau_series=self._draw_mau_series(crawl_months, popular),
            install_flow_crawlable=rng.random() < p.benign_inst_crawlable,
            truth_malicious=False,
        )
        self._fill_profile_feed(app)
        return app

    def _create_hobbyist_app(self, name: str, crawl_months: int) -> FacebookApp:
        """A bare-bones legitimate app (Sec 5.1's rare false positives).

        Hobbyist developers skip the summary fields, request only one
        permission, and never touch their profile page — superficially
        indistinguishable from a scam app on the on-demand features.
        """
        rng = self._rng
        p = self._params
        app = self._registry.create(
            name=name,
            developer_id="dev:hobbyist",
            created_day=0,
            permissions=(TOP_BENIGN_PERMISSIONS[0],),
            redirect_uri=self._draw_redirect_uri(name),
            mau_series=self._draw_mau_series(crawl_months, popular=False),
            install_flow_crawlable=rng.random() < p.benign_inst_crawlable,
            truth_malicious=False,
        )
        self.hobbyist_app_ids.add(app.app_id)
        return app

    def _draw_permissions(self) -> tuple[str, ...]:
        """Permission sets matching Fig 6/7's benign distribution."""
        return draw_benign_permissions(self._rng, self._params)

    def _draw_redirect_uri(self, name: str) -> str:
        rng = self._rng
        slug = "".join(ch for ch in name.lower() if ch.isalnum()) or "app"
        if rng.random() < self._params.benign_redirect_facebook:
            return f"https://apps.facebook.com/{slug}"
        domain = f"{slug[:20]}.com"
        self._wot.seed_reputable(domain)
        self._hosting.assign(domain, "self-hosted")
        return f"https://www.{domain}/canvas"

    def _draw_mau_series(self, months: int, popular: bool) -> tuple[int, ...]:
        rng = self._rng
        p = self._params
        mean = p.benign_mau_lognorm_mean + (3.0 if popular else 0.0)
        base = rng.lognormal(mean, p.benign_mau_lognorm_sigma)
        series = base * np.exp(
            rng.normal(0.0, p.mau_month_jitter_sigma, size=months)
        )
        return tuple(int(v) for v in np.maximum(series * self._scale, 1.0))

    def _assign_dishonest_client_ids(self) -> None:
        """Fig 4.1.4: ~1% of benign apps use a sibling client ID.

        Legitimate developers occasionally funnel installs of an old app
        version to the new one — the benign cause of a mismatch.
        """
        p = self._params.benign_client_id_mismatch
        for app in self.apps:
            if self._rng.random() < p:
                sibling = self.apps[int(self._rng.integers(0, len(self.apps)))]
                if sibling.app_id != app.app_id:
                    app.client_id_pool = (sibling.app_id,)

    def _fill_profile_feed(self, app: FacebookApp) -> None:
        rng = self._rng
        p = self._params
        if rng.random() < p.benign_empty_profile:
            return
        count = int(
            rng.lognormal(
                p.benign_profile_posts_lognorm_mean,
                p.benign_profile_posts_lognorm_sigma,
            )
        )
        count = min(max(count, 1), _MAX_PROFILE_POSTS)
        for _ in range(count):
            self._profile_post_serial += 1
            app.profile_feed.append(
                Post(
                    post_id=-self._profile_post_serial,  # not in the wall log
                    day=int(rng.integers(0, 270)),
                    user_id=int(rng.integers(0, self._n_users)),
                    app_id=app.app_id,
                    message=self._messages.benign_message(app.name),
                )
            )

    # -- posting -------------------------------------------------------------

    def post_weights(self) -> np.ndarray:
        """Heavy-tailed per-app share of the benign post volume."""
        shape = self._params.post_volume_pareto_shape
        weights = self._rng.pareto(shape, size=len(self.apps)) + 1.0
        # Popular apps (low rank) take the head of the distribution.
        weights = np.sort(weights)[::-1]
        return weights * self._params.benign_post_volume_scale

    def emit_posts(self, app: FacebookApp, n_posts: int, horizon_days: int) -> None:
        """Emit *n_posts* wall posts for *app* into the log."""
        rng = self._rng
        p = self._params
        if rng.random() < p.benign_zero_external:
            external_ratio = 0.0
        else:
            a, b = p.benign_external_ratio_beta
            external_ratio = float(rng.beta(a, b))
        internal_link_rate = float(rng.beta(2, 6))
        slug = "".join(ch for ch in app.name.lower() if ch.isalnum()) or "app"
        days = rng.integers(0, horizon_days, size=n_posts)
        for day in days:
            likes, comments = self._messages.benign_engagement()
            draw = rng.random()
            if draw < external_ratio:
                link = f"http://www.{slug}-news.com/update/{int(rng.integers(1, 50))}"
            elif draw < external_ratio + internal_link_rate:
                link = f"https://apps.facebook.com/{slug}?ref=post"
            else:
                link = None
            self._post_log.new_post(
                day=int(day),
                user_id=int(rng.integers(0, self._n_users)),
                app_id=app.app_id,
                app_name=app.name,
                message=self._messages.benign_message(app.name),
                link=link,
                likes=likes,
                comments=comments,
                truth_malicious=False,
            )
