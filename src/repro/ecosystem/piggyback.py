"""App piggybacking (Sec 6.2, Fig 16, Table 9).

Hackers lure users into sharing scam posts through
``connect/prompt_feed.php?api_key=<POPULAR_APP_ID>`` — Facebook does not
authenticate that the post really comes from the named app, so the spam
appears in the post metadata as 'FarmVille' or 'Facebook for iPhone'.
The forged volume stays well below the popular app's own posting volume,
which is why these apps show a malicious-to-all-posts ratio under 0.2
(Fig 16) and why the paper needs a whitelist when deriving ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ecosystem.params import GenerationParams
from repro.ecosystem.services import EcosystemServices
from repro.platform.apps import FacebookApp
from repro.platform.graph_api import GraphApi

__all__ = ["PiggybackOperation"]


@dataclass
class _Target:
    app: FacebookApp
    forged_posts: int


class PiggybackOperation:
    """One hacker crew forging posts under popular apps' identities."""

    def __init__(
        self,
        graph_api: GraphApi,
        services: EcosystemServices,
        params: GenerationParams,
        rng: np.random.Generator,
    ) -> None:
        self._graph_api = graph_api
        self._services = services
        self._params = params
        self._rng = rng
        self._template = services.messages.campaign_template()
        self._lure_urls = self._mint_lure_urls()
        self.targets: list[_Target] = []

    def _mint_lure_urls(self) -> list[str]:
        rng = self._rng
        domain = f"freecreditoffers{int(rng.integers(1, 100))}.com"
        self._services.wot.seed_spammy(domain)
        self._services.hosting.assign(domain, "bulletproof-hosting.net")
        urls = []
        for index in range(3):
            landing = f"http://{domain}/claim/{index}"
            shortener = self._services.shortener_for(rng, self._params.bitly_share)
            short = shortener.shorten(landing)
            urls.append(short)
            self._services.blacklist.add_url(landing, day=int(rng.integers(30, 150)))
            self._services.blacklist.add_url(short, day=int(rng.integers(30, 150)))
        return urls

    def run(
        self,
        popular_apps: list[FacebookApp],
        own_post_counts: dict[str, int],
        horizon_days: int,
    ) -> list[FacebookApp]:
        """Forge posts under each of *popular_apps*.

        ``own_post_counts`` maps app ID to the app's legitimate post
        volume; the forged volume is a small fraction of it so the
        resulting malicious-post ratio lands under 0.2.
        """
        rng = self._rng
        for app in popular_apps:
            own = own_post_counts.get(app.app_id, 0)
            ratio = float(rng.uniform(0.4, 2.5)) * self._params.piggyback_post_ratio
            forged = max(1, int(own * ratio))
            self.targets.append(_Target(app=app, forged_posts=forged))
            for _ in range(forged):
                self._graph_api.prompt_feed(
                    api_key=app.app_id,
                    user_id=int(rng.integers(0, self._services.n_users)),
                    message=self._services.messages.spam_message(self._template),
                    link=self._lure_urls[int(rng.integers(0, len(self._lure_urls)))],
                    day=int(rng.integers(0, horizon_days)),
                    truth_malicious=True,
                    truth_piggybacked=True,
                )
        return [t.app for t in self.targets]
