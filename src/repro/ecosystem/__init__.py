"""The generative model of the app ecosystem (the paper's data source).

The paper's corpus is a proprietary 9-month crawl; this package replaces
it with a generative simulation whose *distribution parameters are the
paper's own measurements* (see :mod:`repro.ecosystem.params` for each
derivation).  Benign developers and hacker organisations create apps on
the simulated platform, post on walls, wire AppNets, run indirection
websites, and piggyback popular apps — and the downstream pipeline
(MyPageKeeper, crawler, FRAppE) re-measures everything from scratch.
"""

from repro.ecosystem.params import GenerationParams
from repro.ecosystem.names import NameFactory
from repro.ecosystem.messages import MessageFactory
from repro.ecosystem.benign import BenignPopulation
from repro.ecosystem.campaigns import (
    DRIFTING_ARCHETYPES,
    BenignMimicryCampaign,
    CampaignPlan,
    DriftingCampaign,
    FakeProfileRingCampaign,
    HackerCampaign,
    StealthyLikeFarmCampaign,
)
from repro.ecosystem.drift import DriftPlan, EpochData, EpochGenerator
from repro.ecosystem.piggyback import PiggybackOperation
from repro.ecosystem.simulation import SimulatedWorld, run_simulation

__all__ = [
    "GenerationParams",
    "NameFactory",
    "MessageFactory",
    "BenignPopulation",
    "CampaignPlan",
    "HackerCampaign",
    "DriftingCampaign",
    "StealthyLikeFarmCampaign",
    "FakeProfileRingCampaign",
    "BenignMimicryCampaign",
    "DRIFTING_ARCHETYPES",
    "DriftPlan",
    "EpochData",
    "EpochGenerator",
    "PiggybackOperation",
    "SimulatedWorld",
    "run_simulation",
]
