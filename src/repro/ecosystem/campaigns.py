"""Hacker organisations and their campaigns (Secs 3, 4, 6).

One :class:`HackerCampaign` is one hacker organisation, and — because
promotion stays inside an organisation — one connected component of the
collusion graph (an *AppNet*).  A campaign is structured as *pods*:
groups of apps sharing one name (the paper's "laziness" observation —
627 apps named 'The App').  Pods are role-homogeneous (promoter /
promotee / dual), matching the paper's finding that the 1,936
indirection promoters carried only 206 unique names.

Promotion is emitted as actual posts, never as ground-truth edges: a
promoter app posts either a direct link to a promotee's installation
URL or a shortened link to one of the campaign's indirection websites,
and :mod:`repro.collusion` later *rediscovers* the AppNet from the post
log exactly as the paper's forensics did.

Detectability: each app is either **loud** (posts keyword-dense,
near-duplicate lure messages pointing at a small shared URL pool — the
posts MyPageKeeper flags) or **stealthy** (innocuous-looking messages,
fresh URLs).  Loud apps become the paper's D-Sample malicious set;
stealthy ones are the apps only FRAppE finds later (Sec 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecosystem.params import GenerationParams
from repro.ecosystem.services import EcosystemServices
from repro.platform.apps import FacebookApp
from repro.platform.permissions import PERMISSION_POOL, PUBLISH_STREAM
from repro.platform.posts import Post
from repro.urlinfra.hosting import AWS_PROVIDER
from repro.urlinfra.redirector import IndirectionSite

__all__ = [
    "Pod",
    "CampaignPlan",
    "HackerCampaign",
    "plan_campaign_sizes",
    "DriftingCampaign",
    "StealthyLikeFarmCampaign",
    "FakeProfileRingCampaign",
    "BenignMimicryCampaign",
    "DRIFTING_ARCHETYPES",
]

_ROLES = ("promoter", "promotee", "dual")

#: Cap on generated profile-feed posts for the 3% of malicious apps
#: that advertise scams on their own profile page.
_MAX_PROFILE_POSTS = 300


@dataclass
class Pod:
    """A same-name group of apps with one collusion role."""

    name: str
    role: str  # 'promoter' | 'promotee' | 'dual' | 'standalone'
    apps: list[FacebookApp] = field(default_factory=list)
    #: pods this pod promotes (promoter/dual pods only)
    target_pods: list["Pod"] = field(default_factory=list)
    #: indirection site this pod advertises, if any
    site: IndirectionSite | None = None
    #: the pod's own shortened alias for the site URL
    site_short_url: str | None = None
    #: direct-link promotion targets (app IDs)
    direct_targets: list[str] = field(default_factory=list)

    @property
    def promotes(self) -> bool:
        return self.role in ("promoter", "dual")

    @property
    def promotable(self) -> bool:
        return self.role in ("promotee", "dual")


@dataclass(frozen=True)
class CampaignPlan:
    """Driver-level plan for one campaign."""

    campaign_id: str
    n_apps: int
    colluding: bool
    n_sites: int
    #: size of a forced giant pod (the scaled 'The App' cluster), or 0
    mega_pod_size: int = 0


def plan_campaign_sizes(
    n_colluding: int, n_components: int, rng: np.random.Generator
) -> list[int]:
    """Split *n_colluding* apps into component sizes shaped like Sec 6.1.

    The paper's 44 components have top-5 sizes (3484, 770, 589, 296,
    247) out of 6,331 colluding apps; we preserve those proportions and
    spread the remainder over the small components.
    """
    if n_components < 1 or n_colluding < n_components:
        raise ValueError("need at least one app per component")
    top_fractions = np.array([3484, 770, 589, 296, 247], dtype=float) / 6331.0
    sizes: list[int] = []
    remaining = n_colluding
    for fraction in top_fractions[: min(5, n_components)]:
        size = max(2, int(round(fraction * n_colluding)))
        sizes.append(size)
        remaining -= size
    n_small = n_components - len(sizes)
    if n_small > 0:
        remaining = max(remaining, n_small)
        shares = rng.dirichlet(np.full(n_small, 2.0))
        small = np.maximum(1, np.round(shares * remaining).astype(int))
        sizes.extend(int(s) for s in small)
    return sizes


class HackerCampaign:
    """One hacker organisation: builds its apps and emits their posts."""

    def __init__(
        self,
        plan: CampaignPlan,
        services: EcosystemServices,
        params: GenerationParams,
        rng: np.random.Generator,
        scale: float = 1.0,
        crawl_months: int = 3,
    ) -> None:
        self.plan = plan
        self._services = services
        self._params = params
        self._rng = rng
        self._scale = scale
        self._crawl_months = crawl_months
        self.apps: list[FacebookApp] = []
        self.pods: list[Pod] = []
        self.sites: list[IndirectionSite] = []
        self.spam_domains: list[str] = []
        self.loud_app_ids: set[str] = set()
        self.professional_app_ids: set[str] = set()
        self._pod_of: dict[str, Pod] = {}
        self._external_ratio: dict[str, float] = {}
        self._uses_bitly: dict[str, bool] = {}
        #: small shared pool of (landing, shortened) lure URLs
        self.loud_lure_urls: list[tuple[str, str]] = []
        self._stealth_serial = 0
        self._profile_post_serial = 0
        self._template = services.messages.campaign_template()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def build(self) -> list[FacebookApp]:
        self._create_spam_domains()
        pod_sizes = self._draw_pod_sizes()
        roles = self._assign_roles(pod_sizes)
        names = self._draw_pod_names(len(pod_sizes))
        for size, role, name in zip(pod_sizes, roles, names):
            pod = Pod(name=name, role=role)
            # Detectability is pod-correlated: pod-mates share lure
            # URLs, so MyPageKeeper tends to catch (or miss) a pod as
            # a unit — with some per-member leakage both ways.
            is_mega = self.plan.mega_pod_size > 1 and not self.pods
            pod_loud = (
                is_mega  # the giant clone pod is what got the paper's attention
                or self._rng.random() < self._params.loud_pod_probability
            )
            member_loud_p = (
                self._params.loud_pod_member_probability
                if pod_loud
                else self._params.stealth_pod_member_probability
            )
            self.pods.append(pod)
            for _ in range(size):
                app = self._create_app(pod, member_loud_p)
                pod.apps.append(app)
                self.apps.append(app)
                self._pod_of[app.app_id] = pod
        self._assign_client_id_pools()
        if self.plan.colluding:
            self._create_sites()
            self._wire_promotion()
        self._prepare_loud_urls()
        return self.apps

    def _create_spam_domains(self) -> None:
        """Rent 1-3 hosting domains from the shared bulletproof pool.

        Campaigns concentrate on the same few domains (Table 3: the top
        five host 83% of the malicious apps in D-Inst).
        """
        rng = self._rng
        n_domains = int(rng.integers(1, 4))
        if self._services.spam_domain_pool:
            self.spam_domains = self._services.sample_spam_domains(rng, n_domains)
            return
        # No shared pool configured (unit-test use): mint private domains.
        stem_pool = (
            "thenamemeans", "fastfreeupdates", "wikiworldmedia",
            "technicalyard", "freegiftzone", "profilecheck", "surveyrewards",
            "appprizes",
        )
        for _ in range(n_domains):
            stem = stem_pool[int(rng.integers(0, len(stem_pool)))]
            domain = f"{stem}{int(rng.integers(1, 100))}.com"
            if domain in self.spam_domains:
                continue
            self.spam_domains.append(domain)
            self._services.wot.seed_spammy(
                domain,
                coverage_probability=self._params.malicious_wot_coverage,
                high=self._params.malicious_wot_max_score,
            )
            self._services.hosting.assign(domain, "bulletproof-hosting.net")

    def _draw_pod_sizes(self) -> list[int]:
        """Pod (name-cluster) sizes: 13% singletons, heavy-tailed rest."""
        rng = self._rng
        params = self._params
        sizes: list[int] = []
        total = 0
        n_apps = self.plan.n_apps
        if self.plan.mega_pod_size > 1:
            sizes.append(min(self.plan.mega_pod_size, n_apps))
            total += sizes[0]
        singleton_probability = 1.0 - params.malicious_shared_name
        cap = max(12, int(200 * self._scale))
        while total < n_apps:
            if rng.random() < singleton_probability:
                size = 1
            else:
                size = 1 + min(int(rng.zipf(2.2)), cap)
            size = min(size, n_apps - total)
            sizes.append(size)
            total += size
        return sizes

    def _assign_roles(self, pod_sizes: list[int]) -> list[str]:
        if not self.plan.colluding:
            return ["standalone"] * len(pod_sizes)
        rng = self._rng
        quotas = {
            role: fraction * self.plan.n_apps
            for role, fraction in zip(_ROLES, self._params.role_fractions())
        }
        roles: list[str] = []
        for index, size in enumerate(pod_sizes):
            if index == 0 and self.plan.mega_pod_size > 1:
                roles.append("promotee")  # the giant clone pod is promoted
                quotas["promotee"] -= size
                continue
            weights = np.array([max(quotas[r], 0.0) for r in _ROLES])
            if weights.sum() <= 0:
                weights = np.ones(len(_ROLES))
            chosen = _ROLES[int(rng.choice(len(_ROLES), p=weights / weights.sum()))]
            roles.append(chosen)
            quotas[chosen] -= size
        return roles

    def _draw_pod_names(self, n_pods: int) -> list[str]:
        """One name per pod, drawn from a smaller campaign pool.

        The same hacker reuses names across pods (Sec 6.1: 1,936
        promoters carried only 206 unique names), so the pool is about
        half the pod count, sampled head-heavy.
        """
        rng = self._rng
        pool_size = max(1, int(np.ceil(n_pods * 0.40)))
        pool = self._services.names.scam_name_pool(pool_size)
        weights = 1.0 / np.arange(1, pool_size + 1) ** 1.0
        weights /= weights.sum()
        names = [
            pool[int(rng.choice(pool_size, p=weights))] for _ in range(n_pods)
        ]
        if self.plan.mega_pod_size > 1 and names:
            names[0] = "The App"  # the paper's 627-clone giant pod
        # A small fraction of pods typosquat a popular benign app.
        popular = self._services.names.popular_names()
        for i in range(1 if self.plan.mega_pod_size > 1 else 0, n_pods):
            if rng.random() < self._params.malicious_typosquat_fraction * 2:
                names[i] = self._services.names.typosquat_of(
                    popular[int(rng.integers(0, len(popular)))]
                )
        return names

    def _create_app(self, pod: Pod, loud_probability: float) -> FacebookApp:
        rng = self._rng
        params = self._params
        name = pod.name
        if rng.random() < 0.05:  # 'Profile Watchers v4.32'-style variants
            name = self._services.names.with_version(name)
        professional = rng.random() < params.malicious_professional_fraction
        domain = self.spam_domains[int(rng.integers(0, len(self.spam_domains)))]
        if professional:
            # Professionals also avoid the tell-tale name reuse: each
            # camouflaged app gets a fresh benign-style name.
            unique_name = self._services.names.benign_names(1)[0]
            app = self._create_professional_app(unique_name, rng)
        else:
            app = self._services.registry.create(
                name=name,
                developer_id=f"hacker:{self.plan.campaign_id}",
                created_day=int(rng.integers(0, 200)),
                description=(
                    "The best app ever, install now"
                    if rng.random() < params.malicious_has_description
                    else ""
                ),
                company=(
                    "Best Apps Inc"
                    if rng.random() < params.malicious_has_company
                    else ""
                ),
                category=(
                    "Entertainment"
                    if rng.random() < params.malicious_has_category
                    else ""
                ),
                permissions=self._draw_permissions(),
                redirect_uri=f"http://{domain}/lp/{int(rng.integers(1, 10_000))}",
                mau_series=self._draw_mau_series(),
                install_flow_crawlable=rng.random() < params.malicious_inst_crawlable,
                truth_malicious=True,
                truth_campaign_id=self.plan.campaign_id,
            )
            if rng.random() > params.malicious_empty_profile:
                self._fill_scam_profile_feed(app, domain)
        if rng.random() < loud_probability:
            self.loud_app_ids.add(app.app_id)
        if professional:
            # Camouflage extends to posting: scams run inside Facebook
            # canvases, so almost no external links are observable.
            self._external_ratio[app.app_id] = (
                0.0 if rng.random() < 0.8 else float(rng.beta(1.2, 8.0))
            )
        else:
            self._external_ratio[app.app_id] = self._draw_external_ratio()
        self._uses_bitly[app.app_id] = rng.random() < 0.72
        return app

    def _create_professional_app(
        self, name: str, rng: np.random.Generator
    ) -> FacebookApp:
        """A professionally configured malicious app (Sec 5.1's FNs).

        Some hackers invest in camouflage: filled-in summaries, a
        realistic permission set, an honest install flow, and a
        moderately reputable front domain.  These apps evade
        feature-based detection and are the paper's ~4% false
        negatives.
        """
        params = self._params
        slug = "".join(ch for ch in name.lower() if ch.isalnum())[:18] or "app"
        # The camouflage *is* the benign generation path: the redirect,
        # permission-set, and profile-feed draws below mirror
        # BenignPopulation, so on-demand features match the benign
        # distribution exactly.
        if rng.random() < params.benign_redirect_facebook:
            redirect = f"https://apps.facebook.com/{slug}"
        else:
            front = f"{slug}{int(rng.integers(1, 50))}studio.com"
            self._services.wot.seed_reputable(front)
            self._services.hosting.assign(front, "self-hosted")
            redirect = f"https://www.{front}/canvas"
        app = self._services.registry.create(
            name=name,
            developer_id=f"hacker:{self.plan.campaign_id}",
            created_day=int(rng.integers(0, 200)),
            description=f"{name} - play with your friends!",
            company=f"{slug.title()} Studio",
            category="Games",
            permissions=self._draw_benign_style_permissions(),
            redirect_uri=redirect,
            mau_series=self._draw_mau_series(),
            install_flow_crawlable=rng.random() < params.benign_inst_crawlable,
            truth_malicious=True,
            truth_campaign_id=self.plan.campaign_id,
        )
        self.professional_app_ids.add(app.app_id)
        for _ in range(int(rng.integers(3, 25))):
            self._profile_post_serial += 1
            app.profile_feed.append(
                Post(
                    post_id=-(10**9) - self._profile_post_serial,
                    day=int(rng.integers(0, 270)),
                    user_id=int(rng.integers(0, self._services.n_users)),
                    app_id=app.app_id,
                    message=self._services.messages.benign_message(app.name),
                )
            )
        return app

    def _draw_permissions(self) -> tuple[str, ...]:
        rng = self._rng
        if rng.random() < self._params.malicious_single_permission:
            return (PUBLISH_STREAM,)
        extras = [p for p in PERMISSION_POOL if p != PUBLISH_STREAM]
        n_extra = int(rng.integers(1, 3))
        chosen = rng.choice(len(extras), size=n_extra, replace=False)
        return (PUBLISH_STREAM, *(extras[i] for i in chosen))

    def _draw_benign_style_permissions(self) -> tuple[str, ...]:
        """The benign population's permission law (for professionals)."""
        from repro.ecosystem.benign import draw_benign_permissions

        return draw_benign_permissions(self._rng, self._params)

    def _draw_mau_series(self) -> tuple[int, ...]:
        rng = self._rng
        params = self._params
        base = rng.lognormal(
            params.malicious_mau_lognorm_mean, params.malicious_mau_lognorm_sigma
        )
        series = base * np.exp(
            rng.normal(0.0, params.mau_month_jitter_sigma, size=self._crawl_months)
        )
        return tuple(int(v) for v in np.maximum(series * self._scale, 1.0))

    def _draw_external_ratio(self) -> float:
        """Fig 12: 40% of malicious apps average ~1 external link/post."""
        rng = self._rng
        if rng.random() < 0.34:
            return float(rng.uniform(0.85, 1.0))
        if rng.random() < self._params.malicious_low_external:
            return float(rng.uniform(0.0, 0.15))
        return float(rng.beta(2.0, 2.0) * 0.8)

    def _assign_client_id_pools(self) -> None:
        """Sec 4.1.4: 78% of malicious apps rotate sibling client IDs."""
        rng = self._rng
        for pod in self.pods:
            if len(pod.apps) < 2:
                continue
            ids = [a.app_id for a in pod.apps]
            for app in pod.apps:
                if app.app_id in self.professional_app_ids:
                    continue  # professionals keep an honest install flow
                if rng.random() < self._params.malicious_client_id_mismatch:
                    siblings = [i for i in ids if i != app.app_id]
                    take = min(len(siblings), 10)
                    chosen = rng.choice(len(siblings), size=take, replace=False)
                    app.client_id_pool = tuple(siblings[i] for i in chosen)

    def _fill_scam_profile_feed(self, app: FacebookApp, domain: str) -> None:
        rng = self._rng
        count = min(
            1 + int(rng.poisson(self._params.malicious_profile_posts_mean)),
            _MAX_PROFILE_POSTS,
        )
        for _ in range(count):
            self._profile_post_serial += 1
            token = int(rng.integers(1, 100_000))
            app.profile_feed.append(
                Post(
                    post_id=-(10**9) - self._profile_post_serial,
                    day=int(rng.integers(0, 270)),
                    user_id=int(rng.integers(0, self._services.n_users)),
                    app_id=app.app_id,
                    message=self._services.messages.spam_message(self._template),
                    link=f"http://{domain}/freeoffer/{token}",
                    truth_malicious=True,
                )
            )

    # ------------------------------------------------------------------
    # indirection sites and promotion wiring
    # ------------------------------------------------------------------

    def _create_sites(self) -> None:
        rng = self._rng
        for index in range(max(self.plan.n_sites, 0)):
            if rng.random() < self._params.aws_hosting_fraction:
                host = f"spamredir{int(rng.integers(1, 10**6))}.s3.amazonaws.com"
                self._services.hosting.assign("amazonaws.com", AWS_PROVIDER)
            else:
                domain = self.spam_domains[int(rng.integers(0, len(self.spam_domains)))]
                host = f"go.{domain}"
            url = f"http://{host}/r/{self.plan.campaign_id}-{index}"
            site = IndirectionSite(
                url=url,
                target_app_ids=[self.apps[0].app_id],  # seed; replaced by wiring
                hosting_provider=self._services.hosting.provider_of_domain(host),
            )
            site.target_app_ids.clear()
            self.sites.append(site)

    def _wire_promotion(self) -> None:
        """Connect promoter/dual pods to promotable pods.

        Dual pods also target their own pod, reproducing the observed
        intra-clone mutual promotion ('The App' promoting 'The App').
        """
        rng = self._rng
        promotable = [p for p in self.pods if p.promotable]
        if not promotable:
            return
        for pod in self.pods:
            if not pod.promotes:
                continue
            k = 1 + int(rng.poisson(2.0))
            candidates = [p for p in promotable if p is not pod]
            chosen: list[Pod] = []
            if candidates:
                take = min(k, len(candidates))
                indices = rng.choice(len(candidates), size=take, replace=False)
                chosen = [candidates[i] for i in indices]
            if pod.role == "dual":
                chosen.append(pod)
            pod.target_pods = chosen
            target_ids = [
                app.app_id
                for target in chosen
                for app in target.apps
            ]
            if not target_ids:
                continue
            # Pods mix mechanisms: most advertise an indirection site,
            # and a subset additionally (or instead) posts direct links.
            use_site = bool(self.sites) and (
                rng.random() >= self._params.direct_promotion_fraction
            )
            use_direct = not use_site or rng.random() < 0.5
            if use_site:
                site = self.sites[int(rng.integers(0, len(self.sites)))]
                existing = set(site.target_app_ids)
                site.target_app_ids.extend(
                    t for t in target_ids if t not in existing
                )
                pod.site = site
                shortener = self._services.shortener_for(
                    rng, self._params.bitly_share
                )
                pod.site_short_url = shortener.shorten(site.url, reuse=False)
            if use_direct:
                cap = min(len(target_ids), 50)
                indices = rng.choice(len(target_ids), size=cap, replace=False)
                pod.direct_targets = [target_ids[i] for i in indices]
        # Register only sites that ended up with targets.
        for site in self.sites:
            if site.target_app_ids:
                self._services.redirector.register(site)
        self.sites = [s for s in self.sites if s.target_app_ids]

    def _prepare_loud_urls(self) -> None:
        """Mint the campaign's shared lure URLs and blacklist some.

        Each lure has a raw landing URL and, usually, a shortened alias
        — Fig 3 counts only the shortened ones, and only ~60% of
        malicious apps posted any (3,805 of 6,273).
        """
        rng = self._rng
        n_urls = int(rng.integers(2, 6))
        for index in range(n_urls):
            domain = self.spam_domains[int(rng.integers(0, len(self.spam_domains)))]
            landing = f"http://{domain}/survey/{self.plan.campaign_id}-{index}"
            shortener = self._services.shortener_for(rng, self._params.bitly_share)
            short = shortener.shorten(landing)
            self.loud_lure_urls.append((landing, short))
            if rng.random() < self._params.blacklist_hit_rate:
                self._services.blacklist.add_url(
                    landing, day=int(rng.integers(20, 200))
                )
                self._services.blacklist.add_url(
                    short, day=int(rng.integers(20, 200))
                )

    # ------------------------------------------------------------------
    # posting
    # ------------------------------------------------------------------

    def post_weights(self) -> np.ndarray:
        shape = self._params.post_volume_pareto_shape
        weights = self._rng.pareto(shape, size=len(self.apps)) + 1.0
        return weights * self._params.malicious_post_volume_scale

    def emit_posts(self, app: FacebookApp, n_posts: int, horizon_days: int) -> None:
        rng = self._rng
        pod = self._pod_of[app.app_id]
        loud = app.app_id in self.loud_app_ids
        external_ratio = self._external_ratio[app.app_id]
        days = rng.integers(
            min(app.created_day, horizon_days - 1), horizon_days, size=n_posts
        )
        can_promote = (
            pod.promotes
            and (pod.site is not None or pod.direct_targets)
            and app.app_id not in self.professional_app_ids
        )
        for day in days:
            if loud:
                message, link, likes, comments = self._loud_post(
                    app, pod, external_ratio, can_promote
                )
            elif can_promote and rng.random() < 0.6:
                message, link, likes, comments = self._stealth_promotion_post(
                    app, pod
                )
            else:
                message, link, likes, comments = self._stealth_lure_post(
                    app, external_ratio
                )
            self._services.post_log.new_post(
                day=int(day),
                user_id=int(rng.integers(0, self._services.n_users)),
                app_id=app.app_id,
                app_name=app.name,
                message=message,
                link=link,
                likes=likes,
                comments=comments,
                truth_malicious=True,
            )

    def _loud_post(
        self, app: FacebookApp, pod: Pod, external_ratio: float, can_promote: bool
    ) -> tuple[str, str, int, int]:
        """A post by a loud (MyPageKeeper-visible) campaign app.

        Loud campaigns spam aggressively: every post carries a spam
        lure text and a link — an *external* survey-scam URL with
        probability ``external_ratio``, otherwise an *internal*
        facebook.com link (promoting a sibling app, or the app itself).
        This is why Fig 16 shows flagged-post ratios near 1 even for
        apps whose external-link ratio (Fig 12) is low.
        """
        rng = self._rng
        likes, comments = self._services.messages.spam_engagement()
        message = self._services.messages.spam_message(self._template)
        if rng.random() < external_ratio:
            landing, short = self.loud_lure_urls[
                int(rng.integers(0, len(self.loud_lure_urls)))
            ]
            link = short if self._uses_bitly[app.app_id] else landing
        elif can_promote:
            link = self._promotion_link(app, pod)
        else:
            link = app.install_url  # self-promotion spam
        return message, link, likes, comments

    def _promotion_link(self, app: FacebookApp, pod: Pod) -> str:
        """The pod's promotion mechanism: its site alias or a direct link."""
        rng = self._rng
        prefer_site = pod.site_short_url is not None and (
            not pod.direct_targets or rng.random() < 0.7
        )
        if prefer_site:
            if self._uses_bitly[app.app_id]:
                return pod.site_short_url
            return pod.site.url
        target = pod.direct_targets[int(rng.integers(0, len(pod.direct_targets)))]
        return f"https://www.facebook.com/apps/application.php?id={target}"

    def _stealth_promotion_post(
        self, app: FacebookApp, pod: Pod
    ) -> tuple[str, str, int, int]:
        """A stealthy promotion post (Sec 6.1).

        Masquerades as ordinary user enthusiasm — innocuous message,
        healthy engagement — which is why post-level detection misses
        it and app-level features are needed.
        """
        link = self._promotion_link(app, pod)
        likes, comments = self._services.messages.benign_engagement()
        return self._services.messages.benign_message(app.name), link, likes, comments

    def _stealth_lure_post(
        self, app: FacebookApp, external_ratio: float
    ) -> tuple[str, str | None, int, int]:
        """A stealthy survey-scam lure: fresh URLs, innocuous text."""
        rng = self._rng
        likes, comments = self._services.messages.spam_engagement()
        if rng.random() >= external_ratio:
            return (
                self._services.messages.benign_message(app.name),
                None,
                likes,
                comments,
            )
        self._stealth_serial += 1
        domain = self.spam_domains[int(rng.integers(0, len(self.spam_domains)))]
        landing = f"http://{domain}/offer/{app.app_id[-6:]}-{self._stealth_serial}"
        if self._uses_bitly[app.app_id] and rng.random() < 0.5:
            shortener = self._services.shortener_for(rng, self._params.bitly_share)
            landing = shortener.shorten(landing)
        return self._services.messages.benign_message(app.name), landing, likes, comments


# ----------------------------------------------------------------------
# drifting variants (Sec 7's adapting hackers)
# ----------------------------------------------------------------------


class DriftingCampaign(HackerCampaign):
    """A hacker organisation that adapts to a deployed detector.

    ``drift`` in [0, 1] is how far the organisation has adapted (0 =
    the 2012 behaviour FRAppE trained on, 1 = fully adapted).  The
    contract every subclass honours: **at drift = 0 the campaign is
    byte-identical to a plain** :class:`HackerCampaign` **with the same
    RNG stream** — every adaptation lives behind ``if self.drift > 0``
    and mutates the already built population, consuming RNG draws only
    after the base construction sequence finished.  That is what lets
    the pipeline's drift-off identity test hold.
    """

    archetype = "drifting"

    def __init__(
        self,
        plan: CampaignPlan,
        services: EcosystemServices,
        params: GenerationParams,
        rng: np.random.Generator,
        scale: float = 1.0,
        crawl_months: int = 3,
        drift: float = 0.0,
    ) -> None:
        super().__init__(plan, services, params, rng, scale, crawl_months)
        self.drift = float(min(max(drift, 0.0), 1.0))

    def build(self) -> list[FacebookApp]:
        apps = super().build()
        if self.drift > 0.0:
            self._apply_drift()
        return apps

    def _apply_drift(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _campaign_app_ids(self) -> list[str]:
        """Non-professional member IDs in creation order (professional
        apps already mimic benign behaviour; drift adapts the rest)."""
        return [
            app.app_id
            for app in self.apps
            if app.app_id not in self.professional_app_ids
        ]


class StealthyLikeFarmCampaign(DriftingCampaign):
    """A like farm turning stealthy (Ikram et al., 1506.00506).

    With rising drift the farm mimics organic behaviour: loud apps go
    quiet (their keyword-dense lure posts stop, so MyPageKeeper loses
    its handle), external-link ratios collapse toward the benign level,
    engagement on lure posts is bought to look healthy, and overall
    posting volume drops toward organic rates.
    """

    archetype = "like_farm"

    def _apply_drift(self) -> None:
        rng = self._rng
        demoted = [
            app_id
            for app_id in sorted(self.loud_app_ids)
            if rng.random() < self.drift
        ]
        self.loud_app_ids.difference_update(demoted)
        for app_id in self._campaign_app_ids():
            fade = self.drift * float(rng.uniform(0.6, 1.0))
            self._external_ratio[app_id] *= 1.0 - fade

    def post_weights(self) -> np.ndarray:
        weights = super().post_weights()
        if self.drift > 0.0:
            weights = weights * (1.0 - 0.6 * self.drift)
        return weights

    def _stealth_lure_post(
        self, app: FacebookApp, external_ratio: float
    ) -> tuple[str, str | None, int, int]:
        message, link, likes, comments = super()._stealth_lure_post(
            app, external_ratio
        )
        if self.drift > 0.0 and self._rng.random() < self.drift:
            # Bought engagement: lure posts carry organic-looking
            # like/comment counts instead of the spam signature.
            likes, comments = self._services.messages.benign_engagement()
        return message, link, likes, comments


class FakeProfileRingCampaign(DriftingCampaign):
    """A coordinated fake-profile ring (Fire et al., 1303.3751).

    The ring rotates identities between epochs: pods abandon the reused
    scam names that made the paper's name-clustering forensics work and
    re-register under fresh benign-style names, and members migrate to
    honest install flows so the client-ID-mismatch tell fades.
    """

    archetype = "profile_ring"

    def _apply_drift(self) -> None:
        rng = self._rng
        fresh_names = self._services.names.benign_names(len(self.pods))
        for pod, fresh in zip(self.pods, fresh_names):
            if rng.random() >= self.drift:
                continue
            pod.name = fresh
            for app in pod.apps:
                if app.app_id in self.professional_app_ids:
                    continue
                app.name = fresh
        for app in self.apps:
            if not app.client_id_pool:
                continue
            if rng.random() < self.drift:
                app.client_id_pool = ()


class BenignMimicryCampaign(DriftingCampaign):
    """Scam apps camouflaged as legitimate ones.

    The campaign adopts the *benign generation laws* wholesale — the
    professional-app playbook of Sec 5.1's false negatives, applied to
    an increasing fraction of the fleet: filled-in summaries, the
    benign permission distribution, reputable (or facebook.com) front
    domains, and a populated profile page.
    """

    archetype = "mimicry"

    def _apply_drift(self) -> None:
        from repro.ecosystem.benign import draw_benign_permissions

        rng = self._rng
        params = self._params
        for app in self.apps:
            if app.app_id in self.professional_app_ids:
                continue
            if rng.random() >= self.drift:
                continue
            slug = (
                "".join(ch for ch in app.name.lower() if ch.isalnum())[:18]
                or "app"
            )
            app.description = f"{app.name} - play with your friends!"
            app.company = f"{slug.title()} Studio"
            app.category = "Games"
            app.permissions = draw_benign_permissions(rng, params)
            if rng.random() < params.benign_redirect_facebook:
                app.redirect_uri = f"https://apps.facebook.com/{slug}"
            else:
                front = f"{slug}{int(rng.integers(1, 50))}front.com"
                self._services.wot.seed_reputable(front)
                self._services.hosting.assign(front, "self-hosted")
                app.redirect_uri = f"https://www.{front}/canvas"
            if not app.profile_feed:
                for _ in range(int(rng.integers(2, 8))):
                    self._profile_post_serial += 1
                    app.profile_feed.append(
                        Post(
                            post_id=-(10**9) - self._profile_post_serial,
                            day=int(rng.integers(0, 270)),
                            user_id=int(rng.integers(0, self._services.n_users)),
                            app_id=app.app_id,
                            message=self._services.messages.benign_message(
                                app.name
                            ),
                        )
                    )


#: archetype name -> drifting campaign class, in a stable order
DRIFTING_ARCHETYPES: dict[str, type[DriftingCampaign]] = {
    StealthyLikeFarmCampaign.archetype: StealthyLikeFarmCampaign,
    FakeProfileRingCampaign.archetype: FakeProfileRingCampaign,
    BenignMimicryCampaign.archetype: BenignMimicryCampaign,
}
