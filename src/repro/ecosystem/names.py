"""Application-name generation (Sec 4.2.1).

Benign developers pick essentially unique names; hackers are "lazy" —
each campaign reuses a small pool of scam-themed names across many app
IDs, occasionally appends version suffixes ('Profile Watchers v4.32'),
and sometimes typosquats a popular benign name ('FarmVile').
"""

from __future__ import annotations

import numpy as np

__all__ = ["NameFactory", "POPULAR_BENIGN_NAMES", "SCAM_BASE_NAMES"]

#: Popular benign apps named in the paper.
POPULAR_BENIGN_NAMES: tuple[str, ...] = (
    "FarmVille",
    "CityVille",
    "Facebook for iPhone",
    "Facebook for Android",
    "Mobile",
    "Links",
    "Zoo World",
    "Mafia Wars",
    "Fortune Cookie",
    "Words With Friends",
    "Texas HoldEm Poker",
    "Bubble Safari",
    "CastleVille",
    "Bejeweled Blitz",
    "Diamond Dash",
    "Draw Something",
    "Pet Society",
    "Gardens of Time",
    "The Sims Social",
    "Angry Birds",
)

#: Scam names observed in the paper (Tables 2/9, Secs 4-6).
SCAM_BASE_NAMES: tuple[str, ...] = (
    "What Does Your Name Mean?",
    "Free Phone Calls",
    "The App",
    "WhosStalking?",
    "Past Life",
    "Profile Watchers",
    "How long have you spent logged in?",
    "Death Predictor",
    "whats my name means",
    "What ur name implies!!!",
    "Name meaning finder",
    "Name meaning",
    "Future Teller",
    "What is the sexiest thing about you?",
    "Which cartoon character are you",
    "The Pink Facebook",
    "Pr0file stalker",
    "La App",
)

_BENIGN_FIRST = (
    "Happy", "Magic", "Super", "Crazy", "Daily", "Pocket", "Mega", "Tiny",
    "Royal", "Lucky", "Pixel", "Turbo", "Golden", "Cosmic", "Epic", "Ninja",
    "Puzzle", "Social", "Speedy", "Wonder", "Brave", "Clever", "Mighty",
    "Silent", "Velvet", "Crimson", "Frozen", "Ancient", "Neon", "Jolly",
)
_BENIGN_SECOND = (
    "Farm", "City", "Quiz", "Poker", "Racing", "Pets", "Words", "Bubbles",
    "Kitchen", "Garden", "Aquarium", "Empire", "Safari", "Casino", "Music",
    "Photos", "Calendar", "Trivia", "Chess", "Stories", "Dungeon", "Harbor",
    "Bakery", "Planet", "Jungle", "Castle", "Circus", "Voyage", "Orchard",
    "Workshop",
)
_BENIGN_SUFFIX = (
    "", "", "", "", "", " Saga", " Deluxe", " World", " Mania", " Pro",
)

_SCAM_FIRST = (
    "Who Viewed", "Free", "Secret", "Real", "True", "Your", "Amazing",
    "Hidden", "Instant", "Official",
)
_SCAM_SECOND = (
    "Profile Viewer", "iPad Giveaway", "Credits Generator", "Love Calculator",
    "Age Detector", "Stalker Finder", "Photo Effects", "Gift Cards",
    "Video Chat", "Fortune",
)


class NameFactory:
    """Draws app names for both populations."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._benign_serial = 0
        self._used_benign_names: set[str] = set()
        self._used_scam_names: set[str] = set()
        self._scam_serial = 0

    # -- benign ------------------------------------------------------------

    def popular_names(self) -> tuple[str, ...]:
        return POPULAR_BENIGN_NAMES

    def benign_names(self, n: int, shared_fraction: float = 0.02) -> list[str]:
        """*n* benign names, almost all unique.

        A *shared_fraction* of draws duplicates an earlier name — even
        legitimate developers occasionally collide (Fig 10's benign
        curve is not perfectly flat).
        """
        names: list[str] = []
        for _ in range(n):
            if names and self._rng.random() < shared_fraction:
                names.append(names[int(self._rng.integers(0, len(names)))])
            else:
                names.append(self._fresh_benign_name())
        return names

    def _fresh_benign_name(self) -> str:
        rng = self._rng
        # Some developers ship near-identical franchises ('Happy Farm',
        # 'Happy Farm Saga') — the source of Fig 10's mild benign
        # clustering at low thresholds.
        if self._used_benign_names and rng.random() < 0.15:
            parents = sorted(self._used_benign_names)
            parent = parents[int(rng.integers(0, len(parents)))]
            for suffix in (" Saga", " Deluxe", " Pro", " World", " Mania"):
                candidate = parent + suffix
                if candidate not in self._used_benign_names:
                    self._used_benign_names.add(candidate)
                    return candidate
        for _ in range(60):
            first = _BENIGN_FIRST[int(rng.integers(0, len(_BENIGN_FIRST)))]
            second = _BENIGN_SECOND[int(rng.integers(0, len(_BENIGN_SECOND)))]
            candidate = f"{first} {second}"
            if candidate not in self._used_benign_names:
                self._used_benign_names.add(candidate)
                return candidate
        # Combinatorial space exhausted: fall back to a serial.
        self._benign_serial += 1
        return f"{first} {second} {self._benign_serial}"

    # -- malicious -----------------------------------------------------------

    def scam_name_pool(self, n_names: int, base_reuse: float = 0.15) -> list[str]:
        """A campaign's pool of *n_names* distinct scam names.

        Name reuse is concentrated *within* a campaign (one name pod per
        pool entry); across campaigns only a small *base_reuse* fraction
        recycles the classic scam names, so separate hacker
        organisations rarely collide on a name.
        """
        pool: list[str] = []
        while len(pool) < n_names:
            if self._rng.random() < base_reuse:
                candidate = SCAM_BASE_NAMES[
                    int(self._rng.integers(0, len(SCAM_BASE_NAMES)))
                ]
            else:
                candidate = self._fresh_scam_name()
            if candidate not in pool:
                pool.append(candidate)
                self._used_scam_names.add(candidate)
        return pool

    def _fresh_scam_name(self) -> str:
        first = _SCAM_FIRST[int(self._rng.integers(0, len(_SCAM_FIRST)))]
        second = _SCAM_SECOND[int(self._rng.integers(0, len(_SCAM_SECOND)))]
        candidate = f"{first} {second}"
        while candidate in self._used_scam_names:
            self._scam_serial += 1
            candidate = f"{first} {second} {self._scam_serial}"
        return candidate

    def with_version(self, name: str) -> str:
        """Append a version marker ('Profile Watchers v4.32')."""
        major = int(self._rng.integers(1, 12))
        if self._rng.random() < 0.5:
            return f"{name} v{major}"
        minor = int(self._rng.integers(0, 100))
        return f"{name} v{major}.{minor:02d}"

    def typosquat_of(self, name: str) -> str:
        """Mutate one character of *name* (delete / transpose / double).

        Always returns a string different from *name* (transposing two
        identical characters would be a no-op, so draws are retried).
        """
        if len(name) < 4:
            return name + name[-1]
        for _ in range(50):
            pos = int(self._rng.integers(1, len(name) - 1))
            move = int(self._rng.integers(0, 3))
            if move == 0:  # delete ('FarmVille' -> 'FarmVile')
                candidate = name[:pos] + name[pos + 1 :]
            elif move == 1:  # transpose
                candidate = (
                    name[: pos - 1] + name[pos] + name[pos - 1] + name[pos + 1 :]
                )
            else:  # double a character
                candidate = name[:pos] + name[pos] + name[pos:]
            if candidate != name:
                return candidate
        return name + name[-1]
