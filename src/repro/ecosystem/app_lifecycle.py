"""Simulated app lifecycle events: the ground truth behind forensics.

Kagan et al. (arXiv:1309.4067) observe that app *lifecycles* —
deletions, renames, permission churn — are themselves discriminative
signals, but only a long-running monitor can see them.  This module
scripts those events onto the simulated calendar so the continuous
monitor (:mod:`repro.crawler.monitor`) has ground truth to detect:

* ``rename`` — the app's display name changes (campaigns rebrand
  burned apps),
* ``permission_change`` — the requested permission set churns
  (privilege escalation after install-base growth),
* ``delete`` — the developer pulls the app (beyond the moderation
  engine's policed deletions),
* ``mute`` — the app scrubs its recent profile-feed posts (post-rate
  collapse: the campaign cleaned its wall and moved on).

Events are generated deterministically from the master seed and are
**absolute**: each event carries the exact post-state (the new name,
the new permission tuple), so applying a script is idempotent and a
resumed monitor that regenerates the script and re-applies it up to the
current day lands in byte-identical world state.

Nothing here runs by default — the seed pipeline never imports this
module, so the one-shot crawl stays byte-identical to previous
releases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.platform.permissions import (
    OFFLINE_ACCESS,
    PUBLISH_STREAM,
    USER_BIRTHDAY,
)
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["LifecycleEvent", "LifecycleScript", "EVENT_KINDS"]

EVENT_KINDS = ("rename", "permission_change", "delete", "mute")

#: rebranding suffixes campaigns append when an app name is burned
_RENAME_SUFFIXES = ("2", "Plus", "Pro", "HD", "New")

#: the churn pool: permissions toggled by a permission_change event
_CHURN_PERMISSIONS = (OFFLINE_ACCESS, USER_BIRTHDAY, "read_stream")

#: how far back a ``mute`` wall wipe reaches, in days
MUTE_WIPE_DAYS = 45


@dataclass(frozen=True)
class LifecycleEvent:
    """One scripted change to one app, effective from *day* on."""

    day: int
    app_id: str
    kind: str  # rename | permission_change | delete | mute
    #: post-state payloads (absolute, so application is idempotent)
    new_name: str | None = None
    new_permissions: tuple[str, ...] | None = None

    def jsonable(self) -> dict:
        return {
            "day": self.day,
            "app_id": self.app_id,
            "kind": self.kind,
            "new_name": self.new_name,
            "new_permissions": (
                None if self.new_permissions is None
                else list(self.new_permissions)
            ),
        }


@dataclass
class LifecycleScript:
    """A day-ordered event script and the cursor of what was applied."""

    events: list[LifecycleEvent] = field(default_factory=list)
    _cursor: int = field(default=0, init=False, repr=False)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def generate(
        cls,
        world: "SimulatedWorld",
        start_day: int,
        horizon_days: int,
        n_events: int | None = None,
    ) -> "LifecycleScript":
        """Script *n_events* lifecycle events over the monitoring window.

        A pure function of the (freshly built) world and its master
        seed: generation reads pre-event app state, so regenerating on
        a resumed monitor yields the identical script.
        """
        rng = np.random.default_rng(
            derive_seed(world.config.master_seed, "app-lifecycle")
        )
        malicious = sorted(world.registry.malicious(), key=lambda a: a.app_id)
        benign = sorted(world.registry.benign(), key=lambda a: a.app_id)
        if n_events is None:
            n_events = max(4, len(malicious) // 6)
        events: list[LifecycleEvent] = []
        used: set[str] = set()
        for _ in range(n_events):
            # Campaign apps churn far more than benign ones (4:1).
            pool = malicious if rng.random() < 0.8 and malicious else benign
            candidates = [a for a in pool if a.app_id not in used]
            if not candidates:
                break
            app = candidates[int(rng.integers(0, len(candidates)))]
            used.add(app.app_id)
            day = start_day + int(rng.integers(1, max(2, horizon_days)))
            kind = EVENT_KINDS[int(rng.integers(0, len(EVENT_KINDS)))]
            if kind == "rename":
                suffix = _RENAME_SUFFIXES[
                    int(rng.integers(0, len(_RENAME_SUFFIXES)))
                ]
                events.append(LifecycleEvent(
                    day=day, app_id=app.app_id, kind=kind,
                    new_name=f"{app.name} {suffix}",
                ))
            elif kind == "permission_change":
                churn = _CHURN_PERMISSIONS[
                    int(rng.integers(0, len(_CHURN_PERMISSIONS)))
                ]
                current = set(app.permissions)
                if churn in current:
                    current.discard(churn)
                else:
                    current.add(churn)
                current.add(PUBLISH_STREAM)  # campaigns never drop posting
                events.append(LifecycleEvent(
                    day=day, app_id=app.app_id, kind=kind,
                    new_permissions=tuple(sorted(current)),
                ))
            elif kind == "delete":
                if app.deleted_day is not None and app.deleted_day <= day:
                    continue  # moderation got there first
                events.append(LifecycleEvent(
                    day=day, app_id=app.app_id, kind=kind,
                ))
            else:  # mute
                events.append(LifecycleEvent(
                    day=day, app_id=app.app_id, kind=kind,
                ))
        events.sort(key=lambda e: (e.day, e.app_id, e.kind))
        return cls(events=events)

    # -- application --------------------------------------------------------

    def apply_until(self, world: "SimulatedWorld", day: int) -> list[LifecycleEvent]:
        """Apply every not-yet-applied event with ``event.day <= day``.

        Returns the events applied by this call.  Application mutates
        the registry in place; because every payload is absolute, a
        fresh process that regenerates the script and calls
        ``apply_until`` with the same cutoff reproduces the identical
        world state regardless of how the cutoffs were batched.
        """
        applied: list[LifecycleEvent] = []
        while self._cursor < len(self.events):
            event = self.events[self._cursor]
            if event.day > day:
                break
            self._cursor += 1
            app = world.registry.maybe_get(event.app_id)
            if app is None:
                continue
            if event.kind == "rename":
                app.name = event.new_name or app.name
            elif event.kind == "permission_change":
                if event.new_permissions is not None:
                    app.permissions = event.new_permissions
            elif event.kind == "delete":
                if app.deleted_day is None or app.deleted_day > event.day:
                    app.deleted_day = event.day
            elif event.kind == "mute":
                # Wall wipe: the campaign scrubbed its last ~6 weeks of
                # posts.  The cutoff reaches back past the posting
                # horizon so the next feed crawl observes the collapse.
                cutoff = max(0, event.day - MUTE_WIPE_DAYS)
                app.profile_feed = [
                    post for post in app.profile_feed if post.day <= cutoff
                ]
            applied.append(event)
        return applied

    def events_for(self, app_id: str) -> list[LifecycleEvent]:
        """All scripted events of one app (ground truth for tests)."""
        return [e for e in self.events if e.app_id == app_id]
