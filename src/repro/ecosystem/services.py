"""The bundle of platform/web services the ecosystem populations use."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ecosystem.messages import MessageFactory
from repro.ecosystem.names import NameFactory
from repro.platform.apps import AppRegistry
from repro.platform.posts import PostLog
from repro.urlinfra.blacklist import UrlBlacklist
from repro.urlinfra.hosting import HostingRegistry
from repro.urlinfra.redirector import RedirectorNetwork
from repro.urlinfra.shortener import Shortener
from repro.urlinfra.wot import WotService

__all__ = ["EcosystemServices"]


@dataclass
class EcosystemServices:
    """Everything a population needs to create apps and emit posts."""

    registry: AppRegistry
    post_log: PostLog
    wot: WotService
    hosting: HostingRegistry
    redirector: RedirectorNetwork
    blacklist: UrlBlacklist
    #: shorteners keyed by domain; 'bit.ly' carries ~92% of short URLs
    shorteners: dict[str, Shortener]
    names: NameFactory
    messages: MessageFactory
    n_users: int
    #: shared pool of bulletproof hosting domains hackers rent; Zipf
    #: weights concentrate most campaigns on a few domains (Table 3)
    spam_domain_pool: list[str] = field(default_factory=list)
    spam_domain_weights: np.ndarray | None = None

    def sample_spam_domains(self, rng: np.random.Generator, k: int) -> list[str]:
        """Sample *k* distinct hosting domains, head-heavy."""
        if not self.spam_domain_pool:
            raise RuntimeError("spam domain pool is empty")
        k = min(k, len(self.spam_domain_pool))
        indices = rng.choice(
            len(self.spam_domain_pool),
            size=k,
            replace=False,
            p=self.spam_domain_weights,
        )
        return [self.spam_domain_pool[i] for i in indices]

    @property
    def bitly(self) -> Shortener:
        return self.shorteners["bit.ly"]

    def shortener_for(self, rng: np.random.Generator, bitly_share: float) -> Shortener:
        """Pick a shortener, bit.ly with probability *bitly_share*."""
        if rng.random() < bitly_share or len(self.shorteners) == 1:
            return self.bitly
        others = [s for d, s in self.shorteners.items() if d != "bit.ly"]
        return others[int(rng.integers(0, len(others)))]
