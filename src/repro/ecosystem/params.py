"""Generative parameters, each derived from a paper measurement.

This module is the contract between the paper and the simulation: every
knob cites the statistic it reproduces.  Knobs are plain dataclass
fields so ablation benchmarks can perturb them (e.g. "what if hackers
started filling in app descriptions?" — Sec 7's robustness discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import PAPER

__all__ = ["GenerationParams"]


@dataclass
class GenerationParams:
    """All distribution parameters of the generative ecosystem."""

    # ------------------------------------------------------------------
    # Class balance (Sec 3): ~13% of observed apps are truly malicious;
    # MyPageKeeper's post-level view catches ~44% of them (6,350 of the
    # eventual 6,273 + 8,051 ~= 14.3K), FRAppE finds the rest later.
    # ------------------------------------------------------------------
    malicious_app_fraction: float = PAPER.malicious_app_fraction
    #: Detectability is correlated within a name pod (pod-mates share
    #: lure URLs): P(pod is loud) and the member-level conditionals.
    loud_pod_probability: float = 0.43
    loud_pod_member_probability: float = 1.0
    stealth_pod_member_probability: float = 0.0

    @property
    def malicious_app_flagged_probability(self) -> float:
        """Marginal P(app loud) implied by the pod-level law (~0.44)."""
        return (
            self.loud_pod_probability * self.loud_pod_member_probability
            + (1 - self.loud_pod_probability) * self.stealth_pod_member_probability
        )

    # ------------------------------------------------------------------
    # Summary completeness (Fig 5).
    # ------------------------------------------------------------------
    benign_has_category: float = PAPER.benign_has_category
    benign_has_company: float = PAPER.benign_has_company
    benign_has_description: float = PAPER.benign_has_description
    malicious_has_category: float = PAPER.malicious_has_category
    malicious_has_company: float = PAPER.malicious_has_company
    malicious_has_description: float = PAPER.malicious_has_description

    # ------------------------------------------------------------------
    # Permissions (Fig 6/7): 97% of malicious apps request exactly
    # publish_stream; benign permission counts follow a geometric tail
    # beyond the 62% single-permission mass (a handful request 10+).
    # ------------------------------------------------------------------
    malicious_single_permission: float = PAPER.malicious_single_permission_fraction
    benign_single_permission: float = PAPER.benign_single_permission_fraction
    benign_extra_permission_p: float = 0.35  # geometric tail parameter

    # ------------------------------------------------------------------
    # Redirect URIs and WOT (Fig 8, Table 3): 80% of benign apps
    # redirect inside apps.facebook.com; malicious apps land on a small
    # set of spam domains (top 5 host 83% of them), 80% of which WOT has
    # never scored and the rest score < 5.
    # ------------------------------------------------------------------
    benign_redirect_facebook: float = PAPER.benign_redirect_facebook_fraction
    malicious_wot_coverage: float = 0.20  # Fig 8: ~80% of malicious
    # redirect domains end up with no WOT score at the app level
    malicious_wot_max_score: float = 5.0
    top5_hosting_coverage: float = PAPER.top5_hosting_domains_coverage

    # ------------------------------------------------------------------
    # Client-ID mismatch (Sec 4.1.4).
    # ------------------------------------------------------------------
    malicious_client_id_mismatch: float = PAPER.malicious_client_id_mismatch_fraction
    benign_client_id_mismatch: float = PAPER.benign_client_id_mismatch_fraction

    # ------------------------------------------------------------------
    # Profile feeds (Fig 9): 97% of malicious apps have empty profile
    # pages; the other 3% use them to advertise scam URLs.  Benign
    # profile pages accumulate posts log-normally (median ~a dozen).
    # ------------------------------------------------------------------
    malicious_empty_profile: float = PAPER.malicious_empty_profile_fraction
    benign_empty_profile: float = 0.08
    benign_profile_posts_lognorm_mean: float = 2.5  # exp(2.5) ~ 12 posts
    benign_profile_posts_lognorm_sigma: float = 1.2
    malicious_profile_posts_mean: float = 40.0  # when non-empty: scam ads

    # ------------------------------------------------------------------
    # Names (Fig 10/11): 87% of malicious apps share a name; mean
    # cluster ~5; ~8% of names back > 10 apps; the biggest name ('The
    # App') covers ~10% of malicious apps.  A small fraction typosquat
    # popular benign names.  Benign names are almost all unique.
    # ------------------------------------------------------------------
    malicious_shared_name: float = PAPER.malicious_shared_name_fraction
    malicious_mean_apps_per_name: float = PAPER.malicious_mean_apps_per_name
    malicious_typosquat_fraction: float = 0.01
    benign_shared_name: float = 0.02

    # ------------------------------------------------------------------
    # Posting behaviour (Fig 12): 80% of benign apps post no external
    # link; 40% of malicious apps average ~1 external link per post.
    # 92% of shortened URLs go through bit.ly; < 10% of them point back
    # to Facebook.
    # ------------------------------------------------------------------
    benign_zero_external: float = PAPER.benign_zero_external_fraction
    benign_external_ratio_beta: tuple[float, float] = (1.2, 8.0)
    malicious_low_external: float = 0.40  # some campaigns use plain text lures
    bitly_share: float = PAPER.bitly_share_of_short_urls
    short_url_unresolvable: float = 0.09  # 503 of 5,700 failed to expand
    shortened_back_to_facebook: float = PAPER.shortened_pointing_back_to_fb_fraction

    # ------------------------------------------------------------------
    # Post volumes: heavy-tailed (Zipf-like) per-app volumes; the top
    # malicious app made ~1,000 posts in the paper's window.
    # ------------------------------------------------------------------
    post_volume_pareto_shape: float = 1.3
    benign_post_volume_scale: float = 1.0
    malicious_post_volume_scale: float = 0.6
    #: share of wall-post volume produced by benign apps (popular games
    #: dominate the corpus; malicious apps are many but low-volume)
    benign_fraction_of_posts: float = 0.92
    #: Sec 2.2: 37% of monitored posts carry no application field
    #: (manual posts and social plugins); 27% of *malicious* posts are
    #: app-less too (users manually sharing scam links).
    appless_post_fraction: float = PAPER.posts_without_app_fraction
    appless_malicious_share: float = 0.03

    # ------------------------------------------------------------------
    # Clicks (Fig 3): 60% of malicious apps accumulate > 100K clicks on
    # their bit.ly links, 20% > 1M, top ~1.74M.  A log-normal with
    # median ~178K and sigma ~1.7 hits those quantiles
    # (P(X > 1e5) ~ .63, P(X > 1e6) ~ .15 at full scale).
    # ------------------------------------------------------------------
    clicks_lognorm_mean: float = 10.5  # per LINK: exp(10.5) ~ 36K
    clicks_lognorm_sigma: float = 2.1
    external_click_fraction: float = 0.10  # clicks from outside Facebook

    # ------------------------------------------------------------------
    # Monthly active users (Fig 4): 40% of malicious apps keep a median
    # MAU >= 1000, 60% peak >= 1000, top max 260K.  Log-normal medians
    # with month-to-month jitter.
    # ------------------------------------------------------------------
    malicious_mau_lognorm_mean: float = 6.2  # exp(6.2) ~ 490
    malicious_mau_lognorm_sigma: float = 1.9
    benign_mau_lognorm_mean: float = 8.5  # exp(8.5) ~ 5K
    benign_mau_lognorm_sigma: float = 2.0
    mau_month_jitter_sigma: float = 0.8

    # ------------------------------------------------------------------
    # AppNets (Sec 6.1): role split 25/58.8/16.2; the collusion graph
    # has 44 components whose top-5 sizes are ~ (3484, 770, 589, 296,
    # 247) at full scale; pods (same-name clusters) are near-cliques,
    # which yields Fig 14's clustering-coefficient mass above 0.74.
    # ------------------------------------------------------------------
    promoter_fraction: float = PAPER.promoter_fraction
    promotee_fraction: float = PAPER.promotee_fraction
    dual_fraction: float = PAPER.dual_role_fraction
    #: fraction of malicious apps that collude at all (6,331 / 6,273+8,051)
    colluding_fraction: float = 0.44
    pod_edge_density: float = 0.85
    cross_pod_edge_probability: float = 0.08
    #: fraction of promotion done with direct app links vs indirection
    direct_promotion_fraction: float = 0.35
    indirection_sites_per_campaign: float = 2.4  # 103 sites / 44 campaigns
    aws_hosting_fraction: float = PAPER.indirection_on_aws_fraction

    # ------------------------------------------------------------------
    # Piggybacking (Sec 6.2, Fig 16, Table 9): hackers forge the
    # application field of ~77 popular apps (6,350 pre-whitelist minus
    # 6,273); those apps end up with a malicious-post ratio < 0.2.
    # ------------------------------------------------------------------
    piggybacked_popular_apps: int = 77
    piggyback_post_ratio: float = 0.025  # forged posts vs the app's own volume

    # ------------------------------------------------------------------
    # Moderation: survival fractions at the crawl days (see
    # repro.platform.moderation).  Malicious apps: ~51% alive at the
    # profile-feed crawl (3,227/6,273), ~40% at the summary crawl
    # (2,528/6,273).  Benign: ~97% alive at the summary crawl.
    # Permission crawls additionally fail on human-only redirect flows.
    # ------------------------------------------------------------------
    malicious_survival_at_summary_crawl: float = 0.40
    benign_survival_at_summary_crawl: float = 0.967
    #: P(install-URL redirect is crawlable | app alive)
    benign_inst_crawlable: float = 0.37
    malicious_inst_crawlable: float = 0.20

    # ------------------------------------------------------------------
    # Class overlap (Sec 5.1's error rates): a few hackers configure
    # their apps professionally (complete summaries, several
    # permissions, honest client IDs) — these are the classifier's
    # false negatives (FN ~ 4%).  Conversely a few legitimate hobbyist
    # apps are as bare as scam apps (no summary, one permission) — the
    # source of FRAppE Lite's residual false positives (~ 0.1-0.6%).
    # ------------------------------------------------------------------
    malicious_professional_fraction: float = 0.018
    benign_hobbyist_fraction: float = 0.02

    # ------------------------------------------------------------------
    # MyPageKeeper signal strength: how separable spam posts are.
    # ------------------------------------------------------------------
    spam_message_keyword_rate: float = 0.9
    benign_message_keyword_rate: float = 0.02
    #: URLs of flaggable campaigns that also land on the blacklist
    blacklist_hit_rate: float = 0.55

    def role_fractions(self) -> tuple[float, float, float]:
        return (self.promoter_fraction, self.promotee_fraction, self.dual_fraction)
