"""Spam-keyword lexicon (Sec 2.2).

MyPageKeeper's classifier uses the presence of spam keywords such as
'FREE', 'Deal', and 'Hurry' as a post feature — malicious posts are far
more likely to contain them.  The lexicon below extends the paper's
examples with the vocabulary its example scam posts use (Table 9:
"WOW I just got 5000 Facebook Credits for Free", "Get Your Free
Facebook Sim Card", ...).
"""

from __future__ import annotations

import re

__all__ = ["SPAM_KEYWORDS", "spam_keyword_count", "contains_spam_keyword"]

SPAM_KEYWORDS: frozenset[str] = frozenset(
    {
        "free",
        "deal",
        "hurry",
        "wow",
        "omg",
        "credits",
        "gift",
        "giftcard",
        "prize",
        "winner",
        "won",
        "ipad",
        "recharge",
        "offer",
        "offers",
        "limited",
        "exclusive",
        "claim",
        "survey",
        "stalker",
        "stalking",
        "viewers",
        "unlock",
        "shocking",
        "sexiest",
    }
)

_WORD_RE = re.compile(r"[a-z0-9']+")


def _tokens(message: str) -> list[str]:
    return _WORD_RE.findall(message.lower())


def spam_keyword_count(message: str) -> int:
    """Number of token occurrences drawn from the spam lexicon."""
    return sum(1 for token in _tokens(message) if token in SPAM_KEYWORDS)


def contains_spam_keyword(message: str) -> bool:
    return spam_keyword_count(message) > 0
