"""MyPageKeeper's URL classifier (Sec 2.2).

The classifier evaluates every *URL* by combining evidence from all
posts that contain it:

* spam-keyword density (malicious posts advertise FREE/deals/prizes),
* text similarity across the posts carrying the URL (spam campaigns
  reuse near-identical messages),
* like/comment counts (malicious posts engage users less),
* campaign size (how many posts carry the URL),

plus a URL blacklist.  A URL flagged by either source marks every post
containing it as malicious.

The SVM arrives pre-trained, exactly as MyPageKeeper did in the paper
(it was built and validated in the authors' prior work): at
construction we synthesise a calibration corpus of spam/ham URL feature
profiles and fit the SVM to it.  The operating point reproduces the
paper's measured behaviour — 97% precision on flagged posts and a
0.005% false-flag rate on benign posts.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC
from repro.mypagekeeper.keywords import spam_keyword_count
from repro.platform.posts import Post
from repro.urlinfra.blacklist import UrlBlacklist

__all__ = ["PostFeatures", "url_features", "UrlClassifier"]

#: Cap on pairwise message comparisons per URL (keeps features O(1)).
_SIMILARITY_SAMPLE = 6


def _token_set(message: str) -> frozenset[str]:
    return frozenset(message.lower().split())


def _jaccard(a: frozenset[str], b: frozenset[str]) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 1.0


@dataclass(frozen=True)
class PostFeatures:
    """Aggregated features of one URL across the posts carrying it."""

    spam_keyword_density: float
    message_similarity: float
    mean_likes: float
    mean_comments: float
    log_post_count: float

    def as_array(self) -> np.ndarray:
        return np.array(
            [
                self.spam_keyword_density,
                self.message_similarity,
                self.mean_likes,
                self.mean_comments,
                self.log_post_count,
            ]
        )


def url_features(posts: list[Post]) -> PostFeatures:
    """Aggregate the posts carrying one URL into a feature vector."""
    if not posts:
        raise ValueError("need at least one post")
    messages = [p.message for p in posts]
    densities = [
        spam_keyword_count(m) / max(len(m.split()), 1) for m in messages
    ]
    sample = messages[:_SIMILARITY_SAMPLE]
    if len(sample) < 2:
        similarity = 0.0
    else:
        token_sets = [_token_set(m) for m in sample]
        pairs = list(combinations(token_sets, 2))
        similarity = float(np.mean([_jaccard(a, b) for a, b in pairs]))
    return PostFeatures(
        spam_keyword_density=float(np.mean(densities)),
        message_similarity=similarity,
        mean_likes=float(np.mean([p.likes for p in posts])),
        mean_comments=float(np.mean([p.comments for p in posts])),
        log_post_count=float(np.log1p(len(posts))),
    )


class UrlClassifier:
    """Pre-trained SVM over URL features, combined with a blacklist."""

    def __init__(
        self,
        blacklist: UrlBlacklist | None = None,
        rng: np.random.Generator | None = None,
        calibration_size: int = 600,
    ) -> None:
        self._blacklist = blacklist or UrlBlacklist()
        rng = rng or np.random.default_rng(41)
        x, y = self._calibration_corpus(rng, calibration_size)
        self._scaler = StandardScaler().fit(x)
        self._svm = SVC(c=1.0, kernel="rbf", gamma="auto").fit(
            self._scaler.transform(x), y
        )

    @staticmethod
    def _calibration_corpus(
        rng: np.random.Generator, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Synthesise spam/ham URL profiles for pre-training.

        Distribution parameters follow Sec 2.2's characterisation:
        spam campaigns have keyword-dense, near-duplicate messages with
        few likes/comments; benign URLs the opposite.
        """
        half = size // 2
        spam = np.column_stack(
            [
                # keyword density: broad support up to fully keyword-
                # stuffed lures (RBF kernels do not extrapolate, so the
                # calibration must cover the whole spam range)
                0.05 + 0.9 * rng.beta(1.3, 2.5, half),
                rng.beta(4.0, 1.4, half),  # similarity ~0.74, mass at 1
                rng.gamma(1.2, 0.8, half),  # likes ~1
                rng.gamma(1.1, 0.5, half),  # comments ~0.5
                np.log1p(rng.geometric(0.05, half)),  # campaign size
            ]
        )
        # Ham URLs: half are single-post (similarity 0), the rest are
        # benign campaigns (game updates) with moderate similarity.
        ham_similarity = np.where(
            rng.random(half) < 0.5, 0.0, rng.beta(2.5, 4.0, half)
        )
        # Benign group sizes are bimodal: most URLs appear once or
        # twice, but popular apps' canonical links gather huge groups.
        ham_group = np.where(
            rng.random(half) < 0.25,
            rng.geometric(0.01, half),
            rng.geometric(0.4, half),
        )
        ham = np.column_stack(
            [
                rng.beta(1, 40, half),  # keyword density ~0.02
                ham_similarity,
                rng.gamma(2.0, 4.0, half),  # likes ~8, wide spread
                rng.gamma(1.5, 2.0, half),  # comments ~3
                np.log1p(ham_group),
            ]
        )
        x = np.vstack([spam, ham])
        y = np.array([1] * half + [0] * half)
        return x, y

    @property
    def blacklist(self) -> UrlBlacklist:
        return self._blacklist

    def classify_url(self, url: str, posts: list[Post], day: int | None = None) -> bool:
        """Is *url* malicious, given the posts that carry it?"""
        return url in self.classify_many({url: posts}, day)

    def classify_many(
        self, posts_by_url: dict[str, list[Post]], day: int | None = None
    ) -> set[str]:
        """Classify a batch of URLs; returns the flagged subset.

        Blacklist hits skip the SVM; the rest are scored in one
        vectorised prediction call.
        """
        flagged: set[str] = set()
        pending_urls: list[str] = []
        pending_features: list[np.ndarray] = []
        for url, posts in posts_by_url.items():
            if self._blacklist.contains(url, day):
                flagged.add(url)
            else:
                pending_urls.append(url)
                pending_features.append(url_features(posts).as_array())
        if pending_urls:
            matrix = self._scaler.transform(np.vstack(pending_features))
            predictions = self._svm.predict(matrix)
            flagged.update(
                url for url, hit in zip(pending_urls, predictions) if hit
            )
        return flagged
