"""The MyPageKeeper monitor and the app-level ground-truth heuristic.

The monitor periodically crawls the walls/news feeds of subscribed
users; in the simulation the post log *is* the observed corpus, so a
scan walks the log, groups posts by URL, classifies each URL once, and
marks every post carrying a flagged URL (Sec 2.2).

:class:`AppLabeler` then applies the paper's heuristic (Sec 2.3): an
app with at least one flagged post is labelled malicious.  The labeler
also exposes each app's malicious-to-all-posts ratio, which Sec 6.2
uses to spot piggybacked popular apps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mypagekeeper.classifier import UrlClassifier
from repro.platform.posts import Post, PostLog

__all__ = ["MonitorReport", "MyPageKeeper", "AppLabeler"]


@dataclass
class MonitorReport:
    """Everything one MyPageKeeper scan produced."""

    posts_scanned: int
    flagged_urls: set[str]
    flagged_post_ids: set[int]
    #: app_id -> (flagged posts, total posts); None key = app-less posts
    app_post_counts: dict[str | None, tuple[int, int]]

    @property
    def flagged_posts(self) -> int:
        return len(self.flagged_post_ids)

    def flagged_count(self, app_id: str | None) -> int:
        return self.app_post_counts.get(app_id, (0, 0))[0]

    def total_count(self, app_id: str | None) -> int:
        return self.app_post_counts.get(app_id, (0, 0))[1]

    def malicious_post_ratio(self, app_id: str) -> float:
        """Fraction of the app's posts flagged malicious (Fig 16)."""
        flagged, total = self.app_post_counts.get(app_id, (0, 0))
        return flagged / total if total else 0.0

    @property
    def flagged_by_apps_fraction(self) -> float:
        """Share of flagged posts that carry an application field (Sec 3)."""
        if not self.flagged_post_ids:
            return 0.0
        with_app = sum(
            flagged
            for app_id, (flagged, _total) in self.app_post_counts.items()
            if app_id is not None
        )
        return with_app / len(self.flagged_post_ids)


class MyPageKeeper:
    """The security app: URL-granularity post classification."""

    def __init__(self, classifier: UrlClassifier, post_log: PostLog) -> None:
        self._classifier = classifier
        self._post_log = post_log

    def scan(self, day: int | None = None) -> MonitorReport:
        """Classify every URL seen in the log (up to *day*, if given)."""
        posts_by_url: dict[str, list[Post]] = {}
        scanned = 0
        counts: dict[str | None, list[int]] = {}
        eligible: list[Post] = []
        for post in self._post_log:
            if day is not None and post.day > day:
                continue
            scanned += 1
            eligible.append(post)
            if post.link is not None:
                posts_by_url.setdefault(post.link, []).append(post)

        flagged_urls = self._classifier.classify_many(posts_by_url, day)
        flagged_post_ids: set[int] = set()
        for post in eligible:
            flagged = post.link in flagged_urls
            if flagged:
                flagged_post_ids.add(post.post_id)
            entry = counts.setdefault(post.app_id, [0, 0])
            entry[0] += int(flagged)
            entry[1] += 1
        return MonitorReport(
            posts_scanned=scanned,
            flagged_urls=flagged_urls,
            flagged_post_ids=flagged_post_ids,
            app_post_counts={k: (v[0], v[1]) for k, v in counts.items()},
        )


class AppLabeler:
    """Sec 2.3's heuristic: >= 1 flagged post => the app is malicious."""

    def __init__(self, report: MonitorReport) -> None:
        self._report = report

    @property
    def report(self) -> MonitorReport:
        return self._report

    def is_malicious(self, app_id: str) -> bool:
        return self._report.flagged_count(app_id) > 0

    def malicious_app_ids(self) -> set[str]:
        return {
            app_id
            for app_id, (flagged, _total) in self._report.app_post_counts.items()
            if app_id is not None and flagged > 0
        }

    def observed_app_ids(self) -> set[str]:
        return {
            app_id
            for app_id in self._report.app_post_counts
            if app_id is not None
        }
