"""MyPageKeeper: the security app supplying FRAppE's ground truth.

MyPageKeeper (Sec 2.2) monitors the walls and news feeds of its
subscribed users and classifies *URLs* as malicious by combining URL
blacklists with an SVM over post-level features (spam keywords, text
similarity across posts carrying the same URL, like/comment counts).
Every post containing a flagged URL is marked malicious.

It is deliberately app-agnostic: it labels posts, not apps.  The paper
derives app-level ground truth with the heuristic "an app with at least
one flagged post is malicious", which :class:`AppLabeler` implements.
"""

from repro.mypagekeeper.keywords import SPAM_KEYWORDS, spam_keyword_count
from repro.mypagekeeper.classifier import PostFeatures, UrlClassifier, url_features
from repro.mypagekeeper.monitor import AppLabeler, MyPageKeeper, MonitorReport

__all__ = [
    "SPAM_KEYWORDS",
    "spam_keyword_count",
    "PostFeatures",
    "UrlClassifier",
    "url_features",
    "AppLabeler",
    "MyPageKeeper",
    "MonitorReport",
]
