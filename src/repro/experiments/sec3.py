"""Sec 3 — prevalence of malicious apps."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport("sec3", "Prevalence of malicious apps")
    bundle = result.bundle
    n_total = max(len(bundle.d_total), 1)
    # The paper's 13% counts D-Sample malicious plus the validated
    # FRAppE flags (6,273 + 8,051 over 111K).
    validated_new = (
        len(result.validation.validated) if result.validation is not None else 0
    )
    measured_fraction = (
        len(bundle.d_sample_malicious) + validated_new
    ) / n_total
    report.add_fraction(
        "malicious fraction of observed apps",
        PAPER.malicious_app_fraction,
        measured_fraction,
    )
    report.add_fraction(
        "flagged posts made by apps",
        1.0 - PAPER.malicious_posts_without_app_fraction,
        result.monitor_report.flagged_by_apps_fraction,
    )
    # Share of flagged app-posts that came from malicious apps vs
    # piggybacked popular apps (the paper's 53% is of all flagged).
    mpk = result.monitor_report
    flagged_by_sample_malicious = sum(
        mpk.flagged_count(a) for a in bundle.d_sample_malicious
    )
    report.add_fraction(
        "flagged posts from (non-whitelisted) malicious apps",
        0.53 / (1.0 - PAPER.malicious_posts_without_app_fraction),
        flagged_by_sample_malicious / max(mpk.flagged_posts, 1)
        / max(mpk.flagged_by_apps_fraction, 1e-9),
    )
    return report
