"""Fig 13 — promoter / promotee / dual-role split of colluding apps."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.collusion.appnets import CollusionGraph
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult, collusion: CollusionGraph) -> ExperimentReport:
    report = ExperimentReport(
        "fig13", "Collusion roles among AppNet members"
    )
    promoters = collusion.promoters()
    promotees = collusion.promotees()
    dual = collusion.dual_role()
    total = max(len(promoters) + len(promotees) + len(dual), 1)
    report.add(
        "colluding apps",
        PAPER.colluding_apps,
        total,
    )
    report.add_fraction(
        "promoters", PAPER.promoter_fraction, len(promoters) / total
    )
    report.add_fraction(
        "promotees", PAPER.promotee_fraction, len(promotees) / total
    )
    report.add_fraction(
        "dual role", PAPER.dual_role_fraction, len(dual) / total
    )
    return report
