"""Fig 16 — per-app ratio of malicious posts to all posts.

Most apps with flagged posts are outright malicious (ratio near 1);
the ~5% tail with ratio < 0.2 are the piggybacked popular apps.
"""

from __future__ import annotations

from repro.analysis.distributions import fraction_above, fraction_below
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "malicious_post_ratios"]


def malicious_post_ratios(result: PipelineResult) -> list[float]:
    """Ratios for every app with at least one flagged post."""
    report = result.monitor_report
    return [
        flagged / total
        for app_id, (flagged, total) in report.app_post_counts.items()
        if app_id is not None and flagged > 0
    ]


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig16", "Malicious-posts-to-all-posts ratio per app"
    )
    ratios = malicious_post_ratios(result)
    report.add_fraction(
        "apps with ratio < 0.2 (piggybacked)",
        PAPER.piggyback_low_ratio_fraction,
        fraction_below(ratios, 0.2),
    )
    report.add_fraction(
        "apps with ratio > 0.8 (outright malicious)",
        0.80,  # read off Fig 16
        fraction_above(ratios, 0.8),
    )
    return report
