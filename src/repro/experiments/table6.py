"""Table 6 — classification accuracy with individual features."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.frappe import FrappeClassifier
from repro.core.pipeline import PipelineResult
from repro.ml.metrics import ClassificationReport

__all__ = ["run", "single_feature_cv"]

#: paper's Table 6 row label -> our feature name
FEATURE_OF_ROW = {
    "category": "has_category",
    "company": "has_company",
    "description": "has_description",
    "profile_posts": "has_profile_posts",
    "client_id": "client_id_mismatch",
    "wot_score": "wot_score",
    "permission_count": "permission_count",
}


def single_feature_cv(
    result: PipelineResult, seed: int = 6
) -> dict[str, ClassificationReport]:
    records, labels = result.complete_records()
    out: dict[str, ClassificationReport] = {}
    for row, feature in FEATURE_OF_ROW.items():
        classifier = FrappeClassifier(result.extractor, features=(feature,))
        # A 1:1 resample reproduces the paper's error asymmetry: sparse
        # features (category/company/permission-count) then flag large
        # benign fractions instead of defaulting to all-benign.
        out[row] = classifier.cross_validate(
            records, labels, benign_per_malicious=1.0,
            rng=np.random.default_rng(seed),
        )
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table6",
        "Single-feature classifiers (5-fold CV on D-Complete)",
        notes="the comparable shape: description/profile-posts are the "
        "strongest single features; category/company/permission-count "
        "flag many benign apps; client-ID misses many malicious apps",
    )
    measured = single_feature_cv(result)
    for row, paper_acc, paper_fp, paper_fn in PAPER.single_feature_cv:
        rep = measured[row]
        acc, fp, fn = rep.as_percentages()
        report.add(
            row,
            f"acc={paper_acc}% FP={paper_fp}% FN={paper_fn}%",
            f"acc={acc:.1f}% FP={fp:.1f}% FN={fn:.1f}%",
        )
    return report
