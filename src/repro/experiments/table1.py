"""Table 1 — dataset sizes.

Counts scale with the configuration, so the comparable quantities are
the *ratios*: each dataset's size relative to D-Sample, i.e. the crawl
survival/coverage rates per class.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table1",
        "Datasets collected by MyPageKeeper + crawls",
        notes="absolute counts scale with ScaleConfig; ratios are comparable",
    )
    bundle = result.bundle
    rows = dict((name, (b, m)) for name, b, m in bundle.table1_rows())

    report.add("D-Total apps", PAPER.total_apps, rows["D-Total"][0])
    n_benign, n_malicious = rows["D-Sample"]
    report.add(
        "D-Sample (benign/malicious)",
        f"{PAPER.d_sample_benign}/{PAPER.d_sample_malicious}",
        f"{n_benign}/{n_malicious}",
    )
    paper_pairs = {
        "D-Summary": (PAPER.d_summary_benign, PAPER.d_summary_malicious),
        "D-Inst": (PAPER.d_inst_benign, PAPER.d_inst_malicious),
        "D-ProfileFeed": (PAPER.d_profilefeed_benign, PAPER.d_profilefeed_malicious),
        "D-Complete": (PAPER.d_complete_benign, PAPER.d_complete_malicious),
    }
    for name, (paper_b, paper_m) in paper_pairs.items():
        measured_b, measured_m = rows[name]
        report.add_fraction(
            f"{name} coverage of benign",
            paper_b / PAPER.d_sample_benign,
            measured_b / max(n_benign, 1),
        )
        report.add_fraction(
            f"{name} coverage of malicious",
            paper_m / PAPER.d_sample_malicious,
            measured_m / max(n_malicious, 1),
        )
    return report
