"""Fig 10 — clustering of apps by name similarity, per threshold.

The y-axis is the number of clusters as a fraction of the number of
apps: a value near 1 means unique names (benign apps), a small value
means heavy name reuse (malicious apps).
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.pipeline import PipelineResult
from repro.text.clustering import cluster_names

__all__ = ["run", "reduction_ratios", "sample_names"]

THRESHOLDS = (1.0, 0.9, 0.8, 0.7)

#: reduction ratios read off Fig 10
_PAPER = {
    "malicious": {1.0: 0.19, 0.9: 0.16, 0.8: 0.14, 0.7: 0.13},
    "benign": {1.0: 0.95, 0.9: 0.92, 0.8: 0.88, 0.7: 0.80},
}


def sample_names(result: PipelineResult) -> dict[str, list[str]]:
    """class -> app names over D-Sample (from post metadata)."""
    log = result.world.post_log
    out: dict[str, list[str]] = {}
    for label, ids in (
        ("benign", result.bundle.d_sample_benign),
        ("malicious", result.bundle.d_sample_malicious),
    ):
        out[label] = [
            name for a in ids if (name := log.app_name(a)) is not None
        ]
    return out


def reduction_ratios(
    result: PipelineResult, thresholds: tuple[float, ...] = THRESHOLDS
) -> dict[str, dict[float, float]]:
    names = sample_names(result)
    out: dict[str, dict[float, float]] = {}
    for label, name_list in names.items():
        out[label] = {
            t: cluster_names(name_list, t).reduction_ratio for t in thresholds
        }
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig10", "Name-similarity clustering (clusters / apps)"
    )
    ratios = reduction_ratios(result)
    for label in ("malicious", "benign"):
        for threshold in THRESHOLDS:
            report.add_fraction(
                f"{label} @ threshold {threshold}",
                _PAPER[label][threshold],
                ratios[label][threshold],
            )
    return report
