"""Fig 7 — CCDF of the number of permissions requested per app."""

from __future__ import annotations

from repro.analysis.distributions import fraction_above
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "permission_counts"]


def permission_counts(result: PipelineResult) -> dict[str, list[int]]:
    """class -> permission-set sizes over D-Inst."""
    out: dict[str, list[int]] = {}
    benign, malicious = result.bundle.d_inst
    for label, ids in (("benign", benign), ("malicious", malicious)):
        out[label] = [
            len(result.bundle.records[a].permissions) for a in ids
        ]
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig07", "Number of permissions requested per app"
    )
    counts = permission_counts(result)
    report.add_fraction(
        "malicious requesting exactly 1",
        PAPER.malicious_single_permission_fraction,
        1.0 - fraction_above(counts["malicious"], 1),
    )
    report.add_fraction(
        "benign requesting exactly 1",
        PAPER.benign_single_permission_fraction,
        1.0 - fraction_above(counts["benign"], 1),
    )
    report.add_fraction(
        "benign requesting > 3",
        0.12,  # read off Fig 7's benign CCDF
        fraction_above(counts["benign"], 3),
    )
    report.add(
        "max permissions (benign)",
        "~30 (Fig 7 tail)",
        max(counts["benign"], default=0),
    )
    return report
