"""Shared experiment infrastructure: one cached pipeline per scale.

Every table/figure reproduction reads from the same
:class:`~repro.core.pipeline.PipelineResult`; building it is the
expensive step, so results are memoised per ``(scale, seed)``.
"""

from __future__ import annotations

from repro.collusion.appnets import CollusionAnalyzer, CollusionGraph
from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline, PipelineResult

__all__ = ["BENCH_SCALE", "get_result", "get_collusion", "clear_cache"]

#: Default scale for benchmark runs (~8,900 apps, ~580K posts).
BENCH_SCALE = 0.08

_RESULTS: dict[tuple[float, int, bool, float], PipelineResult] = {}
_COLLUSION: dict[tuple[float, int], CollusionGraph] = {}


def get_result(
    scale: float = BENCH_SCALE,
    seed: int = 2012,
    sweep: bool = True,
    fault_rate: float = 0.0,
) -> PipelineResult:
    """The cached end-to-end pipeline result for a configuration.

    A ``sweep=True`` result (includes the Sec 5.3 unlabelled sweep) also
    satisfies later ``sweep=False`` requests.  ``fault_rate`` runs the
    whole crawl through the fault-injecting transport (the chaos
    benchmarks sweep it); 0 is the paper's fault-free study.
    """
    key = (scale, seed, sweep, fault_rate)
    if key in _RESULTS:
        return _RESULTS[key]
    if sweep is False and (scale, seed, True, fault_rate) in _RESULTS:
        return _RESULTS[(scale, seed, True, fault_rate)]
    pipeline = FrappePipeline(
        ScaleConfig(scale=scale, master_seed=seed, fault_rate=fault_rate)
    )
    result = pipeline.run(sweep_unlabelled=sweep)
    _RESULTS[key] = result
    return result


def get_collusion(
    scale: float = BENCH_SCALE, seed: int = 2012
) -> tuple[PipelineResult, CollusionGraph]:
    """The cached collusion graph discovered over the same world."""
    key = (scale, seed)
    result = get_result(scale, seed)
    if key not in _COLLUSION:
        analyzer = CollusionAnalyzer(result.world)
        _COLLUSION[key] = analyzer.discover()
    return result, _COLLUSION[key]


def clear_cache() -> None:
    _RESULTS.clear()
    _COLLUSION.clear()
