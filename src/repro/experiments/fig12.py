"""Fig 12 — distribution of the external-link-to-post ratio."""

from __future__ import annotations

from repro.analysis.distributions import fraction_at_least
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "external_ratios"]


def external_ratios(result: PipelineResult) -> dict[str, list[float]]:
    """class -> per-app external-link-to-post ratios over D-Sample."""
    extractor = result.extractor
    out: dict[str, list[float]] = {}
    for label, ids in (
        ("benign", result.bundle.d_sample_benign),
        ("malicious", result.bundle.d_sample_malicious),
    ):
        out[label] = [
            extractor.feature_value(
                "external_link_ratio", result.bundle.records[a]
            )
            for a in ids
        ]
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport("fig12", "External-link-to-post ratio")
    ratios = external_ratios(result)
    benign = ratios["benign"]
    malicious = ratios["malicious"]
    report.add_fraction(
        "benign posting no external links",
        PAPER.benign_zero_external_fraction,
        sum(1 for r in benign if r == 0.0) / max(len(benign), 1),
    )
    report.add_fraction(
        "malicious with ratio >= 0.8",
        PAPER.malicious_high_external_fraction,
        fraction_at_least(malicious, 0.8),
    )
    report.add_fraction(
        "malicious with ratio >= 0.2",
        0.75,  # read off Fig 12's malicious curve
        fraction_at_least(malicious, 0.2),
    )
    return report
