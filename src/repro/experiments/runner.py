"""Run every table/figure reproduction and print paper-vs-measured.

``python -m repro.experiments [scale]`` executes the full set.
"""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.experiments import common
from repro.experiments import (
    fig01_15,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig16,
    sec3,
    sec52,
    sec61,
    sec7,
    table1,
    table2,
    table3,
    table5,
    table6,
    table8,
    table9,
)

__all__ = ["run_all", "main"]

#: experiments taking only the pipeline result
_SIMPLE = (
    table1, table2, table3, table5, table6, table8, table9,
    fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11,
    fig12, fig16, sec3, sec52, sec7,
)
#: experiments that also need the collusion graph
_COLLUSION = (fig01_15, fig13, fig14, sec61)


def run_all(scale: float = common.BENCH_SCALE, seed: int = 2012) -> list[ExperimentReport]:
    """Execute every experiment against one cached world."""
    result, collusion = common.get_collusion(scale, seed)
    reports = [module.run(result) for module in _SIMPLE]
    reports.extend(module.run(result, collusion) for module in _COLLUSION)
    reports.sort(key=lambda r: r.experiment_id)
    return reports


def main(argv: list[str] | None = None) -> int:
    import sys

    args = argv if argv is not None else sys.argv[1:]
    scale = float(args[0]) if args else common.BENCH_SCALE
    for report in run_all(scale):
        print(report.render())
        print()
    return 0
