"""Sec 5.2 — full FRAppE cross-validation (and the Lite comparison)."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.frappe import frappe, frappe_lite
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult, ratio: float = 7.0, seed: int = 52) -> ExperimentReport:
    report = ExperimentReport(
        "sec52", "FRAppE (on-demand + aggregation features), 7:1 CV"
    )
    records, labels = result.complete_records()
    n_malicious = sum(labels)
    n_benign = len(labels) - n_malicious
    capped = min(ratio, n_benign / max(n_malicious, 1))

    lite = frappe_lite(result.extractor).cross_validate(
        records, labels, benign_per_malicious=capped,
        rng=np.random.default_rng(seed),
    )
    full = frappe(result.extractor).cross_validate(
        records, labels, benign_per_malicious=capped,
        rng=np.random.default_rng(seed),
    )
    lite_row = next(r for r in PAPER.frappe_lite_cv if r[0] == "7:1")
    report.add(
        "FRAppE Lite",
        f"acc={lite_row[1]}% FP={lite_row[2]}% FN={lite_row[3]}%",
        f"acc={lite.as_percentages()[0]:.1f}% "
        f"FP={lite.as_percentages()[1]:.1f}% FN={lite.as_percentages()[2]:.1f}%",
    )
    report.add(
        "FRAppE (full)",
        f"acc={PAPER.frappe_accuracy}% FP={PAPER.frappe_fp}% FN={PAPER.frappe_fn}%",
        f"acc={full.as_percentages()[0]:.1f}% "
        f"FP={full.as_percentages()[1]:.1f}% FN={full.as_percentages()[2]:.1f}%",
    )
    report.add(
        "aggregation features help (acc delta)",
        f"+{PAPER.frappe_accuracy - lite_row[1]:.1f}pp",
        f"{full.accuracy * 100 - lite.accuracy * 100:+.1f}pp",
    )
    return report
