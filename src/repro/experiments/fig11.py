"""Fig 11 — sizes of identical-name app clusters (CCDF)."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult
from repro.experiments.fig10 import sample_names
from repro.text.clustering import cluster_names

__all__ = ["run", "cluster_sizes"]


def cluster_sizes(result: PipelineResult) -> dict[str, list[int]]:
    """class -> identical-name cluster sizes, descending."""
    names = sample_names(result)
    return {
        label: cluster_names(name_list, 1.0).cluster_sizes()
        for label, name_list in names.items()
    }


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig11",
        "Identical-name cluster sizes",
        notes="cluster sizes scale with the simulated malicious "
        "population; the largest-cluster share is scale-free",
    )
    sizes = cluster_sizes(result)
    malicious = sizes["malicious"]
    benign = sizes["benign"]
    n_mal_clusters = max(len(malicious), 1)
    n_mal_apps = max(sum(malicious), 1)
    report.add_fraction(
        "malicious clusters with > 10 apps",
        0.10,  # Fig 11: close to 10% of clusters exceed 10 apps
        sum(1 for s in malicious if s > 10) / n_mal_clusters,
    )
    report.add_fraction(
        "largest cluster / malicious apps ('The App')",
        PAPER.the_app_clone_count / PAPER.d_sample_malicious,
        (malicious[0] if malicious else 0) / n_mal_apps,
    )
    report.add(
        "mean apps per malicious name",
        f"{PAPER.malicious_mean_apps_per_name:.1f}",
        f"{n_mal_apps / n_mal_clusters:.1f}",
    )
    report.add_fraction(
        "benign clusters with > 2 apps",
        0.01,  # Fig 11: benign names are almost unique
        sum(1 for s in benign if s > 2) / max(len(benign), 1),
    )
    return report
