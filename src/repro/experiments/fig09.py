"""Fig 9 — number of posts in the app profile page (D-ProfileFeed)."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "profile_post_counts"]


def profile_post_counts(result: PipelineResult) -> dict[str, list[int]]:
    out: dict[str, list[int]] = {}
    benign, malicious = result.bundle.d_profilefeed
    for label, ids in (("benign", benign), ("malicious", malicious)):
        out[label] = [
            len(result.bundle.records[a].profile_posts) for a in ids
        ]
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport("fig09", "Posts in the app profile page")
    counts = profile_post_counts(result)
    n_mal = max(len(counts["malicious"]), 1)
    n_ben = max(len(counts["benign"]), 1)
    report.add_fraction(
        "malicious with empty profile",
        PAPER.malicious_empty_profile_fraction,
        sum(1 for c in counts["malicious"] if c == 0) / n_mal,
    )
    report.add_fraction(
        "benign with empty profile",
        0.10,  # read off Fig 9's benign curve
        sum(1 for c in counts["benign"] if c == 0) / n_ben,
    )
    nonzero = [c for c in counts["benign"] if c > 0]
    report.add(
        "median benign profile posts",
        "~10 (Fig 9)",
        int(np.median(nonzero)) if nonzero else 0,
    )
    return report
