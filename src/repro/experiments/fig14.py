"""Fig 14 — local clustering coefficient in the collaboration graph."""

from __future__ import annotations

import numpy as np

from repro.analysis.distributions import fraction_above
from repro.analysis.report import ExperimentReport
from repro.collusion.appnets import CollusionGraph
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult, collusion: CollusionGraph) -> ExperimentReport:
    report = ExperimentReport(
        "fig14", "Local clustering coefficient of colluding apps"
    )
    coefficients = [
        collusion.graph.local_clustering(n) for n in collusion.graph.nodes()
    ]
    report.add_fraction(
        "apps with coefficient > 0.74",
        PAPER.clustering_coeff_over_074_fraction,
        fraction_above(coefficients, 0.74),
    )
    report.add(
        "median coefficient",
        "~0.45 (Fig 14)",
        f"{float(np.median(coefficients)) if coefficients else 0.0:.2f}",
    )
    report.add_fraction(
        "apps with coefficient > 0",
        0.9,  # Fig 14: most nodes have some triangle support
        fraction_above(coefficients, 0.0),
    )
    return report
