"""Sec 6.1 — AppNet forensics: components, mechanisms, infrastructure."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.collusion.appnets import CollusionAnalyzer, CollusionGraph
from repro.config import PAPER
from repro.core.pipeline import PipelineResult
from repro.urlinfra.hosting import AWS_PROVIDER

__all__ = ["run"]


def run(result: PipelineResult, collusion: CollusionGraph) -> ExperimentReport:
    analyzer = CollusionAnalyzer(result.world)
    stats = analyzer.stats(collusion)
    report = ExperimentReport(
        "sec61",
        "AppNet statistics",
        notes="component counts are structural (scaled by sqrt of the "
        "configuration scale); degree thresholds shrink with population",
    )
    report.add("connected components", PAPER.connected_components, stats.n_components)
    paper_shares = tuple(
        f"{s / PAPER.colluding_apps:.0%}" for s in PAPER.top_component_sizes
    )
    measured_shares = tuple(
        f"{s / max(stats.n_colluding, 1):.0%}" for s in stats.top_component_sizes
    )
    report.add("top-5 component shares", paper_shares, measured_shares)
    report.add_fraction(
        "apps colluding with > 10 others",
        PAPER.collusion_degree_over_10_fraction,
        stats.degree_over_10_fraction,
    )
    report.add(
        "max collusions / colluding apps",
        f"{PAPER.max_collusions / PAPER.colluding_apps:.3f}",
        f"{stats.max_degree / max(stats.n_colluding, 1):.3f}",
    )
    # Direct promotion (Sec 6.1a)
    report.add(
        "direct promoters -> promotees",
        f"{PAPER.direct_promoters} -> {PAPER.direct_promotees}",
        f"{len(collusion.direct_promoters())} -> {len(collusion.direct_promotees())}",
    )
    # Indirection (Sec 6.1b)
    ind = collusion.indirection
    report.add(
        "indirection sites -> promoted apps",
        f"{PAPER.indirection_websites} -> {PAPER.indirection_promotees}",
        f"{ind.n_sites} -> {len(ind.promotees())}",
    )
    promoter_names, promotee_names = analyzer.name_reuse(collusion)
    report.add(
        "indirect promoters / unique names",
        f"{PAPER.indirection_promoters} / {PAPER.indirection_promoter_names}",
        f"{len(ind.promoters())} / {promoter_names}",
    )
    report.add(
        "indirect promotees / unique names",
        f"{PAPER.indirection_promotees} / {PAPER.indirection_promotee_names}",
        f"{len(ind.promotees())} / {promotee_names}",
    )
    sites_over = ind.sites_over(max(3, int(100 * result.world.config.scale)))
    report.add_fraction(
        "sites promoting > 100 apps (scaled)",
        PAPER.websites_over_100_apps_fraction,
        sites_over / max(ind.n_sites, 1),
    )
    report.add_fraction(
        "site links shortened via bit.ly",
        PAPER.indirection_bitly / PAPER.indirection_websites,
        ind.bitly_links / max(ind.total_short_links, 1),
    )
    providers = analyzer.hosting_providers(collusion)
    aws = providers.get(AWS_PROVIDER, 0)
    report.add_fraction(
        "indirection sites hosted on AWS",
        PAPER.indirection_on_aws_fraction,
        aws / max(ind.n_sites, 1),
    )
    return report
