"""Sec 7 — the robust-features-only variant of FRAppE."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.frappe import frappe_robust
from repro.core.pipeline import PipelineResult

__all__ = ["run"]


def run(result: PipelineResult, seed: int = 7) -> ExperimentReport:
    report = ExperimentReport(
        "sec7", "FRAppE restricted to obfuscation-robust features"
    )
    records, labels = result.complete_records()
    robust = frappe_robust(result.extractor).cross_validate(
        records, labels, rng=np.random.default_rng(seed)
    )
    acc, fp, fn = robust.as_percentages()
    report.add(
        "robust-features CV",
        f"acc={PAPER.robust_accuracy}% FP={PAPER.robust_fp}% FN={PAPER.robust_fn}%",
        f"acc={acc:.1f}% FP={fp:.1f}% FN={fn:.1f}%",
    )
    return report
