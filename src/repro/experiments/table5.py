"""Table 5 — FRAppE Lite 5-fold CV at several benign:malicious ratios."""

from __future__ import annotations

import numpy as np

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.frappe import frappe_lite
from repro.core.pipeline import PipelineResult
from repro.ml.metrics import ClassificationReport

__all__ = ["run", "cv_at_ratios"]

RATIOS = {"1:1": 1.0, "4:1": 4.0, "7:1": 7.0, "10:1": 10.0}


def cv_at_ratios(
    result: PipelineResult,
    ratios: dict[str, float] = RATIOS,
    seed: int = 5,
) -> dict[str, ClassificationReport]:
    """FRAppE Lite CV on D-Complete at each resampled ratio."""
    records, labels = result.complete_records()
    out: dict[str, ClassificationReport] = {}
    for name, ratio in ratios.items():
        classifier = frappe_lite(result.extractor)
        capped = _cap_ratio(labels, ratio)
        out[name] = classifier.cross_validate(
            records,
            labels,
            benign_per_malicious=capped,
            rng=np.random.default_rng(seed),
        )
    return out


def _cap_ratio(labels: list[int], ratio: float) -> float:
    """Never request more benign apps than D-Complete holds."""
    n_malicious = sum(labels)
    n_benign = len(labels) - n_malicious
    if n_malicious == 0:
        return ratio
    return min(ratio, n_benign / n_malicious)


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table5", "FRAppE Lite cross-validation vs class ratio"
    )
    measured = cv_at_ratios(result)
    for ratio_name, paper_acc, paper_fp, paper_fn in PAPER.frappe_lite_cv:
        rep = measured[ratio_name]
        acc, fp, fn = rep.as_percentages()
        report.add(
            f"ratio {ratio_name}",
            f"acc={paper_acc}% FP={paper_fp}% FN={paper_fn}%",
            f"acc={acc:.1f}% FP={fp:.1f}% FN={fn:.1f}%",
        )
    return report
