"""Fig 4 — median and maximum MAU achieved by malicious apps.

MAU scales with the simulated user base; the 1,000-user threshold is
multiplied by the configuration's scale factor.
"""

from __future__ import annotations

from repro.analysis.distributions import fraction_at_least
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "mau_of_malicious"]


def mau_of_malicious(result: PipelineResult) -> tuple[list[int], list[int]]:
    """(medians, maxima) of MAU over the D-Summary malicious apps."""
    _benign, malicious = result.bundle.d_summary
    medians, maxima = [], []
    for app_id in malicious:
        record = result.bundle.records[app_id]
        if record.mau_observations:
            medians.append(record.median_mau)
            maxima.append(record.max_mau)
    return medians, maxima


def run(result: PipelineResult) -> ExperimentReport:
    scale = result.world.config.scale
    threshold = 1000 * scale
    report = ExperimentReport(
        "fig04",
        "Monthly active users of malicious apps",
        notes=f"1,000-MAU threshold scaled by the user base (x{scale})",
    )
    medians, maxima = mau_of_malicious(result)
    report.add_fraction(
        "median MAU >= 1000 (scaled)",
        PAPER.median_mau_over_1000_fraction,
        fraction_at_least(medians, threshold),
    )
    report.add_fraction(
        "max MAU >= 1000 (scaled)",
        PAPER.max_mau_over_1000_fraction,
        fraction_at_least(maxima, threshold),
    )
    report.add(
        "top app max MAU (scaled paper)",
        f"{int(PAPER.top_app_max_mau * scale):,}",
        f"{max(maxima, default=0):,}",
    )
    return report
