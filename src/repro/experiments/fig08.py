"""Fig 8 — WOT trust score of the redirect-URI domain (D-Inst)."""

from __future__ import annotations

from repro.analysis.distributions import fraction_at_least, fraction_below
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult
from repro.urlinfra.wot import WOT_UNKNOWN

__all__ = ["run", "wot_scores"]


def wot_scores(result: PipelineResult) -> dict[str, list[float]]:
    """class -> WOT scores of redirect domains (-1 = unknown)."""
    wot = result.world.services.wot
    out: dict[str, list[float]] = {}
    benign, malicious = result.bundle.d_inst
    for label, ids in (("benign", benign), ("malicious", malicious)):
        scores = []
        for app_id in ids:
            record = result.bundle.records[app_id]
            if record.redirect_uri:
                scores.append(wot.score_url(record.redirect_uri))
        out[label] = scores
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig08", "WOT trust score of redirect domains"
    )
    scores = wot_scores(result)
    malicious = scores["malicious"]
    benign = scores["benign"]
    n_mal = max(len(malicious), 1)
    report.add_fraction(
        "malicious with no WOT score",
        PAPER.malicious_wot_unknown_fraction,
        sum(1 for s in malicious if s == WOT_UNKNOWN) / n_mal,
    )
    report.add_fraction(
        "malicious scoring < 5",
        PAPER.malicious_wot_below_5_fraction,
        fraction_below(malicious, 5.0),
    )
    report.add_fraction(
        "benign scoring >= 60",
        0.85,  # read off Fig 8's benign curve
        fraction_at_least(benign, 60.0),
    )
    return report
