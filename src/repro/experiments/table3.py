"""Table 3 — domains hosting malicious apps' redirect URIs (D-Inst).

The paper's top five domains host 83% of the 491 malicious apps in
D-Inst; the comparable shape is that a handful of domains dominate.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult
from repro.urlinfra.url import domain_of

__all__ = ["run", "hosting_domain_histogram"]


def hosting_domain_histogram(result: PipelineResult) -> Counter[str]:
    """Domain -> number of malicious D-Inst apps redirecting there."""
    _benign, malicious = result.bundle.d_inst
    histogram: Counter[str] = Counter()
    for app_id in malicious:
        record = result.bundle.records[app_id]
        if record.redirect_uri:
            domain = domain_of(record.redirect_uri)
            if domain:
                histogram[domain] += 1
    return histogram


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table3", "Top domains hosting malicious apps (D-Inst)"
    )
    histogram = hosting_domain_histogram(result)
    total = sum(histogram.values())
    top5 = histogram.most_common(5)
    for rank, ((paper_domain, paper_count), measured) in enumerate(
        zip(PAPER.top_hosting_domains, top5), start=1
    ):
        domain, count = measured
        report.add(
            f"#{rank}",
            f"{paper_domain} ({paper_count} apps)",
            f"{domain} ({count} apps)",
        )
    coverage = sum(c for _, c in top5) / total if total else 0.0
    report.add_fraction(
        "top-5 domain coverage", PAPER.top5_hosting_domains_coverage, coverage
    )
    return report
