"""Table 9 — popular apps abused by app piggybacking (Sec 6.2)."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.pipeline import PipelineResult

__all__ = ["run", "piggybacked_apps"]

_PAPER_TOP = (
    ("FarmVille", 9_621_909),
    ("Links", 7_650_858),
    ("Facebook for iPhone", 5_551_422),
    ("Mobile", 4_208_703),
    ("Facebook for Android", 3_912_955),
)


def piggybacked_apps(
    result: PipelineResult, max_ratio: float = 0.2
) -> list[tuple[str, str, int, float]]:
    """Apps with flagged posts but a low malicious ratio (Fig 16's tail).

    Returns (app_id, name, total posts, malicious ratio), sorted by
    post volume — the paper's Table 9 selection.
    """
    report = result.monitor_report
    log = result.world.post_log
    out = []
    for app_id, (flagged, total) in report.app_post_counts.items():
        if app_id is None or flagged == 0:
            continue
        ratio = flagged / total
        if ratio < max_ratio:
            out.append(
                (app_id, log.app_name(app_id) or "<unknown>", total, ratio)
            )
    out.sort(key=lambda row: row[2], reverse=True)
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table9",
        "Popular apps abused by piggybacking",
        notes="apps with flagged posts but ratio < 0.2 — hackers forge "
        "popular apps' IDs via prompt_feed",
    )
    top = piggybacked_apps(result)[:5]
    for rank, (paper_row, measured) in enumerate(zip(_PAPER_TOP, top), start=1):
        paper_name, paper_posts = paper_row
        _app_id, name, total, ratio = measured
        report.add(
            f"#{rank}",
            f"{paper_name} ({paper_posts:,} posts)",
            f"{name} ({total:,} posts, ratio {ratio:.2f})",
        )
    truth_piggy = result.world.piggybacked_ids()
    found = {app_id for app_id, _n, _t, _r in piggybacked_apps(result)}
    report.add(
        "hidden piggyback targets recovered",
        "n/a",
        f"{len(found & truth_piggy)}/{len(truth_piggy)}",
    )
    return report
