"""Fig 5 — summary-field completeness of benign vs malicious apps."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "field_fractions"]


def field_fractions(result: PipelineResult) -> dict[str, dict[str, float]]:
    """class -> {category, company, description} non-empty fractions."""
    out: dict[str, dict[str, float]] = {}
    benign, malicious = result.bundle.d_summary
    for label, ids in (("benign", benign), ("malicious", malicious)):
        records = [result.bundle.records[a] for a in ids]
        n = max(len(records), 1)
        out[label] = {
            "category": sum(1 for r in records if r.category) / n,
            "company": sum(1 for r in records if r.company) / n,
            "description": sum(1 for r in records if r.description) / n,
        }
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig05", "Apps providing category / company / description"
    )
    fractions = field_fractions(result)
    paper = {
        "benign": {
            "category": PAPER.benign_has_category,
            "company": PAPER.benign_has_company,
            "description": PAPER.benign_has_description,
        },
        "malicious": {
            "category": PAPER.malicious_has_category,
            "company": PAPER.malicious_has_company,
            "description": PAPER.malicious_has_description,
        },
    }
    for label in ("benign", "malicious"):
        for fld in ("category", "company", "description"):
            report.add_fraction(
                f"{label} with {fld}", paper[label][fld], fractions[label][fld]
            )
    return report
