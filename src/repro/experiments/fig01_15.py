"""Figs 1 and 15 — the AppNet snapshot and an example neighborhood.

Fig 1 is a 770-app component with average degree 195; Fig 15 zooms into
the 'Death Predictor' app: 26 neighbors, clustering coefficient 0.87,
22 neighbors sharing one name.  We reproduce the same structural
queries against the discovered collusion graph.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import ExperimentReport
from repro.collusion.appnets import CollusionGraph
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "example_neighborhood"]


def example_neighborhood(
    result: PipelineResult, collusion: CollusionGraph, min_neighbors: int = 10
) -> tuple[str, int, float, int] | None:
    """The most clique-like well-connected app.

    Returns (app_id, n_neighbors, clustering coefficient, neighbors
    sharing the modal name), or ``None`` when the graph is too sparse.
    """
    graph = collusion.graph
    log = result.world.post_log
    best: tuple[float, str] | None = None
    for node in graph.nodes():
        if graph.degree(node) < min_neighbors:
            continue
        coefficient = graph.local_clustering(node)
        if best is None or coefficient > best[0]:
            best = (coefficient, node)
    if best is None:
        return None
    coefficient, node = best
    neighbors = graph.neighbors(node)
    names = Counter(
        name for n in neighbors if (name := log.app_name(n)) is not None
    )
    modal = names.most_common(1)[0][1] if names else 0
    return node, len(neighbors), coefficient, modal


def run(result: PipelineResult, collusion: CollusionGraph) -> ExperimentReport:
    report = ExperimentReport(
        "fig01_15",
        "AppNet snapshot and example collusion neighborhood",
        notes="component sizes and degrees scale with the population; "
        "comparable: second component's share and its density, and the "
        "clique-like example neighborhood",
    )
    components = collusion.graph.connected_components()
    if len(components) >= 2:
        second = components[1]
        report.add_fraction(
            "2nd component / colluding apps",
            PAPER.fig1_component_size / PAPER.colluding_apps,
            len(second) / max(len(collusion.graph), 1),
        )
        density_paper = PAPER.fig1_average_degree / PAPER.fig1_component_size
        avg_degree = collusion.graph.average_degree(second)
        report.add_fraction(
            "2nd component avg degree / size",
            density_paper,
            avg_degree / max(len(second), 1),
        )
    example = example_neighborhood(result, collusion)
    if example is not None:
        _app_id, n_neighbors, coefficient, modal = example
        report.add(
            "example: neighbors",
            "26 ('Death Predictor')",
            n_neighbors,
        )
        report.add(
            "example: clustering coefficient", "0.87", f"{coefficient:.2f}"
        )
        report.add_fraction(
            "example: neighbors sharing one name", 22 / 26, modal / n_neighbors
        )
    return report
