"""Table 2 — top malicious apps by post count in D-Sample."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.core.pipeline import PipelineResult

__all__ = ["run", "top_malicious_apps"]

_PAPER_TOP = (
    ("What Does Your Name Mean?", 1006),
    ("Free Phone Calls", 793),
    ("The App", 564),
    ("WhosStalking?", 434),
    ("FarmVile", 210),
)


def top_malicious_apps(
    result: PipelineResult, n: int = 5
) -> list[tuple[str, str, int]]:
    """(app_id, name, post count) of the top D-Sample malicious apps."""
    log = result.world.post_log
    ranked = sorted(
        result.bundle.d_sample_malicious, key=log.post_count, reverse=True
    )
    return [
        (app_id, log.app_name(app_id) or "<unknown>", log.post_count(app_id))
        for app_id in ranked[:n]
    ]


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "table2",
        "Top malicious apps by post count",
        notes="names are drawn from the scam-name pool; ranks and the "
        "heavy-tailed counts are the comparable shape",
    )
    top = top_malicious_apps(result)
    for rank, ((paper_name, paper_count), measured) in enumerate(
        zip(_PAPER_TOP, top), start=1
    ):
        _app_id, name, count = measured
        report.add(
            f"#{rank}",
            f"{paper_name} ({paper_count} posts)",
            f"{name} ({count} posts)",
        )
    if top:
        counts = [c for _, _, c in top]
        report.add(
            "top-1 / top-5 post ratio",
            f"{_PAPER_TOP[0][1] / _PAPER_TOP[4][1]:.1f}x",
            f"{counts[0] / max(counts[-1], 1):.1f}x",
        )
    return report
