"""One module per paper table/figure, plus a runner.

Every module exposes ``run(...) -> ExperimentReport`` taking the shared
:class:`~repro.core.pipeline.PipelineResult` (and, for Sec 6, the
discovered collusion graph).  ``python -m repro.experiments`` executes
all of them and prints paper-vs-measured tables.
"""

from repro.experiments.common import BENCH_SCALE, get_collusion, get_result

__all__ = ["BENCH_SCALE", "get_collusion", "get_result"]
