"""``python -m repro.experiments`` — run every reproduction."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
