"""Fig 3 — clicks received by bit.ly links posted by malicious apps.

Click volumes scale with the simulated user base, so the paper's
absolute thresholds (100K / 1M) are multiplied by the configuration's
scale factor.
"""

from __future__ import annotations

from repro.analysis.distributions import fraction_above
from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run", "clicks_per_malicious_app"]


def clicks_per_malicious_app(result: PipelineResult) -> dict[str, int]:
    """Total clicks across every short link each malicious app posted.

    Queries the shortener click APIs exactly as the paper queried
    bit.ly; apps that never posted a short link are absent (3,805 of
    6,273 apps had bit.ly links in the paper).
    """
    world = result.world
    shorteners = world.services.shorteners.values()
    totals: dict[str, int] = {}
    for app_id in result.bundle.d_sample_malicious:
        clicks = 0
        seen_short = False
        for url in world.post_log.urls_of_app(app_id):
            for shortener in shorteners:
                if shortener.owns(url):
                    seen_short = True
                    clicks += shortener.clicks(url)
                    break
        if seen_short:
            totals[app_id] = clicks
    return totals


def run(result: PipelineResult) -> ExperimentReport:
    scale = result.world.config.scale
    report = ExperimentReport(
        "fig03",
        "Clicks on bit.ly links posted by malicious apps",
        notes=f"thresholds scaled by the simulated user base (x{scale})",
    )
    totals = clicks_per_malicious_app(result)
    values = list(totals.values())
    n_malicious = max(len(result.bundle.d_sample_malicious), 1)
    report.add_fraction(
        "malicious apps with short links",
        PAPER.malicious_apps_with_bitly / PAPER.d_sample_malicious,
        len(totals) / n_malicious,
    )
    report.add_fraction(
        "apps with > 100K clicks (scaled)",
        PAPER.clicks_over_100k_fraction,
        fraction_above(values, 100_000 * scale),
    )
    report.add_fraction(
        "apps with > 1M clicks (scaled)",
        PAPER.clicks_over_1m_fraction,
        fraction_above(values, 1_000_000 * scale),
    )
    top = max(values, default=0)
    report.add(
        "top app clicks (scaled paper)",
        f"{int(PAPER.top_app_clicks * scale):,}",
        f"{top:,}",
    )
    return report
