"""Fig 6 — top permissions requested by benign and malicious apps."""

from __future__ import annotations

from collections import Counter

from repro.analysis.report import ExperimentReport
from repro.core.pipeline import PipelineResult
from repro.platform.permissions import TOP_BENIGN_PERMISSIONS

__all__ = ["run", "permission_fractions"]


def permission_fractions(result: PipelineResult) -> dict[str, dict[str, float]]:
    """class -> permission -> fraction of apps requesting it (D-Inst)."""
    out: dict[str, dict[str, float]] = {}
    benign, malicious = result.bundle.d_inst
    for label, ids in (("benign", benign), ("malicious", malicious)):
        counts: Counter[str] = Counter()
        for app_id in ids:
            counts.update(result.bundle.records[app_id].permissions)
        n = max(len(ids), 1)
        out[label] = {perm: counts[perm] / n for perm in counts}
    return out


def run(result: PipelineResult) -> ExperimentReport:
    report = ExperimentReport(
        "fig06",
        "Top permissions required by benign and malicious apps",
        notes="the comparable shape: publish_stream dominates malicious "
        "apps; benign apps spread over the top five",
    )
    fractions = permission_fractions(result)
    paper_benign = {  # approximate bar heights read off Fig 6
        "publish_stream": 0.55,
        "offline_access": 0.40,
        "user_birthday": 0.27,
        "email": 0.57,
        "publish_actions": 0.12,
    }
    paper_malicious = {
        "publish_stream": 0.98,
        "offline_access": 0.05,
        "user_birthday": 0.03,
        "email": 0.03,
        "publish_actions": 0.01,
    }
    for perm in TOP_BENIGN_PERMISSIONS:
        report.add_fraction(
            f"benign requesting {perm}",
            paper_benign[perm],
            fractions["benign"].get(perm, 0.0),
        )
    for perm in TOP_BENIGN_PERMISSIONS:
        report.add_fraction(
            f"malicious requesting {perm}",
            paper_malicious[perm],
            fractions["malicious"].get(perm, 0.0),
        )
    return report
