"""Table 8 — validating the apps FRAppE flags in the unlabelled set."""

from __future__ import annotations

from repro.analysis.report import ExperimentReport
from repro.config import PAPER
from repro.core.pipeline import PipelineResult

__all__ = ["run"]

_PAPER_ROWS = {
    "deleted_from_graph": (6_591, 0.81),
    "app_name_similarity": (6_055, 0.74),
    "posted_link_similarity": (1_664, 0.20),
    "typosquatting": (5, 0.001),
    "manual_verification": (147, 0.018),
}


def run(result: PipelineResult) -> ExperimentReport:
    if result.validation is None:
        raise ValueError("pipeline ran without the unlabelled sweep")
    validation = result.validation
    report = ExperimentReport(
        "table8",
        "Validation of apps flagged by FRAppE (Sec 5.3)",
        notes="per-technique fractions of the flagged set; techniques "
        "overlap, so fractions need not sum to 1",
    )
    report.add("apps flagged", PAPER.flagged_apps, validation.n_flagged)
    n = max(validation.n_flagged, 1)
    for technique, count, _cumulative in validation.table8_rows():
        paper_count, paper_fraction = _PAPER_ROWS[technique]
        report.add(
            technique,
            f"{paper_count} ({paper_fraction:.1%})",
            f"{count} ({count / n:.1%})",
        )
    report.add_fraction(
        "total validated", PAPER.validated_fraction, validation.validated_fraction
    )
    # Scoring against the simulation's hidden labels (unavailable to the
    # paper, available to us): precision of the flags themselves.
    truth = result.world.truth_malicious_ids()
    true_hits = len(result.flagged_new & truth)
    report.add(
        "flag precision vs hidden truth",
        "n/a",
        f"{true_hits / n:.1%}",
    )
    return report
