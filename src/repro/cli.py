"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``     build a world and print its vital statistics
``experiments``  reproduce every paper table/figure (paper vs measured)
``evaluate``     run the watchdog over app IDs (or a random sample)
``crawl``        crawl D-Sample under injected faults, report resilience
``serve``        drive the online verdict service with an open-loop load
``drift``        sweep campaign drift rates through the model lifecycle:
                 detection accuracy, static-vs-online accuracy, and
                 champion–challenger promotions/rollbacks per rate
``monitor``      run the continuous monitoring daemon: epoch-driven
                 recrawls through the tiered scheduler, forensic event
                 detection, and a durable, resumable history store
``forensics``    run the Sec 6 AppNet investigation
``bench``        perf-regression harness: time every fast path against
                 its kept-alive naive reference, write ``BENCH_<n>.json``,
                 and (with ``--compare``) fail on a >20% ratio regression
``export``       write the labelled D-Sample dataset to JSON
``obs``          replay an exported trace: causal tree or per-stage summary

``--trace FILE`` / ``--metrics FILE`` / ``--profile`` turn observation
on for any command: the run is instrumented through ``repro.obs`` (its
outputs stay byte-identical — the tracer only *watches*), the canonical
trace goes to FILE, metrics go to FILE (JSONL) plus ``FILE`` with a
``.prom`` suffix (Prometheus-style text), and ``--profile`` prints the
per-stage CPU/simulated-cost table to stderr.

``--fault-rate`` / ``--retry-budget`` apply to every command (all
crawling runs through the configured transport); ``crawl`` also accepts
them after the subcommand for convenience.

``--checkpoint DIR`` makes every crawl crash-safe: completed records go
to a write-ahead journal in DIR, and re-running the same configuration
with ``--resume`` skips the durable apps and continues — kill the
process anywhere and the resumed study is byte-identical to an
uninterrupted one.  Without ``--resume`` an existing checkpoint is
refused (not silently overwritten or mixed).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ScaleConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FRAppE (CoNEXT 2012) reproduction toolkit",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="simulation scale relative to the paper (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=2012, help="master RNG seed"
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="per-request probability of an injected transient crawl "
             "fault (default 0: fault layer disabled)",
    )
    parser.add_argument(
        "--retry-budget", type=int, default=4,
        help="crawl attempts per request before giving up (default 4)",
    )
    parser.add_argument(
        "--blackouts", type=int, default=0,
        help="seeded sustained platform outages (multi-call blackout "
             "windows) injected over the crawl horizon (default 0)",
    )
    parser.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal crawl progress to DIR (write-ahead log + atomic "
             "snapshots) so a killed run can be resumed",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=64, metavar="N",
        help="journal appends between snapshot compactions (default 64)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="continue the crawl from an existing --checkpoint DIR",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="crawl workers for the batch-parallel scheduler "
             "(default 1: sequential; any value is byte-identical)",
    )
    parser.add_argument(
        "--processes", type=int, default=1,
        help="OS processes for the fault-tolerant sharded crawl "
             "(default 1: no supervisor; any value is byte-identical, "
             "even when workers are killed mid-shard)",
    )
    parser.add_argument(
        "--store", metavar="FILE", default=None,
        help="sink this run's outputs (and, when instrumented, its "
             "trace/metrics) into the fleet analytics store at FILE "
             "(sqlite; created on first use, ingestion is idempotent)",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="instrument the run and export the canonical trace (JSONL) "
             "to FILE; command outputs stay byte-identical",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="instrument the run and export metrics to FILE (JSONL) "
             "plus the same path with a .prom suffix (Prometheus text)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print the per-stage CPU/simulated-cost table to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("simulate", help="build a world and summarise it")
    sub.add_parser("experiments", help="reproduce every table/figure")
    sub.add_parser("forensics", help="AppNet investigation (Sec 6)")

    crawl = sub.add_parser(
        "crawl", help="crawl D-Sample under faults, report resilience"
    )
    # SUPPRESS keeps the subcommand's flags from clobbering values
    # already parsed from the global position when omitted here.
    crawl.add_argument(
        "--fault-rate", type=float, default=argparse.SUPPRESS,
        help="override the global --fault-rate",
    )
    crawl.add_argument(
        "--retry-budget", type=int, default=argparse.SUPPRESS,
        help="override the global --retry-budget",
    )
    crawl.add_argument(
        "--checkpoint", metavar="DIR", default=argparse.SUPPRESS,
        help="override the global --checkpoint",
    )
    crawl.add_argument(
        "--checkpoint-every", type=int, default=argparse.SUPPRESS,
        help="override the global --checkpoint-every",
    )
    crawl.add_argument(
        "--resume", action="store_true", default=argparse.SUPPRESS,
        help="override the global --resume",
    )
    crawl.add_argument(
        "--workers", type=int, default=argparse.SUPPRESS,
        help="override the global --workers",
    )
    crawl.add_argument(
        "--processes", type=int, default=argparse.SUPPRESS,
        help="override the global --processes",
    )

    evaluate = sub.add_parser("evaluate", help="watchdog over app IDs")
    evaluate.add_argument(
        "app_ids", nargs="*", help="app IDs (random sample when omitted)"
    )
    evaluate.add_argument(
        "--sample", type=int, default=8,
        help="random apps to assess when no IDs are given",
    )

    serve = sub.add_parser(
        "serve", help="drive the online verdict service with open-loop load"
    )
    serve.add_argument(
        "--requests", type=int, default=200,
        help="requests to offer (default 200)",
    )
    serve.add_argument(
        "--overload", type=float, default=1.0,
        help="offered load as a multiple of the estimated cold-crawl "
             "capacity (default 1.0; >=2 forces shedding)",
    )
    serve.add_argument(
        "--fault-rate", type=float, default=argparse.SUPPRESS,
        help="override the global --fault-rate",
    )
    serve.add_argument(
        "--interactive-fraction", type=float, default=0.7,
        help="fraction of requests at interactive priority (default 0.7)",
    )
    serve.add_argument(
        "--pool", type=int, default=32,
        help="apps drawn with repetition from a pool of this size "
             "(smaller pools exercise the verdict cache; default 32)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="admission queue bound (default 16)",
    )
    serve.add_argument(
        "--batch-max", type=int, default=1,
        help="adaptive continuous-batching cap: a tick drains up to "
             "this many requests, batch growing with queue depth and "
             "shrinking when deadline headroom is tight (default 1 = "
             "the unbatched historical path)",
    )
    serve.add_argument(
        "--snapshot-out", metavar="FILE", default=None,
        help="write the run's JSON-round-trippable ServiceReport "
             "snapshot to FILE (ingestable via 'repro ingest', "
             "diffable across sessions)",
    )
    serve.add_argument(
        "--canary", choices=("good", "bad"), default=None,
        help="attach a champion–challenger rollout and put a canary on "
             "probation: 'good' agrees with the champion and is "
             "promoted; 'bad' inverts every verdict and must be "
             "rolled back by the health gate",
    )

    drift = sub.add_parser(
        "drift",
        help="adversarial-drift sweep: detection accuracy vs drift rate "
             "plus the champion–challenger lifecycle response",
    )
    drift.add_argument(
        "--epochs", type=int, default=6,
        help="simulated epochs per trajectory (default 6)",
    )
    drift.add_argument(
        "--apps-per-epoch", type=int, default=160,
        help="cohort size per epoch (default 160)",
    )
    drift.add_argument(
        "--drift-rates", default="0.0,0.25,0.5,1.0", metavar="R,R,...",
        help="comma-separated per-epoch intensity increments "
             "(default 0.0,0.25,0.5,1.0)",
    )
    drift.add_argument(
        "--inject-bad-canary", type=int, default=None, metavar="EPOCH",
        help="at EPOCH, skip the promotion gate and push a broken model "
             "straight into canary probation (rollback chaos test)",
    )
    drift.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the drift-metrics JSONL (epoch, window, and summary "
             "rows) to FILE",
    )

    bench = sub.add_parser(
        "bench", help="time fast vs reference paths; gate on speedup ratios"
    )
    bench.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSON report (e.g. BENCH_4.json)",
    )
    bench.add_argument(
        "--full", action="store_true",
        help="acceptance-scale workloads (10K-name clustering; the "
             "naive reference alone takes minutes)",
    )
    bench.add_argument(
        "--compare", metavar="BASELINE", default=None,
        help="fail (exit 1) when a gated speedup ratio regressed vs "
             "this baseline JSON",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional drop per gated ratio (default 0.2)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="continuous monitoring daemon: epoch-driven recrawls, "
             "forensic event detection, durable per-app history",
    )
    monitor.add_argument(
        "--epochs", type=int, default=3,
        help="monitoring epochs to run (default 3)",
    )
    monitor.add_argument(
        "--stride-days", type=int, default=7,
        help="simulated days between epochs (default 7)",
    )
    monitor.add_argument(
        "--forensics", action="store_true",
        help="diff each observation against history and record forensic "
             "events (deletion, rename, permission change, post-rate "
             "collapse)",
    )
    monitor.add_argument(
        "--lifecycle", action="store_true",
        help="apply the scripted app-lifecycle events (the simulated "
             "ground truth the forensic detectors should find)",
    )
    monitor.add_argument(
        "--policy", choices=("tiered", "active-learning"), default="tiered",
        help="recrawl policy: strict tier ladder, or the ladder plus an "
             "exploration budget of most-uncertain apps (default tiered)",
    )
    monitor.add_argument(
        "--supervised", action="store_true",
        help="run each epoch in a forked, heartbeat-watched worker with "
             "restart-and-fallback supervision",
    )
    monitor.add_argument(
        "--fault-rate", type=float, default=argparse.SUPPRESS,
        help="override the global --fault-rate",
    )
    monitor.add_argument(
        "--blackouts", type=int, default=argparse.SUPPRESS,
        help="override the global --blackouts",
    )
    monitor.add_argument(
        "--checkpoint", metavar="DIR", default=argparse.SUPPRESS,
        help="override the global --checkpoint (the history store DIR)",
    )
    monitor.add_argument(
        "--resume", action="store_true", default=argparse.SUPPRESS,
        help="override the global --resume",
    )

    export = sub.add_parser("export", help="export D-Sample to JSON")
    export.add_argument("output", help="output path (.json)")

    ingest = sub.add_parser(
        "ingest",
        help="ingest exported artifacts into the analytics store "
             "(--store; idempotent, torn/corrupt inputs tolerated)",
    )
    ingest.add_argument(
        "--trace", action="append", default=[], metavar="FILE",
        help="trace JSONL export(s) written by --trace",
    )
    ingest.add_argument(
        "--metrics", action="append", default=[], metavar="FILE",
        help="metrics JSONL export(s) written by --metrics",
    )
    ingest.add_argument(
        "--serve-snapshot", action="append", default=[], metavar="FILE",
        help="ServiceReport snapshot JSON written by serve --snapshot-out",
    )
    ingest.add_argument(
        "--monitor-history", action="append", default=[], metavar="DIR",
        help="monitor history store directory (the monitor.jsonl WAL)",
    )
    ingest.add_argument(
        "--incidents", action="append", default=[], metavar="FILE",
        help="rollout-incident JSONL file(s)",
    )

    report = sub.add_parser(
        "report",
        help="render the paper tables + operational views from the "
             "analytics store (--store) instead of in-process objects",
    )
    report.add_argument(
        "--paper-only", action="store_true",
        help="emit only the paper tables, byte-identical to "
             "'repro experiments' for the same stored run",
    )
    report.add_argument(
        "--window", type=float, default=60.0, metavar="SECONDS",
        help="simulated-clock window for temporal views (default 60)",
    )
    report.add_argument(
        "--slo-target", type=float, default=0.99,
        help="availability SLO target for the burn-down (default 0.99)",
    )

    obs = sub.add_parser(
        "obs", help="replay an exported trace (causal tree or summary)"
    )
    obs.add_argument("trace_file", help="trace JSONL written by --trace")
    obs.add_argument(
        "--tree", action="store_true",
        help="render the causal span tree instead of the summary table",
    )
    obs.add_argument(
        "--category", default=None,
        help="restrict the tree to one category (crawl/serve/train/...)",
    )
    obs.add_argument(
        "--key", default=None,
        help="restrict the tree to root spans whose key contains this",
    )
    obs.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most N root spans in the tree",
    )
    return parser


def _config(args: argparse.Namespace) -> ScaleConfig:
    return ScaleConfig(
        scale=args.scale,
        master_seed=args.seed,
        fault_rate=args.fault_rate,
        retry_budget=args.retry_budget,
        blackouts=args.blackouts,
        checkpoint_dir=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        crawl_workers=args.workers,
        crawl_processes=args.processes,
    )


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.ecosystem.simulation import run_simulation

    world = run_simulation(_config(args))
    registry = world.registry
    print(f"apps:        {len(registry)} "
          f"({len(registry.malicious())} truly malicious)")
    print(f"posts:       {len(world.post_log)}")
    print(f"users:       {world.users.n_users}")
    print(f"campaigns:   {len(world.campaigns)} "
          f"({sum(c.plan.colluding for c in world.campaigns)} AppNets)")
    print(f"sites:       {len(world.services.redirector)} indirection websites")
    print(f"short links: "
          f"{sum(len(s) for s in world.services.shorteners.values())}")
    return 0


def _open_store(args: argparse.Namespace, required: bool = False):
    """The analytics store named by ``--store`` (None when absent)."""
    path = getattr(args, "store", None)
    if not path:
        if required:
            raise SystemExit(
                "this command needs the analytics store: pass --store FILE "
                "before the subcommand"
            )
        return None
    from repro.store import AnalyticsStore

    return AnalyticsStore(path)


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    reports = run_all(args.scale, seed=args.seed)
    for report in reports:
        print(report.render())
        print()
    store = _open_store(args)
    if store is not None:
        from repro.store import ingest_experiments

        with store:
            result = ingest_experiments(
                store, reports,
                label=f"experiments scale={args.scale} seed={args.seed}",
            )
        print(f"store:      {args.store} ({result.describe()})",
              file=sys.stderr)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.pipeline import FrappePipeline
    from repro.core.watchdog import AppWatchdog
    from repro.crawler.crawler import AppCrawler

    result = FrappePipeline(_config(args)).run(sweep_unlabelled=False)
    watchdog = AppWatchdog(
        result.classifier, result.extractor, AppCrawler(result.world)
    )
    app_ids = list(args.app_ids)
    if not app_ids:
        rng = np.random.default_rng(args.seed)
        everything = sorted(result.bundle.d_total)
        chosen = rng.choice(len(everything), size=args.sample, replace=False)
        app_ids = [everything[i] for i in chosen]
    for assessment in watchdog.bulk_assess(app_ids, day=400):
        print(assessment.summary())
    return 0


def _cmd_crawl(args: argparse.Namespace) -> int:
    """Crawl D-Sample through the configured transport; print outcomes.

    With ``--checkpoint DIR`` the crawl is crash-safe (kill it anywhere,
    re-run with ``--resume``, get byte-identical results).  Replay
    progress goes to stderr so stdout stays comparable across resumed
    and uninterrupted runs.
    """
    from repro.crawler.checkpoint import CrawlJournal
    from repro.crawler.crawler import make_crawler
    from repro.crawler.datasets import DatasetBuilder
    from repro.ecosystem.simulation import run_simulation
    from repro.mypagekeeper.classifier import UrlClassifier
    from repro.mypagekeeper.monitor import MyPageKeeper

    config = _config(args)
    world = run_simulation(config)
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    bundle = DatasetBuilder(world, report).build(crawl=False)
    crawler = make_crawler(world)
    journal = None
    if config.checkpoint_dir:
        journal = CrawlJournal(
            config.checkpoint_dir,
            snapshot_every=config.checkpoint_every,
            resume=config.resume,
        )
        durable = sum(1 for a in bundle.d_sample if a in journal)
        print(
            f"checkpoint: {config.checkpoint_dir} "
            f"({durable}/{len(bundle.d_sample)} apps already durable)",
            file=sys.stderr,
        )
    try:
        records = crawler.crawl_many(
            bundle.d_sample,
            journal=journal,
            workers=config.crawl_workers,
            processes=config.crawl_processes,
        )
    finally:
        if journal is not None:
            journal.close()

    stats = crawler.stats
    print(f"crawled {len(records)} apps at fault_rate={config.fault_rate} "
          f"(retry budget {config.retry_budget})")
    print(f"requests:   {stats.requests} "
          f"({stats.fault_count()} faults injected)")
    if stats.injected:
        mix = ", ".join(
            f"{kind}={count}" for kind, count in sorted(stats.injected.items())
        )
        print(f"faults:     {mix}")
    if stats.truncated_feeds:
        print(f"truncated:  {stats.truncated_feeds} feed pages")
    if stats.vanished:
        print(f"vanished:   {len(stats.vanished)} apps deleted mid-crawl")
    for collection, tally in crawler.outcome_tallies(records).items():
        counts = ", ".join(f"{s}={n}" for s, n in sorted(tally.items()))
        print(f"{collection + ':':<12}{counts}")
    recovery = crawler.recovery_rate(records)
    if recovery is not None:
        print(f"recovery:   {recovery:.1%} of transiently-faulted "
              f"collections saved by retries")
    print(f"crawl time: {stats.elapsed_s / 3600:.1f} simulated hours "
          f"({stats.service_s / 3600:.1f}h service, "
          f"{stats.wait_s / 3600:.1f}h waiting)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Train FRAppE, stand up the verdict service, offer open-loop load.

    ``--overload`` scales the arrival rate relative to the analytically
    estimated cold-crawl capacity; at >= 2 the admission queue must
    shed, and the report shows the priority policy doing it (bulk
    before interactive), the cache absorbing repeats, and every request
    accounted for by a typed outcome.
    """
    from repro.core.pipeline import FrappePipeline
    from repro.config import ServiceConfig
    from repro.service import (
        LoadProfile,
        estimate_capacity_rps,
        generate_requests,
        make_service,
    )

    result = FrappePipeline(_config(args)).run(sweep_unlabelled=False)
    service = make_service(
        result,
        ServiceConfig(
            max_queue_depth=args.queue_depth, batch_max=args.batch_max
        ),
    )
    if args.canary:
        service.rollout = _build_canary_rollout(service, args.canary)
    capacity = estimate_capacity_rps(result.world.schedule)
    profile = LoadProfile(
        n_requests=args.requests,
        rate_rps=capacity * args.overload,
        interactive_fraction=args.interactive_fraction,
        pool_size=args.pool,
        seed=args.seed,
    )
    requests = generate_requests(sorted(result.bundle.d_sample), profile)
    report = service.serve(requests)
    print(f"offered:     {args.requests} requests at "
          f"{profile.rate_rps:.3f} req/s "
          f"({args.overload:.1f}x estimated capacity "
          f"{capacity:.3f} req/s), fault_rate={result.world.config.fault_rate}")
    print(report.summary())
    incidents = (
        list(service.rollout.incidents) if service.rollout is not None else []
    )
    for incident in incidents:
        print(f"rollback:    canary v{incident.canary_version} -> "
              f"champion v{incident.restored_version} restored "
              f"({incident.reason})")
    if args.snapshot_out or getattr(args, "store", None):
        snapshot = report.snapshot()
        snapshot["incidents"] = [inc.jsonable() for inc in incidents]
        if args.snapshot_out:
            import json

            from repro.crawler.checkpoint import atomic_write

            atomic_write(
                args.snapshot_out,
                json.dumps(snapshot, sort_keys=True, indent=2) + "\n",
            )
            print(f"snapshot:    {args.snapshot_out}", file=sys.stderr)
        store = _open_store(args)
        if store is not None:
            from repro.store import ingest_service_report

            with store:
                result = ingest_service_report(
                    store, snapshot,
                    label=f"serve seed={args.seed} "
                          f"overload={args.overload}",
                )
            print(f"store:       {args.store} ({result.describe()})",
                  file=sys.stderr)
    return 0


class _InvertedCascade:
    """A deliberately broken model: every verdict flipped."""

    def __init__(self, cascade) -> None:
        self._cascade = cascade

    def score_record(self, record):
        prediction, margin, tier = self._cascade.score_record(record)
        if tier in ("frappe", "lite"):
            return 1 - prediction, -margin, tier
        return prediction, margin, tier


def _build_canary_rollout(service, kind: str):
    """A rollout with the service's own cascade as champion and a
    probationary canary: the cascade again ('good') or its inversion
    ('bad', which the health gate must catch and roll back)."""
    from repro.service import ModelRegistry, RolloutConfig, RolloutController

    registry = ModelRegistry()
    champion = registry.register(service.cascade, note="serving champion")
    payload = (
        service.cascade if kind == "good"
        else _InvertedCascade(service.cascade)
    )
    challenger = registry.register(payload, note=f"{kind} canary")
    controller = RolloutController(
        registry,
        champion.version,
        config=RolloutConfig(
            canary_fraction=0.4, canary_requests=20, min_canary_sample=6
        ),
    )
    controller.start_canary(challenger.version, t=0.0)
    return controller


def _cmd_drift(args: argparse.Namespace) -> int:
    """Drift sweep: detection accuracy vs drift rate, with lifecycle."""
    from repro.core.lifecycle import (
        LifecycleConfig,
        run_drift_sweep,
        write_drift_metrics,
    )
    from repro.ecosystem.drift import DriftPlan

    rates = [float(r) for r in args.drift_rates.split(",") if r.strip()]
    plan = DriftPlan(
        seed=args.seed,
        n_epochs=args.epochs,
        apps_per_epoch=args.apps_per_epoch,
    )
    config = LifecycleConfig(inject_bad_canary_epoch=args.inject_bad_canary)
    sweep = run_drift_sweep(rates, plan=plan, config=config)
    print(f"epochs:      {plan.n_epochs} x {plan.apps_per_epoch} apps, "
          f"seed={plan.seed}")
    print(sweep.table())
    for row in sweep.rows:
        final = row.result.outcomes[-1]
        print(f"rate {row.drift_rate:.2f}: final epoch "
              f"static={final.static_accuracy:.3f} "
              f"online={final.online_accuracy:.3f} "
              f"champion=v{final.champion_version}")
        for incident in row.result.incidents:
            print(f"  rollback: canary v{incident.canary_version} -> "
                  f"v{incident.restored_version} restored "
                  f"({incident.reason})")
    if args.out:
        n = write_drift_metrics(args.out, sweep)
        print(f"metrics:     {args.out} ({n} rows)")
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from repro.collusion import CollusionAnalyzer
    from repro.ecosystem.simulation import run_simulation

    world = run_simulation(_config(args))
    analyzer = CollusionAnalyzer(world)
    collusion = analyzer.discover()
    stats = analyzer.stats(collusion)
    print(f"colluding apps: {stats.n_colluding}")
    print(f"roles: {stats.n_promoters} promoters / "
          f"{stats.n_promotees} promotees / {stats.n_dual} dual")
    print(f"components: {stats.n_components} "
          f"(top: {stats.top_component_sizes})")
    print(f"indirection sites: {collusion.indirection.n_sites}")
    print(f"hosting: {analyzer.hosting_providers(collusion)}")
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Run the continuous monitoring daemon over D-Sample.

    With ``--checkpoint DIR`` every observation and epoch plan is a
    checksummed, fsynced journal line: kill the daemon anywhere and a
    ``--resume`` run continues to a byte-identical history store.
    ``--blackouts`` adds sustained platform outages the tier scheduler
    must pause through instead of burning retry budgets.
    """
    from repro.crawler.crawler import make_crawler
    from repro.crawler.datasets import DatasetBuilder
    from repro.crawler.monitor import AppMonitor, MonitorConfig, MonitorJournal
    from repro.crawler.recrawl import ActiveLearningPolicy, RecrawlScheduler
    from repro.ecosystem.simulation import run_simulation
    from repro.mypagekeeper.classifier import UrlClassifier
    from repro.mypagekeeper.monitor import MyPageKeeper

    config = _config(args)
    world = run_simulation(config)
    report = MyPageKeeper(
        UrlClassifier(world.services.blacklist), world.post_log
    ).scan()
    bundle = DatasetBuilder(world, report).build(crawl=False)
    crawler = make_crawler(world)
    journal = None
    if config.checkpoint_dir:
        journal = MonitorJournal(config.checkpoint_dir, resume=config.resume)
        print(
            f"history:    {config.checkpoint_dir} "
            f"({len(journal.entries)} durable entries"
            + (f", {journal.quarantined} quarantined" if journal.quarantined
               else "") + ")",
            file=sys.stderr,
        )
    if args.policy == "active-learning":
        scheduler = RecrawlScheduler(policy=ActiveLearningPolicy())
    else:
        scheduler = RecrawlScheduler()
    monitor = AppMonitor(
        world,
        crawler,
        bundle.d_sample,
        config=MonitorConfig(
            epochs=args.epochs,
            stride_days=args.stride_days,
            forensics=args.forensics,
            lifecycle=args.lifecycle,
        ),
        scheduler=scheduler,
        journal=journal,
    )
    try:
        result = monitor.run(supervised=args.supervised)
    finally:
        if journal is not None:
            journal.close()
    stats = crawler.stats
    print(f"monitored {len(bundle.d_sample)} apps for "
          f"{result.epochs_run} epochs (stride {args.stride_days}d, "
          f"policy {args.policy}, fault_rate={config.fault_rate}, "
          f"blackouts={config.blackouts})")
    print(f"history:    {result.observations} durable observations"
          + (f", {result.quarantined} quarantined" if result.quarantined
             else ""))
    census = ", ".join(
        f"{tier}={n}" for tier, n in result.tier_census.items() if n
    )
    print(f"tiers:      {census or 'none'}")
    if result.pauses:
        print(f"backpressure: {result.pauses} blackout pauses "
              f"(tiers re-planned instead of retrying into the outage)")
    if result.forensic_events:
        kinds: dict[str, int] = {}
        for event in result.forensic_events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        mix = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        print(f"forensics:  {len(result.forensic_events)} events ({mix})")
        for event in result.forensic_events[:8]:
            print(f"  e{event.epoch} {event.app_id}: {event.kind} "
                  f"({event.detail})")
    print(f"crawl time: {stats.elapsed_s / 3600:.1f} simulated hours "
          f"({stats.service_s / 3600:.1f}h service, "
          f"{stats.wait_s / 3600:.1f}h waiting)")
    store = _open_store(args)
    if store is not None:
        if journal is None:
            print(
                "store:      --store needs the durable history: pass "
                "--checkpoint DIR so there is a monitor.jsonl to ingest",
                file=sys.stderr,
            )
        else:
            from repro.store import ingest_monitor_history

            with store:
                ingested = ingest_monitor_history(
                    store, config.checkpoint_dir,
                    label=f"monitor seed={config.master_seed} "
                          f"epochs={args.epochs}",
                )
            print(f"store:      {args.store} ({ingested.describe()})",
                  file=sys.stderr)
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    """Ingest exported artifacts into the analytics store (idempotent)."""
    import json

    from repro.store import (
        ingest_incidents,
        ingest_metrics,
        ingest_monitor_history,
        ingest_service_report,
        ingest_trace,
    )

    store = _open_store(args, required=True)
    results = []
    with store:
        for path in args.trace:
            results.append(ingest_trace(store, path))
        for path in args.metrics:
            results.append(ingest_metrics(store, path))
        for path in args.serve_snapshot:
            with open(path, encoding="utf-8") as handle:
                snapshot = json.load(handle)
            results.append(
                ingest_service_report(store, snapshot, label=str(path))
            )
        for directory in args.monitor_history:
            results.append(ingest_monitor_history(store, directory))
        for path in args.incidents:
            results.append(ingest_incidents(store, path))
    if not results:
        print("nothing to ingest: pass --trace/--metrics/--serve-snapshot/"
              "--monitor-history/--incidents", file=sys.stderr)
        return 1
    for result in results:
        print(result.describe())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the paper tables + operational views from stored data."""
    from repro.store import render_report

    store = _open_store(args, required=True)
    with store:
        output = render_report(
            store,
            paper_only=args.paper_only,
            window_s=args.window,
            slo_target=args.slo_target,
        )
    sys.stdout.write(output)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf-regression harness (see :mod:`repro.bench`)."""
    from repro.bench import main as bench_main

    return bench_main(args)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.pipeline import FrappePipeline
    from repro.io import export_dataset

    result = FrappePipeline(_config(args)).run(sweep_unlabelled=False)
    path = export_dataset(result, args.output)
    print(f"wrote {path} "
          f"({len(result.bundle.d_sample)} labelled records)")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """Replay a ``--trace`` file: causal tree or per-stage summary."""
    from repro.obs import load_trace, render_summary, render_tree

    roots = load_trace(args.trace_file)
    if args.tree:
        print(render_tree(
            roots, category=args.category, key=args.key, limit=args.limit
        ))
    else:
        print(render_summary(roots))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "experiments": _cmd_experiments,
    "evaluate": _cmd_evaluate,
    "crawl": _cmd_crawl,
    "serve": _cmd_serve,
    "drift": _cmd_drift,
    "monitor": _cmd_monitor,
    "forensics": _cmd_forensics,
    "bench": _cmd_bench,
    "export": _cmd_export,
    "obs": _cmd_obs,
    "ingest": _cmd_ingest,
    "report": _cmd_report,
}

#: commands that only read or move artifacts — instrumenting them
#: would sink their own (empty) observation into the store as noise
_UNOBSERVED = ("obs", "ingest", "report", "bench")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    wants_obs = bool(
        getattr(args, "trace", None)
        or getattr(args, "metrics", None)
        or getattr(args, "profile", False)
        or getattr(args, "store", None)
    )
    # `ingest --trace FILE` names an input artifact, not instrumentation.
    if not wants_obs or args.command in _UNOBSERVED:
        return _COMMANDS[args.command](args)

    from pathlib import Path

    from repro.obs import observation
    from repro.store import StoreSink

    observer = StoreSink()
    with observation(observer):
        code = _COMMANDS[args.command](args)
    if args.trace:
        Path(args.trace).parent.mkdir(parents=True, exist_ok=True)
        path = observer.tracer.export(args.trace)
        print(f"trace:      {path}", file=sys.stderr)
    if args.metrics:
        jsonl = Path(args.metrics)
        jsonl.parent.mkdir(parents=True, exist_ok=True)
        prom = jsonl.with_suffix(".prom")
        observer.metrics.export(jsonl_path=jsonl, prometheus_path=prom)
        print(f"metrics:    {jsonl} + {prom}", file=sys.stderr)
    if args.profile:
        print(observer.profiler.render(), file=sys.stderr)
    if args.store:
        from repro.store import AnalyticsStore

        with AnalyticsStore(args.store) as store:
            for result in observer.flush(
                store, label=f"{args.command} seed={args.seed}"
            ):
                print(f"store:      {args.store} ({result.describe()})",
                      file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
