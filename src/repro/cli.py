"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``     build a world and print its vital statistics
``experiments``  reproduce every paper table/figure (paper vs measured)
``evaluate``     run the watchdog over app IDs (or a random sample)
``forensics``    run the Sec 6 AppNet investigation
``export``       write the labelled D-Sample dataset to JSON
"""

from __future__ import annotations

import argparse
import sys

from repro.config import ScaleConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FRAppE (CoNEXT 2012) reproduction toolkit",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="simulation scale relative to the paper (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=2012, help="master RNG seed"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("simulate", help="build a world and summarise it")
    sub.add_parser("experiments", help="reproduce every table/figure")
    sub.add_parser("forensics", help="AppNet investigation (Sec 6)")

    evaluate = sub.add_parser("evaluate", help="watchdog over app IDs")
    evaluate.add_argument(
        "app_ids", nargs="*", help="app IDs (random sample when omitted)"
    )
    evaluate.add_argument(
        "--sample", type=int, default=8,
        help="random apps to assess when no IDs are given",
    )

    export = sub.add_parser("export", help="export D-Sample to JSON")
    export.add_argument("output", help="output path (.json)")
    return parser


def _config(args: argparse.Namespace) -> ScaleConfig:
    return ScaleConfig(scale=args.scale, master_seed=args.seed)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.ecosystem.simulation import run_simulation

    world = run_simulation(_config(args))
    registry = world.registry
    print(f"apps:        {len(registry)} "
          f"({len(registry.malicious())} truly malicious)")
    print(f"posts:       {len(world.post_log)}")
    print(f"users:       {world.users.n_users}")
    print(f"campaigns:   {len(world.campaigns)} "
          f"({sum(c.plan.colluding for c in world.campaigns)} AppNets)")
    print(f"sites:       {len(world.services.redirector)} indirection websites")
    print(f"short links: "
          f"{sum(len(s) for s in world.services.shorteners.values())}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    for report in run_all(args.scale, seed=args.seed):
        print(report.render())
        print()
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.core.pipeline import FrappePipeline
    from repro.core.watchdog import AppWatchdog
    from repro.crawler.crawler import AppCrawler

    result = FrappePipeline(_config(args)).run(sweep_unlabelled=False)
    watchdog = AppWatchdog(
        result.classifier, result.extractor, AppCrawler(result.world)
    )
    app_ids = list(args.app_ids)
    if not app_ids:
        rng = np.random.default_rng(args.seed)
        everything = sorted(result.bundle.d_total)
        chosen = rng.choice(len(everything), size=args.sample, replace=False)
        app_ids = [everything[i] for i in chosen]
    for assessment in watchdog.bulk_assess(app_ids, day=400):
        print(assessment.summary())
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from repro.collusion import CollusionAnalyzer
    from repro.ecosystem.simulation import run_simulation

    world = run_simulation(_config(args))
    analyzer = CollusionAnalyzer(world)
    collusion = analyzer.discover()
    stats = analyzer.stats(collusion)
    print(f"colluding apps: {stats.n_colluding}")
    print(f"roles: {stats.n_promoters} promoters / "
          f"{stats.n_promotees} promotees / {stats.n_dual} dual")
    print(f"components: {stats.n_components} "
          f"(top: {stats.top_component_sizes})")
    print(f"indirection sites: {collusion.indirection.n_sites}")
    print(f"hosting: {analyzer.hosting_providers(collusion)}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.core.pipeline import FrappePipeline
    from repro.io import export_dataset

    result = FrappePipeline(_config(args)).run(sweep_unlabelled=False)
    path = export_dataset(result, args.output)
    print(f"wrote {path} "
          f"({len(result.bundle.d_sample)} labelled records)")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "experiments": _cmd_experiments,
    "evaluate": _cmd_evaluate,
    "forensics": _cmd_forensics,
    "export": _cmd_export,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
