"""Configuration: the paper's measured constants and the simulation scale.

Two kinds of values live here.

``PAPER``
    Every number the paper reports (dataset sizes, feature-distribution
    percentiles, classifier operating points, AppNet statistics).  These
    are the *reproduction targets*: benchmarks print them next to the
    values measured on the simulated platform.

``ScaleConfig``
    The single knob that shrinks the simulation.  ``scale=1.0`` is
    paper-scale (111,167 apps / 2.2M users / 91M posts) and is not meant
    to run on a laptop; tests use ``scale≈0.01`` and benchmarks
    ``scale≈0.05``.  All proportions are scale-invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PaperStats", "PAPER", "ScaleConfig", "ServiceConfig"]


@dataclass(frozen=True)
class PaperStats:
    """Constants reported by the paper (Rahman et al., CoNEXT 2012).

    Field names cite the table/figure/section each number comes from so a
    reader can check them against the text.
    """

    # --- Sec 1 / Sec 2.3 / Table 1: corpus and dataset sizes -----------
    total_apps: int = 111_167  # D-Total
    total_posts: int = 91_000_000  # posts with an application field
    total_users: int = 2_200_000  # walls monitored by MyPageKeeper
    monitored_posts: int = 144_000_000  # all posts MyPageKeeper saw
    posts_without_app_fraction: float = 0.37  # Sec 2.2
    malicious_posts_without_app_fraction: float = 0.27  # Sec 2.2
    malicious_apps_before_whitelist: int = 6_350  # Sec 2.3
    d_sample_malicious: int = 6_273
    d_sample_benign: int = 6_273
    d_sample_benign_vetted: int = 5_750  # Social-Bakers-vetted benign apps
    d_summary_benign: int = 6_067
    d_summary_malicious: int = 2_528
    d_inst_benign: int = 2_257
    d_inst_malicious: int = 491
    d_profilefeed_benign: int = 6_063
    d_profilefeed_malicious: int = 3_227
    d_complete_benign: int = 2_255
    d_complete_malicious: int = 487

    # --- Sec 3: prevalence ---------------------------------------------
    malicious_app_fraction: float = 0.13  # "at least 13% of apps"
    malicious_posts_by_apps_fraction: float = 0.53
    # Fig 3 — bit.ly clicks accumulated per malicious app
    clicks_over_100k_fraction: float = 0.60
    clicks_over_1m_fraction: float = 0.20
    top_app_clicks: int = 1_742_359  # 'What is the sexiest thing about you?'
    malicious_apps_with_bitly: int = 3_805
    bitly_urls_posted: int = 5_700
    # Fig 4 — Monthly Active Users of malicious apps
    median_mau_over_1000_fraction: float = 0.40
    max_mau_over_1000_fraction: float = 0.60
    top_app_max_mau: int = 260_000  # 'Future Teller'
    top_app_median_mau: int = 20_000

    # --- Sec 4.1: on-demand feature distributions ----------------------
    # Fig 5 — summary-field completeness
    benign_has_category: float = 0.89
    benign_has_company: float = 0.81
    benign_has_description: float = 0.93
    malicious_has_category: float = 0.20
    malicious_has_company: float = 0.05
    malicious_has_description: float = 0.014
    # Fig 6/7 — permissions
    malicious_single_permission_fraction: float = 0.97
    benign_single_permission_fraction: float = 0.62
    permission_pool_size: int = 64
    # Fig 8 — WOT trust of redirect domain
    malicious_wot_unknown_fraction: float = 0.80
    malicious_wot_below_5_fraction: float = 0.95
    benign_redirect_facebook_fraction: float = 0.80
    # Sec 4.1.4 — client-ID mismatch in install URL
    malicious_client_id_mismatch_fraction: float = 0.78
    benign_client_id_mismatch_fraction: float = 0.01
    # Fig 9 — posts in app profile page
    malicious_empty_profile_fraction: float = 0.97
    # Table 3 — top-5 hosting domains cover 83% of malicious D-Inst apps
    top5_hosting_domains_coverage: float = 0.83
    top_hosting_domains: tuple[tuple[str, int], ...] = (
        ("thenamemeans2.com", 138),
        ("technicalyard.com", 96),
        ("wikiworldmedia.com", 82),
        ("fastfreeupdates.com", 53),
        ("thenamemeans3.com", 34),
    )

    # --- Sec 4.2: aggregation-based feature distributions --------------
    # Fig 10/11 — app-name sharing
    malicious_shared_name_fraction: float = 0.87
    malicious_mean_apps_per_name: float = 5.0
    malicious_names_over_10_apps_fraction: float = 0.08
    the_app_clone_count: int = 627  # apps named 'The App'
    # Fig 12 — external-link-to-post ratio
    benign_zero_external_fraction: float = 0.80
    malicious_high_external_fraction: float = 0.40
    bitly_share_of_short_urls: float = 0.92
    shortened_pointing_back_to_fb_fraction: float = 0.074  # 386 / 5197

    # --- Sec 5: classification -----------------------------------------
    # Table 5 — FRAppE Lite 5-fold CV (ratio -> accuracy, FP, FN), in %
    frappe_lite_cv: tuple[tuple[str, float, float, float], ...] = (
        ("1:1", 98.5, 0.6, 2.5),
        ("4:1", 99.0, 0.1, 4.7),
        ("7:1", 99.0, 0.1, 4.4),
        ("10:1", 99.5, 0.1, 5.5),
    )
    # Sec 5.2 — FRAppE full, 7:1
    frappe_accuracy: float = 99.5
    frappe_fp: float = 0.0
    frappe_fn: float = 4.1
    # Sec 7 — robust-features-only variant
    robust_accuracy: float = 98.2
    robust_fp: float = 0.4
    robust_fn: float = 3.2
    # Table 6 — single-feature 5-fold CV (feature -> accuracy, FP, FN)
    single_feature_cv: tuple[tuple[str, float, float, float], ...] = (
        ("category", 76.5, 45.8, 1.2),
        ("company", 72.1, 55.0, 0.8),
        ("description", 97.8, 3.3, 1.0),
        ("profile_posts", 96.9, 4.3, 1.9),
        ("client_id", 88.5, 1.0, 22.0),
        ("wot_score", 91.9, 13.4, 2.9),
        ("permission_count", 73.3, 49.3, 4.1),
    )
    # Sec 5.3 / Table 8 — applying FRAppE to unlabelled apps
    unlabelled_apps: int = 98_609
    flagged_apps: int = 8_144
    validated_deleted: int = 6_591
    validated_total: int = 8_051
    validated_fraction: float = 0.985
    ground_truth_fp_bound: float = 0.026  # Sec 5.3 "at most 2.6%"

    # --- Sec 6: AppNets --------------------------------------------------
    colluding_apps: int = 6_331
    promoter_fraction: float = 0.25
    promotee_fraction: float = 0.588
    dual_role_fraction: float = 0.162
    promoter_apps: int = 1_584
    promotee_apps: int = 3_723
    dual_role_apps: int = 1_024
    connected_components: int = 44
    top_component_sizes: tuple[int, ...] = (3_484, 770, 589, 296, 247)
    collusion_degree_over_10_fraction: float = 0.70
    max_collusions: int = 417
    clustering_coeff_over_074_fraction: float = 0.25
    # direct promotion
    direct_promoters: int = 692
    direct_promotees: int = 1_806
    direct_promoters_over_5_fraction: float = 0.15
    # indirection websites
    indirection_websites: int = 103
    indirection_promoters: int = 1_936
    indirection_promoter_names: int = 206
    indirection_promotees: int = 4_676
    indirection_promotee_names: int = 273
    websites_over_100_apps_fraction: float = 0.35
    indirection_bitly: int = 84
    indirection_on_aws_fraction: float = 0.333
    # Sec 6.2 — piggybacking
    piggyback_low_ratio_fraction: float = 0.05  # apps with mal-ratio < 0.2

    # --- Fig 1 — the AppNet snapshot -------------------------------------
    fig1_component_size: int = 770
    fig1_average_degree: int = 195


PAPER = PaperStats()


@dataclass
class ScaleConfig:
    """The simulation scale and the handful of structural knobs.

    ``scale`` multiplies every raw count (users, apps, posts).  Counts
    that the paper reports as absolute structure (44 AppNet components,
    103 indirection websites, 5 hosting domains) scale with a floor so
    the structure survives small scales.
    """

    scale: float = 0.05
    master_seed: int = 2012
    #: posts are the expensive object; allow scaling them harder than apps
    post_scale: float | None = None
    #: months of simulated observation (paper: 9)
    months: int = 9
    #: per-request probability of an injected transient crawl fault
    #: (0 = the fault layer is a strict no-op; see platform.transport)
    fault_rate: float = 0.0
    #: crawl attempts per request before the crawler gives up
    retry_budget: int = 4
    #: seeded sustained-outage windows injected by the transport
    #: (0 = none; see :func:`repro.platform.transport.draw_blackout_windows`).
    #: Orthogonal to ``fault_rate``: blackouts fail *every* request in
    #: their window, per-call faults are independent coin flips.
    blackouts: int = 0
    #: directory for the crash-safe crawl checkpoint (write-ahead journal
    #: + atomic snapshots); ``None`` disables checkpointing entirely and
    #: the pipeline behaves bit-identically to a journal-less run
    checkpoint_dir: str | None = None
    #: journal appends between snapshot compactions
    checkpoint_every: int = 64
    #: continue an existing checkpoint instead of refusing to touch it
    resume: bool = False
    #: crawl workers for the batch-parallel scheduler; 1 = the plain
    #: sequential loop.  Any value yields byte-identical records (see
    #: :mod:`repro.crawler.scheduler` for the determinism contract).
    crawl_workers: int = 1
    #: OS processes for the fault-tolerant sharded crawl; 1 = no
    #: supervisor.  Takes precedence over ``crawl_workers`` and keeps
    #: the same byte-identity contract even under worker crashes (see
    #: :mod:`repro.crawler.supervisor`).
    crawl_processes: int = 1

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {self.scale}")
        if not 0.0 <= self.fault_rate < 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1), got {self.fault_rate}"
            )
        if self.retry_budget < 1:
            raise ValueError(
                f"retry_budget must be >= 1, got {self.retry_budget}"
            )
        if self.blackouts < 0:
            raise ValueError(
                f"blackouts must be >= 0, got {self.blackouts}"
            )
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.crawl_workers < 1:
            raise ValueError(
                f"crawl_workers must be >= 1, got {self.crawl_workers}"
            )
        if self.crawl_processes < 1:
            raise ValueError(
                f"crawl_processes must be >= 1, got {self.crawl_processes}"
            )
        if self.post_scale is None:
            # Posts outnumber apps ~800:1 in the paper; keep laptop runs
            # tractable by scaling posts quadratically with the knob
            # (scale=0.05 -> ~230K posts; scale=1.0 -> the full 91M).
            self.post_scale = self.scale * self.scale

    def count(self, paper_value: int, minimum: int = 1) -> int:
        """Scale an app/user-like count, with a floor."""
        return max(minimum, int(round(paper_value * self.scale)))

    def post_count(self, paper_value: int, minimum: int = 1) -> int:
        """Scale a post-like count, with a floor."""
        assert self.post_scale is not None
        return max(minimum, int(round(paper_value * self.post_scale)))

    @property
    def n_apps(self) -> int:
        return self.count(PAPER.total_apps, minimum=200)

    @property
    def n_users(self) -> int:
        return self.count(PAPER.total_users, minimum=500)

    @property
    def n_posts(self) -> int:
        return self.post_count(PAPER.total_posts, minimum=5_000)

    @property
    def n_malicious_apps(self) -> int:
        return self.count(PAPER.d_sample_malicious, minimum=40)

    def structural(self, paper_value: int, minimum: int = 2) -> int:
        """Scale a *structural* count (components, websites, domains).

        Structural counts shrink with the square root of the scale so
        that, e.g., a 1%-scale run still has several AppNet components
        rather than 0.44 of one.
        """
        return max(minimum, int(round(paper_value * math.sqrt(self.scale))))


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the online verdict service (:mod:`repro.service`).

    Everything is expressed in *simulated* seconds on the shared
    :class:`~repro.platform.transport.TransportStats` clock — the
    service never reads the wall clock, so any run is a pure function
    of its seed and configuration.
    """

    #: admitted-but-not-yet-served requests the service will hold;
    #: beyond this, arrivals are shed (bulk before interactive)
    max_queue_depth: int = 16
    #: deadline budget of an interactive request, from its arrival
    interactive_deadline_s: float = 60.0
    #: deadline budget of a bulk request, from its arrival
    bulk_deadline_s: float = 600.0
    #: deadline budget of an internal cache-refresh task
    refresh_deadline_s: float = 600.0
    #: verdict-cache freshness window (serve without re-crawling)
    cache_ttl_s: float = 3600.0
    #: beyond the TTL but within this window a verdict is *stale*:
    #: served immediately while a background refresh revalidates it
    cache_stale_ttl_s: float = 6 * 3600.0
    #: TTL for negative entries (authoritative PERMANENT removals);
    #: a removed app cannot come back, so this is long by default
    negative_ttl_s: float = 24 * 3600.0
    #: schedule background refreshes for stale-while-revalidate hits
    revalidate: bool = True
    #: per-endpoint-class bulkhead: the fraction of a request's
    #: remaining deadline one endpoint class may consume, so a slow
    #: Graph API lookup cannot eat the whole request budget
    bulkhead_fractions: tuple[tuple[str, float], ...] = (
        ("summary", 0.6),
        ("feed", 0.3),
        ("install", 0.3),
    )
    #: consecutive transient failures that open an endpoint breaker
    breaker_failure_threshold: int = 5
    #: breaker cooldown before a half-open probe, simulated seconds
    breaker_cooldown_s: float = 180.0
    #: retry attempts per request inside the service (smaller than the
    #: batch crawler's: an online caller is waiting)
    retry_attempts: int = 2
    #: simulated service cost of answering from the verdict cache
    cache_hit_cost_s: float = 0.01
    #: simulated CPU cost of feature extraction + SVM evaluation
    score_cost_s: float = 0.05
    #: queued same-priority requests drained into one batched
    #: crawl+extract+predict pass per service tick; 1 = the historical
    #: one-request-per-tick loop, bit-identical to previous releases
    batch_size: int = 1
    #: upper bound of the *adaptive* continuous-batching controller
    #: (:func:`repro.service.admission.plan_batch`); 1 = adaptive
    #: batching off.  When > 1 each tick drains a planned batch whose
    #: size grows with queue depth and shrinks when deadline headroom
    #: is tight — this supersedes the fixed ``batch_size`` drain, and
    #: ``batch_max=1`` remains the literal historical unbatched path.
    batch_max: int = 1
    #: per-request service-time estimate the adaptive controller weighs
    #: deadline headroom against (simulated seconds)
    batch_headroom_s: float = 5.0
    #: overlap a tick's scoring with the next tick's crawl I/O on the
    #: simulated clock (only active when batch_max > 1)
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.batch_max < 1:
            raise ValueError(
                f"batch_max must be >= 1, got {self.batch_max}"
            )
        if self.batch_headroom_s <= 0:
            raise ValueError(
                f"batch_headroom_s must be positive, got {self.batch_headroom_s}"
            )
        for name in (
            "interactive_deadline_s",
            "bulk_deadline_s",
            "refresh_deadline_s",
            "cache_ttl_s",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.cache_stale_ttl_s < self.cache_ttl_s:
            raise ValueError(
                "cache_stale_ttl_s must be >= cache_ttl_s "
                f"({self.cache_stale_ttl_s} < {self.cache_ttl_s})"
            )
        for endpoint, fraction in self.bulkhead_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"bulkhead fraction for {endpoint!r} must be in "
                    f"(0, 1], got {fraction}"
                )

    def deadline_for(self, priority: str) -> float:
        """The default deadline budget of *priority* requests."""
        return (
            self.interactive_deadline_s
            if priority == "interactive"
            else self.bulk_deadline_s
        )


#: A tiny configuration for unit tests.
TEST_SCALE = ScaleConfig(scale=0.01)
