"""Cross-validation and class-ratio resampling (Sec 5.1, Table 5).

The paper evaluates with 5-fold cross-validation, repeated at several
benign:malicious ratios obtained by random subsampling of D-Complete.
Folds are stratified so each fold preserves the class ratio.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.ml.metrics import ClassificationReport, confusion_report
from repro.ml.scaling import StandardScaler

__all__ = ["stratified_kfold_indices", "cross_validate", "subsample_to_ratio"]


class _Classifier(Protocol):  # pragma: no cover - typing helper
    def fit(self, x: np.ndarray, y: np.ndarray) -> "_Classifier": ...
    def predict(self, x: np.ndarray) -> np.ndarray: ...


def stratified_kfold_indices(
    y: np.ndarray, k: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Split ``range(len(y))`` into *k* stratified folds.

    Each class's indices are shuffled and dealt round-robin, so every
    fold holds roughly ``1/k`` of each class.
    """
    y = np.asarray(y).ravel()
    if k < 2:
        raise ValueError("need at least 2 folds")
    if len(y) < k:
        raise ValueError(f"cannot make {k} folds from {len(y)} samples")
    folds: list[list[int]] = [[] for _ in range(k)]
    for label in np.unique(y):
        indices = np.flatnonzero(y == label)
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % k].append(int(index))
    return [np.sort(np.asarray(fold, dtype=int)) for fold in folds]


def cross_validate(
    model_factory: Callable[[], _Classifier],
    x: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    rng: np.random.Generator | None = None,
    scale: bool = True,
) -> ClassificationReport:
    """k-fold stratified CV; returns the pooled confusion report.

    A fresh model from *model_factory* is trained per fold.  When
    *scale* is set, a :class:`StandardScaler` is fitted on each training
    split only (no leakage) and applied to its test split.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y).astype(int).ravel()
    rng = rng or np.random.default_rng(0)
    folds = stratified_kfold_indices(y, k, rng)
    pooled = ClassificationReport(0, 0, 0, 0)
    for fold in folds:
        test_mask = np.zeros(len(y), dtype=bool)
        test_mask[fold] = True
        x_train, y_train = x[~test_mask], y[~test_mask]
        x_test, y_test = x[test_mask], y[test_mask]
        if scale:
            scaler = StandardScaler().fit(x_train)
            x_train = scaler.transform(x_train)
            x_test = scaler.transform(x_test)
        model = model_factory().fit(x_train, y_train)
        pooled = pooled + confusion_report(y_test, model.predict(x_test))
    return pooled


def subsample_to_ratio(
    x: np.ndarray,
    y: np.ndarray,
    benign_per_malicious: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Subsample to a benign:malicious ratio (Table 5's 1:1 ... 10:1).

    Keeps as many samples as the ratio allows: whichever class is the
    binding constraint is used in full.
    """
    if benign_per_malicious <= 0:
        raise ValueError("ratio must be positive")
    y = np.asarray(y).astype(int).ravel()
    benign_idx = np.flatnonzero(y == 0)
    malicious_idx = np.flatnonzero(y == 1)
    if len(benign_idx) == 0 or len(malicious_idx) == 0:
        raise ValueError("need both classes to resample")
    # Binding constraint: use all of one class.
    n_malicious = min(
        len(malicious_idx), int(len(benign_idx) / benign_per_malicious)
    )
    n_malicious = max(n_malicious, 1)
    n_benign = min(len(benign_idx), int(round(n_malicious * benign_per_malicious)))
    chosen_benign = rng.choice(benign_idx, size=n_benign, replace=False)
    chosen_malicious = rng.choice(malicious_idx, size=n_malicious, replace=False)
    chosen = np.concatenate([chosen_benign, chosen_malicious])
    rng.shuffle(chosen)
    return np.asarray(x, dtype=float)[chosen], y[chosen]
