"""Kernel functions for the SVM.

All kernels take two sample matrices ``X (n, d)`` and ``Y (m, d)`` and
return the ``(n, m)`` Gram matrix.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["linear_kernel", "rbf_kernel", "polynomial_kernel", "KERNELS"]


def linear_kernel(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """K(a, b) = <a, b>."""
    return np.asarray(x, dtype=float) @ np.asarray(y, dtype=float).T


def rbf_kernel(
    x: np.ndarray,
    y: np.ndarray,
    gamma: float = 1.0,
    y_sq: np.ndarray | None = None,
) -> np.ndarray:
    """K(a, b) = exp(-gamma * ||a - b||^2).

    ``y_sq`` optionally supplies the precomputed squared row norms of
    ``y`` (``np.sum(y * y, axis=1)``).  A fitted SVM evaluates this
    kernel against the same support vectors on every call, so it can
    compute the norms once at fit time; the values are the very same
    floats this function would derive, keeping results bit-identical.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    x_sq = np.sum(x * x, axis=1)[:, None]
    if y_sq is None:
        y_sq = np.sum(y * y, axis=1)
    sq_dist = np.maximum(x_sq + y_sq[None, :] - 2.0 * (x @ y.T), 0.0)
    return np.exp(-gamma * sq_dist)


def polynomial_kernel(
    x: np.ndarray,
    y: np.ndarray,
    gamma: float = 1.0,
    coef0: float = 0.0,
    degree: int = 3,
) -> np.ndarray:
    """K(a, b) = (gamma * <a, b> + coef0) ** degree (libsvm's 'poly')."""
    return (gamma * linear_kernel(x, y) + coef0) ** degree


KERNELS: dict[str, Callable[..., np.ndarray]] = {
    "linear": linear_kernel,
    "rbf": rbf_kernel,
    "poly": polynomial_kernel,
}
