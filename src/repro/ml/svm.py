"""A C-SVC trained with Platt's Sequential Minimal Optimization.

The paper uses libsvm with default parameters (RBF kernel, C = 1).  This
implementation follows Platt's original SMO with the standard two-level
working-set heuristics and a full error cache; the kernel matrix is
precomputed, which is exact and fast for the dataset sizes involved
(thousands of apps).

Labels are 0/1 (1 = malicious, matching :mod:`repro.ml.metrics`).
"""

from __future__ import annotations

import numpy as np

from repro.ml.kernels import polynomial_kernel, rbf_kernel, linear_kernel
from repro.obs.observer import get_observer

__all__ = ["SVC", "project_feasible_alphas"]


class SVC:
    """Support-vector classifier (binary, labels in {0, 1}).

    Parameters mirror libsvm: ``C`` (soft margin), ``kernel`` in
    {'rbf', 'linear', 'poly'}, ``gamma`` ('auto' = 1/n_features,
    'scale' = 1/(n_features * var(X)), or a float), ``coef0`` and
    ``degree`` for the polynomial kernel, ``tol`` for the KKT tolerance.
    """

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: str | float = "auto",
        coef0: float = 0.0,
        degree: int = 3,
        tol: float = 1e-3,
        max_passes: int = 200,
    ) -> None:
        if c <= 0:
            raise ValueError("C must be positive")
        if kernel not in ("rbf", "linear", "poly"):
            raise ValueError(f"unknown kernel: {kernel!r}")
        self.c = float(c)
        self.kernel = kernel
        self.gamma = gamma
        self.coef0 = float(coef0)
        self.degree = int(degree)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        # fitted state
        self._gamma_value: float = 1.0
        self._support_x: np.ndarray | None = None
        self._support_coef: np.ndarray | None = None  # alpha_i * y_i
        #: squared row norms of the support vectors, computed once at
        #: fit time so the RBF Gram of every decision_function call
        #: reuses them (bit-identical to recomputing per call)
        self._support_sq: np.ndarray | None = None
        self._bias: float = 0.0
        self._constant_label: int | None = None
        self.n_iterations_: int = 0
        #: full dual vector aligned with the training rows (None before
        #: fit and for the degenerate single-class case) — the handle a
        #: warm-started retrain passes back in as ``init_alphas``.
        self.alphas_: np.ndarray | None = None

    # -- kernel helpers -----------------------------------------------------

    def _resolve_gamma(self, x: np.ndarray) -> float:
        if isinstance(self.gamma, (int, float)):
            return float(self.gamma)
        n_features = x.shape[1]
        if self.gamma == "auto":
            return 1.0 / max(n_features, 1)
        if self.gamma == "scale":
            var = float(x.var())
            return 1.0 / (max(n_features, 1) * var) if var > 0 else 1.0
        raise ValueError(f"unknown gamma spec: {self.gamma!r}")

    def _gram(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return linear_kernel(x, y)
        if self.kernel == "rbf":
            return rbf_kernel(x, y, gamma=self._gamma_value)
        return polynomial_kernel(
            x, y, gamma=self._gamma_value, coef0=self.coef0, degree=self.degree
        )

    # -- training ---------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        init_alphas: np.ndarray | None = None,
        init_bias: float = 0.0,
    ) -> "SVC":
        """Fit by SMO; ``init_alphas`` warm-starts the dual solve.

        ``init_alphas=None`` is the exact historical code path.  A
        warm start seeds the solver with a previous model's dual vector
        (aligned with the rows of ``x``; new samples get 0) — the
        problem is a convex QP, so the optimum reached is the same one
        a cold start converges to, just from a closer starting point.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(int).ravel()
        if x.ndim != 2:
            raise ValueError("X must be 2-D")
        if len(x) != len(y):
            raise ValueError("X and y length mismatch")
        if len(x) == 0:
            raise ValueError("cannot fit on zero samples")
        if init_alphas is not None and len(init_alphas) != len(x):
            raise ValueError("init_alphas length must match X")
        labels = np.unique(y)
        if not np.all(np.isin(labels, (0, 1))):
            raise ValueError("labels must be 0 or 1")
        if len(labels) == 1:
            # Degenerate single-class training set: predict the constant.
            self._constant_label = int(labels[0])
            self._support_x = None
            self._support_sq = None
            self.alphas_ = None
            return self
        self._constant_label = None
        self._gamma_value = self._resolve_gamma(x)

        signs = np.where(y == 1, 1.0, -1.0)
        obs = get_observer()
        # Training has no simulated clock; span/event times are the
        # SMO outer-iteration index (0 at open, n_iterations at close).
        with obs.span(
            "svm.fit",
            category="train",
            t=0.0,
            kernel=self.kernel,
            n_samples=len(x),
        ) as span, obs.profile("train"):
            kernel_matrix = self._gram(x, x)
            alphas, bias, iterations = _smo(
                kernel_matrix,
                signs,
                self.c,
                self.tol,
                self.max_passes,
                init_alphas=init_alphas,
                init_bias=init_bias,
            )
            self.n_iterations_ = iterations
            self.alphas_ = alphas
            support = alphas > 1e-12
            self._support_x = x[support]
            self._support_coef = (alphas * signs)[support]
            self._support_sq = np.sum(self._support_x * self._support_x, axis=1)
            self._bias = bias
            if obs.enabled:
                span.end(float(iterations))
                span.note(
                    n_iterations=int(iterations),
                    n_support=int(self.n_support_),
                )
                obs.count("svm_fits_total", kernel=self.kernel)
                obs.observe(
                    "svm_fit_iterations",
                    float(iterations),
                    edges=(5.0, 10.0, 25.0, 50.0, 100.0, 200.0),
                )
        return self

    @property
    def n_support_(self) -> int:
        return 0 if self._support_x is None else len(self._support_x)

    # -- inference ----------------------------------------------------------

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self._constant_label is not None:
            return np.full(len(x), 1.0 if self._constant_label == 1 else -1.0)
        if self._support_x is None or self._support_coef is None:
            raise RuntimeError("classifier is not fitted")
        if self.n_support_ == 0:
            return np.full(len(x), self._bias)
        if self.kernel == "rbf":
            gram = rbf_kernel(
                x,
                self._support_x,
                gamma=self._gamma_value,
                y_sq=self._support_sq,
            )
        else:
            gram = self._gram(x, self._support_x)
        return gram @ self._support_coef + self._bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(int)


def project_feasible_alphas(
    init_alphas: np.ndarray, signs: np.ndarray, c: float
) -> np.ndarray:
    """Project a warm-start dual vector onto SMO's feasible set.

    Every SMO step preserves ``sum(alpha_i * y_i)`` exactly, so a seed
    that violates the equality constraint would confine the solver to
    the wrong affine slice forever.  Clip to the box [0, C], then scale
    down whichever class carries the excess mass until the constraint
    holds — scaling down never leaves the box.
    """
    alphas = np.clip(np.asarray(init_alphas, dtype=float), 0.0, c)
    gap = float(alphas @ signs)
    if gap > 0.0:
        positive = signs > 0
        mass = float(alphas[positive].sum())
        alphas[positive] *= 0.0 if mass <= gap else (mass - gap) / mass
    elif gap < 0.0:
        negative = signs < 0
        mass = float(alphas[negative].sum())
        alphas[negative] *= 0.0 if mass <= -gap else (mass + gap) / mass
    return alphas


def _smo(
    kernel_matrix: np.ndarray,
    signs: np.ndarray,
    c: float,
    tol: float,
    max_passes: int,
    row_cache: bool = True,
    init_alphas: np.ndarray | None = None,
    init_bias: float = 0.0,
) -> tuple[np.ndarray, float, int]:
    """Platt SMO over a precomputed Gram matrix.

    Returns ``(alphas, bias, outer_iterations)``.  ``signs`` holds the
    +/-1 labels.

    ``row_cache=True`` (the default) enables two caches in the examine
    loop's hot path; both are exact identities, so the fitted model is
    bit-for-bit the same as with ``row_cache=False`` (the tests fit
    both ways and assert it):

    * the Gram-weighting coefficient vector ``alphas * signs`` used by
      the error recomputation is maintained incrementally instead of
      being reallocated on every ``_f_of`` call — the two touched
      entries get the very same products the full recomputation would;
    * the examine fallback's scan offset is memoised per
      ``(i2, len(non_bound))`` — a *fresh* ``default_rng(i2)`` always
      produces the same first draw for the same bounds, so building one
      generator per call (the old behaviour, ~tens of microseconds
      each) only ever recomputed a constant;
    * the non-bound set ``(alphas > eps) & (alphas < c - eps)`` is
      maintained as a boolean mask updated at the two entries each
      successful step changes, instead of being rebuilt from two full
      comparisons per examine call; ``flatnonzero`` of the mask yields
      the identical sorted index array.
    """
    n = len(signs)
    eps = 1e-12
    if init_alphas is None:
        alphas = np.zeros(n)
        bias = 0.0
        # Error cache: E_i = f(x_i) - y_i; with alphas = 0, f = 0.
        errors = -signs.copy()
        # alphas * signs, maintained incrementally when row_cache is on.
        coef = np.zeros(n)
    else:
        alphas = project_feasible_alphas(init_alphas, signs, c)
        bias = float(init_bias)
        coef = alphas * signs
        errors = kernel_matrix @ coef + bias - signs
    roll_cache: dict[tuple[int, int], int] = {}
    # Maintained incrementally when row_cache is on (exact: only the
    # entries take_step writes can change the predicate).
    non_bound_mask = (alphas > eps) & (alphas < c - eps)

    def _non_bound() -> np.ndarray:
        if row_cache:
            return np.flatnonzero(non_bound_mask)
        return np.flatnonzero((alphas > eps) & (alphas < c - eps))

    def take_step(i1: int, i2: int) -> bool:
        nonlocal bias
        if i1 == i2:
            return False
        alpha1, alpha2 = alphas[i1], alphas[i2]
        y1, y2 = signs[i1], signs[i2]
        e1, e2 = errors[i1], errors[i2]
        s = y1 * y2
        if s > 0:
            low, high = max(0.0, alpha1 + alpha2 - c), min(c, alpha1 + alpha2)
        else:
            low, high = max(0.0, alpha2 - alpha1), min(c, c + alpha2 - alpha1)
        if high - low < eps:
            return False
        k11 = kernel_matrix[i1, i1]
        k12 = kernel_matrix[i1, i2]
        k22 = kernel_matrix[i2, i2]
        eta = k11 + k22 - 2.0 * k12
        if eta > eps:
            a2 = alpha2 + y2 * (e1 - e2) / eta
            a2 = min(max(a2, low), high)
        else:
            # Objective at the two clip ends (Platt's fallback).
            f1 = y1 * e1 - alpha1 * k11 - s * alpha2 * k12
            f2 = y2 * e2 - s * alpha1 * k12 - alpha2 * k22
            l1 = alpha1 + s * (alpha2 - low)
            h1 = alpha1 + s * (alpha2 - high)
            obj_low = (
                l1 * f1 + low * f2 + 0.5 * l1 * l1 * k11
                + 0.5 * low * low * k22 + s * low * l1 * k12
            )
            obj_high = (
                h1 * f1 + high * f2 + 0.5 * h1 * h1 * k11
                + 0.5 * high * high * k22 + s * high * h1 * k12
            )
            if obj_low < obj_high - eps:
                a2 = low
            elif obj_low > obj_high + eps:
                a2 = high
            else:
                a2 = alpha2
        if abs(a2 - alpha2) < eps * (a2 + alpha2 + eps):
            return False
        a1 = alpha1 + s * (alpha2 - a2)
        # Bias update keeping KKT on the changed points.
        b1 = bias - e1 - y1 * (a1 - alpha1) * k11 - y2 * (a2 - alpha2) * k12
        b2 = bias - e2 - y1 * (a1 - alpha1) * k12 - y2 * (a2 - alpha2) * k22
        if 0 < a1 < c:
            new_bias = b1
        elif 0 < a2 < c:
            new_bias = b2
        else:
            new_bias = 0.5 * (b1 + b2)
        delta_bias = new_bias - bias
        bias = new_bias
        # Vectorised error-cache update.
        errors[:] += (
            y1 * (a1 - alpha1) * kernel_matrix[i1]
            + y2 * (a2 - alpha2) * kernel_matrix[i2]
            + delta_bias
        )
        alphas[i1], alphas[i2] = a1, a2
        if row_cache:
            coef[i1] = a1 * y1
            coef[i2] = a2 * y2
            non_bound_mask[i1] = eps < a1 < c - eps
            non_bound_mask[i2] = eps < a2 < c - eps
        errors[i1] = _f_of(i1) - y1
        errors[i2] = _f_of(i2) - y2
        return True

    def _f_of(i: int) -> float:
        weights = coef if row_cache else alphas * signs
        return float(weights @ kernel_matrix[:, i] + bias)

    def examine(i2: int) -> bool:
        y2 = signs[i2]
        alpha2 = alphas[i2]
        e2 = errors[i2]
        r2 = e2 * y2
        if (r2 < -tol and alpha2 < c) or (r2 > tol and alpha2 > 0):
            non_bound = _non_bound()
            if len(non_bound) > 1:
                # Second-choice heuristic: maximise |E1 - E2|.
                i1 = int(non_bound[np.argmax(np.abs(errors[non_bound] - e2))])
                if take_step(i1, i2):
                    return True
            # Fall back to scanning non-bound, then all, points, from a
            # seeded random offset.  The draw is a pure function of
            # (i2, len(non_bound)) — default_rng(i2) is constructed
            # fresh, so its first draw for given bounds never varies —
            # and is memoised instead of paying generator construction
            # on every examine call.
            if row_cache:
                roll_key = (i2, len(non_bound))
                roll = roll_cache.get(roll_key)
                if roll is None:
                    roll = int(
                        np.random.default_rng(i2).integers(
                            0, max(len(non_bound), 1)
                        )
                    )
                    roll_cache[roll_key] = roll
            else:
                roll = int(
                    np.random.default_rng(i2).integers(0, max(len(non_bound), 1))
                )
            for i1 in np.roll(non_bound, roll):
                if take_step(int(i1), i2):
                    return True
            for i1 in range(n):
                if take_step(i1, i2):
                    return True
        return False

    iterations = 0
    examine_all = True
    num_changed = 0
    obs = get_observer()
    while (num_changed > 0 or examine_all) and iterations < max_passes:
        iterations += 1
        sweep = "all" if examine_all else "non_bound"
        num_changed = 0
        if examine_all:
            for i in range(n):
                num_changed += examine(i)
        else:
            for i in _non_bound():
                num_changed += examine(int(i))
        if obs.enabled:
            obs.event(
                "svm.iteration",
                t=float(iterations),
                category="train",
                sweep=sweep,
                num_changed=int(num_changed),
            )
        if examine_all:
            examine_all = False
        elif num_changed == 0:
            examine_all = True
    return alphas, bias, iterations
