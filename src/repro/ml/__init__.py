"""Machine-learning substrate: a from-scratch SVM and evaluation tools.

The paper trains libsvm SVMs (RBF kernel, default parameters, C = 1).
No ML library is available offline, so this package implements:

* :mod:`repro.ml.kernels` — linear / RBF / polynomial kernels,
* :mod:`repro.ml.svm` — an SVC trained by Platt's SMO algorithm,
* :mod:`repro.ml.scaling` — feature standardisation,
* :mod:`repro.ml.metrics` — the paper's accuracy / false-positive /
  false-negative metrics (positive class = malicious),
* :mod:`repro.ml.crossval` — stratified k-fold cross-validation and the
  benign:malicious ratio resampling used in Table 5,
* :mod:`repro.ml.drift` — windowed PSI / KS feature-distribution and
  score-calibration drift monitors,
* :mod:`repro.ml.online` — sliding-window warm-started retraining.
"""

from repro.ml.kernels import KERNELS, linear_kernel, polynomial_kernel, rbf_kernel
from repro.ml.scaling import StandardScaler
from repro.ml.metrics import ClassificationReport, confusion_report
from repro.ml.svm import SVC, project_feasible_alphas
from repro.ml.crossval import (
    cross_validate,
    stratified_kfold_indices,
    subsample_to_ratio,
)
from repro.ml.drift import (
    DriftConfig,
    DriftDetector,
    DriftReport,
    ks_noise_allowance,
    ks_statistic,
    psi,
    psi_noise_allowance,
)
from repro.ml.online import SlidingWindowTrainer, WindowModel, carry_alphas

__all__ = [
    "KERNELS",
    "linear_kernel",
    "polynomial_kernel",
    "rbf_kernel",
    "StandardScaler",
    "ClassificationReport",
    "confusion_report",
    "SVC",
    "project_feasible_alphas",
    "cross_validate",
    "stratified_kfold_indices",
    "subsample_to_ratio",
    "DriftConfig",
    "DriftDetector",
    "DriftReport",
    "psi",
    "psi_noise_allowance",
    "ks_statistic",
    "ks_noise_allowance",
    "SlidingWindowTrainer",
    "WindowModel",
    "carry_alphas",
]
