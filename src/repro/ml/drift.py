"""Windowed drift detection for the FRAppE feature space.

FRAppE's §7 robustness discussion concedes that hackers adapt once a
detector ships.  This module watches for that adaptation the way an
operator can without fresh labels:

* **feature drift** — per-column PSI (population stability index) and
  two-sample KS statistics comparing a reference window of
  :meth:`~repro.core.features.FeatureExtractor.matrix` rows against the
  most recent window, and
* **score-calibration drift** — PSI over the SVM margin distribution
  plus the shift in the flagged-positive rate, which moves when the
  feature distribution slides across the frozen decision boundary.

Everything is deterministic: windows are keyed to *simulated* clocks
(epoch days, never wall time), histogram edges come from reference
quantiles, and the same sample stream always yields the same reports.
Metrics flow through the PR-5 :class:`~repro.obs.observer.Observer`
protocol (``drift.window`` events, ``drift_*`` gauges/counters) and
cost nothing when observation is off.

Decision rule (pinned by the boundary tests): a window **is** drifted
when its score reaches the threshold exactly (``>=``), a window is
evaluated the moment it is exactly full, zero-variance columns compare
as a two-bin "equal vs. not" histogram instead of degenerating to NaN,
and single-sample windows are legal (the KS statistic of a one-point
ECDF is well defined).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.observer import get_observer

__all__ = [
    "DriftConfig",
    "DriftReport",
    "DriftDetector",
    "psi",
    "ks_statistic",
    "psi_noise_allowance",
    "ks_noise_allowance",
]

#: smoothing mass added to empty histogram bins so the PSI log ratio
#: stays finite; the conventional small-epsilon choice.
_PSI_EPSILON = 1e-4


def _proportions(counts: np.ndarray) -> np.ndarray:
    counts = counts.astype(float) + _PSI_EPSILON
    return counts / counts.sum()


def psi(reference: np.ndarray, window: np.ndarray, bins: int = 10) -> float:
    """Population stability index between two 1-D samples.

    Bin edges are deterministic reference quantiles.  A zero-variance
    reference column falls back to a two-bin "equals the constant vs.
    deviates" histogram, so identical windows score 0 and a constant
    that *moved* scores high instead of NaN.
    """
    reference = np.asarray(reference, dtype=float).ravel()
    window = np.asarray(window, dtype=float).ravel()
    if len(reference) == 0 or len(window) == 0:
        return 0.0
    lo, hi = float(reference.min()), float(reference.max())
    if hi - lo <= 0.0:
        ref_counts = np.array([len(reference), 0.0])
        win_equal = np.isclose(window, lo).sum()
        win_counts = np.array([win_equal, len(window) - win_equal])
    else:
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        edges = np.unique(np.quantile(reference, quantiles))
        if len(edges) < 3:
            # Discrete column (e.g. a binary feature): quantile edges
            # collapse.  Bin on the value midpoints instead, so a rate
            # shift between the discrete levels stays visible.
            values = np.unique(reference)
            if len(values) > max(bins, 16):
                values = np.unique(np.array([lo, float(np.median(reference)), hi]))
            edges = np.concatenate(
                [[-np.inf], (values[:-1] + values[1:]) / 2.0, [np.inf]]
            )
        else:
            # Open the outer edges so window mass outside the reference
            # support still lands in the extreme bins.
            edges[0], edges[-1] = -np.inf, np.inf
        ref_counts, _ = np.histogram(reference, bins=edges)
        win_counts, _ = np.histogram(window, bins=edges)
    ref_p = _proportions(np.asarray(ref_counts))
    win_p = _proportions(np.asarray(win_counts))
    return float(np.sum((win_p - ref_p) * np.log(win_p / ref_p)))


def ks_statistic(reference: np.ndarray, window: np.ndarray) -> float:
    """Two-sample Kolmogorov–Smirnov statistic (max ECDF distance)."""
    reference = np.sort(np.asarray(reference, dtype=float).ravel())
    window = np.sort(np.asarray(window, dtype=float).ravel())
    if len(reference) == 0 or len(window) == 0:
        return 0.0
    grid = np.concatenate([reference, window])
    cdf_ref = np.searchsorted(reference, grid, side="right") / len(reference)
    cdf_win = np.searchsorted(window, grid, side="right") / len(window)
    return float(np.max(np.abs(cdf_ref - cdf_win)))


def psi_noise_allowance(n_reference: int, n_window: int, bins: int) -> float:
    """Expected PSI of two same-distribution samples, tripled.

    Under the null, PSI behaves like a chi-square-flavoured statistic
    with mean ``(bins - 1) * (1/n_window + 1/n_reference)``; three times
    that mean keeps same-distribution windows below the decision line
    even at the small window sizes an epoch study uses.
    """
    if n_reference < 1 or n_window < 1:
        return 0.0
    return 3.0 * (bins - 1) * (1.0 / n_window + 1.0 / n_reference)


def ks_noise_allowance(n_reference: int, n_window: int) -> float:
    """The α≈0.05 two-sample KS critical distance for these sizes."""
    if n_reference < 1 or n_window < 1:
        return 0.0
    return 1.36 * float(np.sqrt(1.0 / n_window + 1.0 / n_reference))


@dataclass(frozen=True)
class DriftConfig:
    """Thresholds and window geometry for :class:`DriftDetector`.

    The PSI/KS thresholds are *excess over sampling noise*: the
    detector flags a column when its statistic reaches
    ``threshold + noise_allowance(n_reference, n_window)`` (inclusive),
    so the decision line adapts to window size instead of firing on the
    chi-square noise floor of small windows.
    """

    #: samples per evaluation window (1 is legal)
    window: int = 200
    #: per-feature excess PSI at/above this flags the feature (0.2 is
    #: the conventional "significant shift" rule of thumb)
    psi_threshold: float = 0.2
    #: per-feature excess KS distance at/above this flags the feature
    ks_threshold: float = 0.15
    #: how many flagged feature columns it takes to call the window
    #: feature-drifted
    min_drifted_features: int = 1
    #: PSI over the margin distribution at/above this flags calibration
    score_psi_threshold: float = 0.2
    #: absolute shift in positive rate at/above this flags calibration
    positive_rate_delta: float = 0.2
    #: histogram bins for PSI
    bins: int = 10

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")


@dataclass(frozen=True)
class DriftReport:
    """One evaluated window."""

    t: float
    n_samples: int
    feature_psi: dict[str, float]
    feature_ks: dict[str, float]
    drifted_features: tuple[str, ...]
    score_psi: float
    reference_positive_rate: float
    window_positive_rate: float
    #: the two components of the verdict
    feature_drift: bool
    score_drift: bool

    @property
    def drifted(self) -> bool:
        return self.feature_drift or self.score_drift

    @property
    def max_psi(self) -> float:
        return max(self.feature_psi.values(), default=0.0)

    def as_dict(self) -> dict:
        """JSON-ready row for the drift-metrics JSONL export."""
        return {
            "t": self.t,
            "n_samples": self.n_samples,
            "feature_psi": {k: round(v, 6) for k, v in self.feature_psi.items()},
            "feature_ks": {k: round(v, 6) for k, v in self.feature_ks.items()},
            "drifted_features": list(self.drifted_features),
            "score_psi": round(self.score_psi, 6),
            "reference_positive_rate": round(self.reference_positive_rate, 6),
            "window_positive_rate": round(self.window_positive_rate, 6),
            "feature_drift": self.feature_drift,
            "score_drift": self.score_drift,
            "drifted": self.drifted,
        }


@dataclass
class _Window:
    rows: list[np.ndarray] = field(default_factory=list)
    margins: list[float] = field(default_factory=list)


class DriftDetector:
    """Streams (feature row, margin) pairs and evaluates full windows.

    The reference distribution is the training window of the current
    champion model; :meth:`rebaseline` swaps it after a promotion so
    the detector tracks the *deployed* model's world view.
    """

    def __init__(
        self,
        reference_matrix: np.ndarray,
        reference_margins: np.ndarray,
        feature_names: tuple[str, ...] | list[str],
        config: DriftConfig | None = None,
    ) -> None:
        self._config = config or DriftConfig()
        self._feature_names = tuple(feature_names)
        self.rebaseline(reference_matrix, reference_margins)
        self._pending = _Window()
        self.reports: list[DriftReport] = []

    @property
    def config(self) -> DriftConfig:
        return self._config

    def rebaseline(
        self, reference_matrix: np.ndarray, reference_margins: np.ndarray
    ) -> None:
        matrix = np.asarray(reference_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != len(self._feature_names):
            raise ValueError("reference matrix shape mismatch")
        self._reference = matrix
        self._reference_margins = np.asarray(
            reference_margins, dtype=float
        ).ravel()
        self._reference_positive_rate = (
            float((self._reference_margins >= 0.0).mean())
            if len(self._reference_margins)
            else 0.0
        )

    def update(
        self, rows: np.ndarray, margins: np.ndarray, t: float
    ) -> list[DriftReport]:
        """Feed a batch of scored samples at simulated time ``t``.

        Returns the reports of every window that *filled* during this
        batch — a window is evaluated the moment its count reaches
        exactly ``config.window``, so drift starting on a window edge
        lands entirely in its own window.
        """
        rows = np.atleast_2d(np.asarray(rows, dtype=float))
        margins = np.asarray(margins, dtype=float).ravel()
        if len(rows) != len(margins):
            raise ValueError("rows and margins length mismatch")
        produced: list[DriftReport] = []
        for row, margin in zip(rows, margins):
            self._pending.rows.append(row)
            self._pending.margins.append(float(margin))
            if len(self._pending.rows) == self._config.window:
                produced.append(self._evaluate(self._pending, t))
                self._pending = _Window()
        return produced

    def flush(self, t: float) -> DriftReport | None:
        """Evaluate a partial trailing window (end of an epoch)."""
        if not self._pending.rows:
            return None
        report = self._evaluate(self._pending, t)
        self._pending = _Window()
        return report

    def _evaluate(self, window: _Window, t: float) -> DriftReport:
        cfg = self._config
        matrix = np.vstack(window.rows)
        margins = np.asarray(window.margins, dtype=float)
        # Small windows get fewer bins: a 10-bin PSI over 50 samples has
        # a sampling-noise floor near the drift threshold itself.
        bins = max(2, min(cfg.bins, len(matrix) // 10))
        n_ref, n_win = len(self._reference), len(matrix)
        psi_line = cfg.psi_threshold + psi_noise_allowance(n_ref, n_win, bins)
        ks_line = cfg.ks_threshold + ks_noise_allowance(n_ref, n_win)
        feature_psi: dict[str, float] = {}
        feature_ks: dict[str, float] = {}
        drifted_features: list[str] = []
        for col, name in enumerate(self._feature_names):
            col_psi = psi(self._reference[:, col], matrix[:, col], bins)
            col_ks = ks_statistic(self._reference[:, col], matrix[:, col])
            feature_psi[name] = col_psi
            feature_ks[name] = col_ks
            if col_psi >= psi_line or col_ks >= ks_line:
                drifted_features.append(name)
        score_psi = psi(self._reference_margins, margins, bins)
        positive_rate = float((margins >= 0.0).mean()) if len(margins) else 0.0
        feature_drift = len(drifted_features) >= cfg.min_drifted_features
        score_line = cfg.score_psi_threshold + psi_noise_allowance(
            len(self._reference_margins), len(margins), bins
        )
        score_drift = (
            score_psi >= score_line
            or abs(positive_rate - self._reference_positive_rate)
            >= cfg.positive_rate_delta
        )
        report = DriftReport(
            t=float(t),
            n_samples=len(matrix),
            feature_psi=feature_psi,
            feature_ks=feature_ks,
            drifted_features=tuple(drifted_features),
            score_psi=score_psi,
            reference_positive_rate=self._reference_positive_rate,
            window_positive_rate=positive_rate,
            feature_drift=feature_drift,
            score_drift=score_drift,
        )
        self.reports.append(report)
        self._observe(report)
        return report

    def _observe(self, report: DriftReport) -> None:
        obs = get_observer()
        if not obs.enabled:
            return
        obs.event(
            "drift.window",
            t=report.t,
            category="drift",
            n_samples=report.n_samples,
            drifted=report.drifted,
            drifted_features=",".join(report.drifted_features),
            score_psi=round(report.score_psi, 6),
        )
        obs.gauge("drift_max_psi", report.max_psi)
        obs.gauge("drift_score_psi", report.score_psi)
        obs.gauge("drift_window_positive_rate", report.window_positive_rate)
        obs.observe(
            "drift_psi",
            report.max_psi,
            edges=(0.05, 0.1, 0.2, 0.4, 0.8, 1.6),
        )
        obs.count("drift_windows_total")
        if report.drifted:
            obs.count("drift_flags_total")
