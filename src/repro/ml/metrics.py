"""Classification metrics, with the paper's conventions (Sec 5.1).

The positive class is *malicious*.  The paper defines:

* accuracy — correctly identified apps over all apps,
* false-positive rate — benign apps incorrectly flagged malicious, as a
  fraction of all benign apps,
* false-negative rate — malicious apps missed, as a fraction of all
  malicious apps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClassificationReport", "confusion_report"]


@dataclass(frozen=True)
class ClassificationReport:
    """Confusion counts plus the paper's three derived rates."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def n_samples(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def n_malicious(self) -> int:
        return self.true_positives + self.false_negatives

    @property
    def n_benign(self) -> int:
        return self.true_negatives + self.false_positives

    @property
    def accuracy(self) -> float:
        if self.n_samples == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.n_samples

    @property
    def false_positive_rate(self) -> float:
        """Fraction of benign apps flagged malicious."""
        if self.n_benign == 0:
            return 0.0
        return self.false_positives / self.n_benign

    @property
    def false_negative_rate(self) -> float:
        """Fraction of malicious apps missed."""
        if self.n_malicious == 0:
            return 0.0
        return self.false_negatives / self.n_malicious

    def __add__(self, other: "ClassificationReport") -> "ClassificationReport":
        """Pool confusion counts (e.g. across cross-validation folds)."""
        return ClassificationReport(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.true_negatives + other.true_negatives,
            self.false_negatives + other.false_negatives,
        )

    def as_percentages(self) -> tuple[float, float, float]:
        """(accuracy, FP rate, FN rate) in percent, as the tables print."""
        return (
            100.0 * self.accuracy,
            100.0 * self.false_positive_rate,
            100.0 * self.false_negative_rate,
        )

    def __str__(self) -> str:
        acc, fp, fn = self.as_percentages()
        return f"accuracy={acc:.1f}% FP={fp:.1f}% FN={fn:.1f}%"


def confusion_report(y_true: np.ndarray, y_pred: np.ndarray) -> ClassificationReport:
    """Build a report from 0/1 label arrays (1 = malicious)."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have the same shape")
    return ClassificationReport(
        true_positives=int(np.sum(y_true & y_pred)),
        false_positives=int(np.sum(~y_true & y_pred)),
        true_negatives=int(np.sum(~y_true & ~y_pred)),
        false_negatives=int(np.sum(y_true & ~y_pred)),
    )
