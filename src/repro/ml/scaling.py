"""Feature scaling.

RBF SVMs are sensitive to feature ranges, and the libsvm guide the paper
follows prescribes scaling features before training; the same scaler
fitted on training data must be applied to test data.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler"]


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled so
    they do not blow up to NaN — common here, e.g. a fold in which every
    app has a category.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ValueError("expected a 2-D sample matrix")
        if len(x) == 0:
            raise ValueError("cannot fit a scaler on zero samples")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        x = np.asarray(x, dtype=float)
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
