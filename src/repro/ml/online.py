"""Windowed, warm-started retraining for the drift response loop.

The lifecycle's challenger models are retrained on a sliding window of
recently labelled feature rows.  Two properties matter:

* **warm start** — the previous champion's dual vector seeds the SMO
  solve for the samples both windows share (new samples start at 0, and
  the seed is projected back onto the feasible set); the QP is convex,
  so the warm solve converges to the same decision function a cold
  retrain would, just in fewer iterations, and
* **determinism** — the window contents and the warm seed are pure
  functions of the pushed batches, so the same epoch stream always
  produces the same challenger.

Rows are *already extracted* feature matrices, not records: each epoch
extracts its own features with the knowledge the defender had at
observation time, and the trainer never re-extracts history.
"""

from __future__ import annotations

import numpy as np

from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC

__all__ = ["WindowModel", "SlidingWindowTrainer", "carry_alphas"]


class WindowModel:
    """Scaler + SVC over a feature matrix, warm-startable.

    The matrix-level sibling of
    :class:`~repro.core.frappe.FrappeClassifier`: same standardise-then-
    RBF-SVM machine, but consuming pre-extracted feature rows so windows
    can span epochs whose extractors differ.
    """

    def __init__(
        self,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: str | float = "auto",
    ) -> None:
        self._svm_params = {"c": c, "kernel": kernel, "gamma": gamma}
        self._scaler: StandardScaler | None = None
        self._svm: SVC | None = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        init_alphas: np.ndarray | None = None,
    ) -> "WindowModel":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y).astype(int)
        self._scaler = StandardScaler().fit(x)
        self._svm = SVC(**self._svm_params).fit(
            self._scaler.transform(x), y, init_alphas=init_alphas
        )
        return self

    @property
    def svm(self) -> SVC:
        if self._svm is None:
            raise RuntimeError("model is not fitted")
        return self._svm

    @property
    def alphas(self) -> np.ndarray | None:
        return None if self._svm is None else self._svm.alphas_

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._svm is None or self._scaler is None:
            raise RuntimeError("model is not fitted")
        return self._svm.decision_function(self._scaler.transform(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0.0).astype(int)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        y = np.asarray(y).astype(int)
        if len(y) == 0:
            return 0.0
        return float((self.predict(x) == y).mean())


def carry_alphas(
    previous_alphas: np.ndarray | None,
    previous_lengths: list[int],
    current_lengths: list[int],
    carried_batches: int,
) -> np.ndarray | None:
    """Map a previous window's dual vector onto the new window's rows.

    Both windows are concatenations of per-epoch batches; the new
    window shares its first ``carried_batches`` batches with the *tail*
    of the previous window.  Carried rows keep their alphas, fresh rows
    start at 0.  Returns ``None`` when there is nothing to carry.
    """
    if previous_alphas is None or carried_batches <= 0:
        return None
    offset = sum(previous_lengths[:-carried_batches]) if carried_batches else 0
    carried = previous_alphas[offset:]
    n_new = sum(current_lengths)
    if len(carried) > n_new:
        return None
    seed = np.zeros(n_new)
    seed[: len(carried)] = carried
    return seed


class SlidingWindowTrainer:
    """Keeps the last ``window_epochs`` labelled batches and retrains.

    ``push`` appends one epoch's (matrix, labels); ``train`` fits a
    fresh :class:`WindowModel` over the concatenated window, seeding
    SMO with the previous fit's alphas for the carried batches.
    """

    def __init__(
        self,
        window_epochs: int = 3,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: str | float = "auto",
    ) -> None:
        if window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")
        self._window_epochs = int(window_epochs)
        self._svm_params = {"c": c, "kernel": kernel, "gamma": gamma}
        self._batches: list[tuple[np.ndarray, np.ndarray]] = []
        self._last_alphas: np.ndarray | None = None
        self._last_lengths: list[int] = []
        self.last_warm_start: bool = False

    def push(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y).astype(int).ravel()
        if len(x) != len(y):
            raise ValueError("x and y length mismatch")
        self._batches.append((x, y))
        if len(self._batches) > self._window_epochs:
            self._batches = self._batches[-self._window_epochs:]

    @property
    def window_size(self) -> int:
        return sum(len(y) for _, y in self._batches)

    def window(self) -> tuple[np.ndarray, np.ndarray]:
        if not self._batches:
            raise RuntimeError("no batches pushed")
        x = np.vstack([x for x, _ in self._batches])
        y = np.concatenate([y for _, y in self._batches])
        return x, y

    def train(self) -> WindowModel:
        x, y = self.window()
        lengths = [len(batch_y) for _, batch_y in self._batches]
        # The new window shares every batch except the newest with the
        # previous window's tail (the previous train saw batches
        # [.. k-1], this one sees [.. k]).
        carried_batches = min(len(lengths) - 1, len(self._last_lengths))
        seed = carry_alphas(
            self._last_alphas, self._last_lengths, lengths, carried_batches
        )
        model = WindowModel(**self._svm_params).fit(x, y, init_alphas=seed)
        self.last_warm_start = seed is not None
        self._last_alphas = model.alphas
        self._last_lengths = lengths
        return model
