"""Validating FRAppE's newly flagged apps (Sec 5.3, Table 8).

When FRAppE is applied to the unlabelled remainder of D-Total, there is
no ground truth for the apps it flags.  The paper validates the flags
with five complementary techniques, applied in order so each app is
counted once:

1. **deleted from the Facebook graph** — Facebook's own enforcement
   removed the app by the October re-check,
2. **app-name similarity** — identical name to known malicious apps
   (including the version-suffix pattern 'Profile Watchers v4.32'),
3. **posted-link similarity** — the app posted a URL also posted by a
   known malicious app (same spam campaign),
4. **typosquatting** of a popular app's name,
5. **manual verification** — remaining apps are clustered by identical
   name and one representative of every cluster larger than four is
   inspected by an analyst (simulated here by consulting the hidden
   ground-truth label of the representative — the stand-in for a
   human expert examining the app).

The same machinery also bounds the false-positive rate of the training
labels themselves (the paper's ≤ 2.6% bound).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.crawler.datasets import DatasetBundle
from repro.text.typosquat import is_typosquat, strip_version_suffix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["ValidationResult", "FlagValidator"]

#: Order of techniques, as in Table 8.
TECHNIQUES = (
    "deleted_from_graph",
    "app_name_similarity",
    "posted_link_similarity",
    "typosquatting",
    "manual_verification",
)


@dataclass(frozen=True)
class ValidationResult:
    """Per-technique and cumulative validation counts (Table 8)."""

    n_flagged: int
    #: technique -> apps validated by the technique (not cumulative;
    #: each counts apps validated by this technique regardless of order)
    validated_by: dict[str, set[str]]

    @property
    def validated(self) -> set[str]:
        out: set[str] = set()
        for apps in self.validated_by.values():
            out |= apps
        return out

    @property
    def unknown(self) -> int:
        return self.n_flagged - len(self.validated)

    @property
    def validated_fraction(self) -> float:
        if self.n_flagged == 0:
            return 0.0
        return len(self.validated) / self.n_flagged

    def table8_rows(self) -> list[tuple[str, int, int]]:
        """(technique, validated-by-technique, cumulative) rows."""
        rows: list[tuple[str, int, int]] = []
        cumulative: set[str] = set()
        for technique in TECHNIQUES:
            apps = self.validated_by.get(technique, set())
            cumulative |= apps
            rows.append((technique, len(apps), len(cumulative)))
        return rows


class FlagValidator:
    """Implements the five validation techniques over a world."""

    def __init__(
        self,
        world: "SimulatedWorld",
        bundle: DatasetBundle,
        popular_names: set[str] | None = None,
    ) -> None:
        self._world = world
        self._bundle = bundle
        self._names = world.post_log.app_names()
        self._known_names = self._collect_known_names()
        self._known_version_bases = self._collect_version_bases()
        self._known_urls = self._collect_known_urls()
        self._popular_names = popular_names or self._default_popular_names()

    # -- reference corpora from the known-malicious sample ----------------

    def _collect_known_names(self) -> Counter[str]:
        return Counter(
            self._names[a]
            for a in self._bundle.d_sample_malicious
            if a in self._names
        )

    def _collect_version_bases(self) -> Counter[str]:
        bases: Counter[str] = Counter()
        for name in self._known_names:
            base, had_version = strip_version_suffix(name)
            if had_version:
                bases[base] += 1
        return bases

    def _collect_known_urls(self) -> set[str]:
        urls: set[str] = set()
        for app_id in self._bundle.d_sample_malicious:
            urls.update(self._world.post_log.urls_of_app(app_id))
        return urls

    def _default_popular_names(self) -> set[str]:
        """Names of the most popular apps (by observed post volume)."""
        log = self._world.post_log
        ranked = sorted(
            self._bundle.d_total, key=log.post_count, reverse=True
        )
        return {
            self._names[a] for a in ranked[:100] if a in self._names
        }

    # -- techniques -----------------------------------------------------------

    def _deleted_from_graph(self, app_id: str) -> bool:
        return not self._world.graph_api.exists(
            app_id, day=self._world.schedule.validation_day
        )

    def _app_name_similarity(self, app_id: str) -> bool:
        name = self._names.get(app_id)
        if name is None:
            return False
        if self._known_names.get(name, 0) >= 1:
            return True
        base, had_version = strip_version_suffix(name)
        return had_version and self._known_version_bases.get(base, 0) >= 2

    def _posted_link_similarity(self, app_id: str) -> bool:
        urls = self._world.post_log.urls_of_app(app_id)
        return any(url in self._known_urls for url in urls)

    def _typosquatting(self, app_id: str) -> bool:
        name = self._names.get(app_id)
        if name is None:
            return False
        return is_typosquat(name, self._popular_names)

    def _manual_clusters(self, remaining: set[str], min_cluster: int = 5) -> set[str]:
        """Simulated analyst pass over name clusters of the remainder."""
        clusters: dict[str, list[str]] = {}
        for app_id in remaining:
            name = self._names.get(app_id)
            if name is not None:
                clusters.setdefault(name, []).append(app_id)
        validated: set[str] = set()
        registry = self._world.registry
        for name, members in clusters.items():
            if len(members) < min_cluster:
                continue
            representative = registry.maybe_get(sorted(members)[0])
            # The analyst inspects one app per cluster; the hidden label
            # stands in for that human judgement.
            if representative is not None and representative.truth_malicious:
                validated.update(members)
        return validated

    # -- entry points ---------------------------------------------------------------

    def validate(self, flagged: set[str]) -> ValidationResult:
        """Run all five techniques over the flagged set, in order."""
        validated_by: dict[str, set[str]] = {t: set() for t in TECHNIQUES}
        for app_id in flagged:
            if self._deleted_from_graph(app_id):
                validated_by["deleted_from_graph"].add(app_id)
            if self._app_name_similarity(app_id):
                validated_by["app_name_similarity"].add(app_id)
            if self._posted_link_similarity(app_id):
                validated_by["posted_link_similarity"].add(app_id)
            if self._typosquatting(app_id):
                validated_by["typosquatting"].add(app_id)
        remaining = flagged - set().union(*validated_by.values())
        validated_by["manual_verification"] = self._manual_clusters(remaining)
        return ValidationResult(n_flagged=len(flagged), validated_by=validated_by)

    def ground_truth_bound(self) -> float:
        """Upper bound on the training labels' FP rate (Sec 5.3).

        Of the D-Sample malicious apps: those deleted by the October
        re-check, plus those sharing a name with a deleted one, are
        independently corroborated.  The rest bound the FP rate.
        """
        sample = self._bundle.d_sample_malicious
        if not sample:
            return 0.0
        deleted = {a for a in sample if self._deleted_from_graph(a)}
        deleted_names = {
            self._names[a] for a in deleted if a in self._names
        }
        corroborated = set(deleted)
        for app_id in sample - deleted:
            if self._names.get(app_id) in deleted_names:
                corroborated.add(app_id)
        return 1.0 - len(corroborated) / len(sample)
