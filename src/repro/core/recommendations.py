"""The paper's recommendations to Facebook, as enforceable policies.

Sec 7 proposes two platform changes:

a. **Breaking the cycle of app propagation** — apps should not be
   allowed to promote other apps.  :class:`PromotionBlocker` screens a
   post stream and drops posts whose link resolves to another app's
   installation page or to a known indirection website.

b. **Stricter app authentication before posting** —
   :class:`PromptFeedAuthenticator` wraps the vulnerable
   ``prompt_feed`` endpoint and rejects posts whose caller cannot
   present a valid OAuth token for the app named in ``api_key``.

Both are counterfactual instruments: the ablation benchmarks rebuild
the collusion graph and the piggybacking signature with a policy
enabled and show the attack surface collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.platform.graph_api import GraphApi
from repro.platform.oauth import TokenService
from repro.platform.posts import Post
from repro.urlinfra.redirector import RedirectorNetwork
from repro.urlinfra.shortener import Shortener
from repro.urlinfra.url import Url

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = [
    "PromotionBlocker",
    "PromptFeedAuthenticator",
    "PolicyReport",
]

_INSTALL_PATH = "/apps/application.php"


@dataclass
class PolicyReport:
    """What a policy pass over a post stream did."""

    posts_seen: int = 0
    posts_blocked: int = 0
    #: post_id -> reason
    blocked: dict[int, str] = field(default_factory=dict)

    @property
    def blocked_fraction(self) -> float:
        if self.posts_seen == 0:
            return 0.0
        return self.posts_blocked / self.posts_seen

    def block(self, post: Post, reason: str) -> None:
        self.posts_blocked += 1
        self.blocked[post.post_id] = reason


class PromotionBlocker:
    """Recommendation (a): apps must not promote other apps.

    A post made by app A is blocked when its link — after expanding
    shortened URLs through the shorteners' APIs — resolves to the
    installation URL of a *different* app, or to a known indirection
    website.  Self-promotion is allowed (an app advertising itself is
    legitimate marketing).
    """

    def __init__(
        self,
        shorteners: dict[str, Shortener],
        redirector: RedirectorNetwork | None = None,
    ) -> None:
        self._shorteners = shorteners
        self._redirector = redirector

    def _expand(self, url: str) -> str | None:
        for shortener in self._shorteners.values():
            if shortener.owns(url):
                return shortener.expand(url)
        return url

    def verdict(self, post: Post) -> str | None:
        """Reason for blocking *post*, or ``None`` to allow it."""
        if post.link is None or post.app_id is None:
            return None
        long_url = self._expand(post.link)
        if long_url is None:
            return None  # dead short link: nothing to promote
        if self._redirector is not None and self._redirector.is_indirection(
            long_url
        ):
            return "link forwards to app installation pages"
        try:
            parsed = Url.parse(long_url)
        except ValueError:
            return None
        if parsed.domain == "facebook.com" and parsed.path == _INSTALL_PATH:
            target = parsed.params.get("id")
            if target and target != post.app_id:
                return f"app promotes another app ({target})"
        return None

    def screen(self, posts) -> PolicyReport:
        """Apply the policy to an iterable of posts."""
        report = PolicyReport()
        for post in posts:
            report.posts_seen += 1
            reason = self.verdict(post)
            if reason is not None:
                report.block(post, reason)
        return report


class PromptFeedAuthenticator:
    """Recommendation (b): authenticate the poster of prompt_feed.

    Wraps :meth:`GraphApi.prompt_feed` and requires a bearer token that
    (i) validates, and (ii) was issued to the app named in ``api_key``
    with posting permission.  Hackers holding tokens for *their own*
    apps can no longer attribute posts to FarmVille.
    """

    def __init__(self, graph_api: GraphApi, tokens: TokenService) -> None:
        self._graph_api = graph_api
        self._tokens = tokens
        self.rejected = 0

    def prompt_feed(
        self,
        api_key: str,
        bearer_token: str,
        user_id: int,
        message: str,
        link: str | None,
        day: int,
        **kwargs,
    ) -> Post:
        token = self._tokens.validate(bearer_token)
        if token is None:
            self.rejected += 1
            raise PermissionError("invalid or revoked access token")
        if token.app_id != api_key:
            self.rejected += 1
            raise PermissionError(
                f"token belongs to app {token.app_id}, not {api_key}"
            )
        if not token.allows("publish_stream") and not token.allows(
            "publish_actions"
        ):
            self.rejected += 1
            raise PermissionError("token lacks posting permission")
        return self._graph_api.prompt_feed(
            api_key=api_key,
            user_id=user_id,
            message=message,
            link=link,
            day=day,
            **kwargs,
        )


def simulate_policy_rollout(world: "SimulatedWorld") -> PolicyReport:
    """Counterfactual: screen the whole observed corpus with policy (a).

    Returns the report; callers can rebuild the collusion graph over
    the surviving posts to quantify the AppNet collapse.
    """
    blocker = PromotionBlocker(
        world.services.shorteners, world.services.redirector
    )
    return blocker.screen(world.post_log)
