"""The end-to-end FRAppE pipeline.

Chains the complete measurement study: simulate the world → run
MyPageKeeper over the post log → build the datasets (Table 1) → extract
features → train FRAppE on D-Sample → sweep the unlabelled remainder of
D-Total (Sec 5.3) → validate the flags (Table 8).

Every benchmark and example consumes a :class:`PipelineResult`, so the
expensive steps run once per configuration.

All crawling goes through one transport built from the configuration
(:func:`~repro.crawler.crawler.make_crawler`): with
``ScaleConfig.fault_rate == 0`` that is the fault-free direct transport
and the study is exactly the paper's; with a positive rate the crawler
fights injected rate limits, 5xx errors, timeouts, truncated feeds, and
mid-crawl deletions, and the classification of records it could not
fully recover degrades through the :class:`FrappeCascade` tiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ScaleConfig
from repro.core.features import FeatureExtractor
from repro.core.frappe import FrappeCascade, FrappeClassifier, frappe
from repro.core.validation import FlagValidator, ValidationResult
from repro.crawler.checkpoint import CrawlJournal
from repro.crawler.crawler import AppCrawler, CrawlRecord, make_crawler
from repro.crawler.datasets import DatasetBuilder, DatasetBundle
from repro.ecosystem.params import GenerationParams
from repro.ecosystem.simulation import CrawlSchedule, SimulatedWorld, run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MonitorReport, MyPageKeeper
from repro.platform.transport import TransportStats

__all__ = ["PipelineResult", "FrappePipeline"]


@dataclass
class PipelineResult:
    """Everything the study produced, in dependency order."""

    world: SimulatedWorld
    monitor_report: MonitorReport
    bundle: DatasetBundle
    extractor: FeatureExtractor
    classifier: FrappeClassifier
    #: crawl records of the unlabelled (non-D-Sample) apps
    unlabelled_records: dict[str, CrawlRecord] = field(default_factory=dict)
    #: apps FRAppE flagged in the unlabelled remainder
    flagged_new: set[str] = field(default_factory=set)
    validation: ValidationResult | None = None
    #: the degradation cascade (present when fault injection is on)
    cascade: FrappeCascade | None = None
    #: requests / injected faults / simulated latency of every crawl
    transport_stats: TransportStats | None = None

    def sample_records(self) -> tuple[list[CrawlRecord], list[int]]:
        """(records, labels) over D-Sample, in a stable order."""
        records, labels = [], []
        for app_id in sorted(self.bundle.d_sample):
            records.append(self.bundle.records[app_id])
            labels.append(self.bundle.label(app_id))
        return records, labels

    def complete_records(self) -> tuple[list[CrawlRecord], list[int]]:
        """(records, labels) over D-Complete — the CV training set."""
        benign, malicious = self.bundle.d_complete
        records, labels = [], []
        for app_id in sorted(benign | malicious):
            records.append(self.bundle.records[app_id])
            labels.append(1 if app_id in malicious else 0)
        return records, labels


class FrappePipeline:
    """Builds and runs the complete study."""

    def __init__(
        self,
        config: ScaleConfig | None = None,
        params: GenerationParams | None = None,
        schedule: CrawlSchedule | None = None,
    ) -> None:
        self._config = config or ScaleConfig()
        self._params = params or GenerationParams()
        self._schedule = schedule or CrawlSchedule()

    def run(self, sweep_unlabelled: bool = True) -> PipelineResult:
        world = run_simulation(self._config, self._params, self._schedule)
        return self.run_on_world(world, sweep_unlabelled=sweep_unlabelled)

    def run_on_world(
        self, world: SimulatedWorld, sweep_unlabelled: bool = True
    ) -> PipelineResult:
        """Run the measurement chain over an already built world.

        With ``ScaleConfig.checkpoint_dir`` set, all crawling (D-Sample
        and the unlabelled sweep) runs against one crash-safe
        :class:`~repro.crawler.checkpoint.CrawlJournal`: kill the
        process anywhere, re-run the same configuration with
        ``resume=True``, and the study completes with records — and an
        exported dataset — byte-identical to an uninterrupted run.
        With ``checkpoint_dir=None`` the pipeline is bit-identical to a
        journal-less build.
        """
        journal = self._open_journal(world)
        try:
            return self._run_on_world(world, sweep_unlabelled, journal)
        finally:
            if journal is not None:
                journal.close()

    def _open_journal(self, world: SimulatedWorld) -> CrawlJournal | None:
        config = world.config
        if not config.checkpoint_dir:
            return None
        return CrawlJournal(
            config.checkpoint_dir,
            snapshot_every=config.checkpoint_every,
            resume=config.resume,
        )

    def _run_on_world(
        self,
        world: SimulatedWorld,
        sweep_unlabelled: bool,
        journal: CrawlJournal | None,
    ) -> PipelineResult:
        url_classifier = UrlClassifier(world.services.blacklist)
        report = MyPageKeeper(url_classifier, world.post_log).scan()
        # One crawler (hence one transport and fault state) serves both
        # the D-Sample crawl and the unlabelled sweep, so the stats
        # describe the whole study and a mid-crawl deletion stays gone.
        crawler = make_crawler(world)
        bundle = DatasetBuilder(world, report).build(
            crawl=True,
            crawler=crawler,
            journal=journal,
            workers=world.config.crawl_workers,
            processes=world.config.crawl_processes,
        )
        extractor = self.make_extractor(world, bundle)

        records, labels = [], []
        for app_id in sorted(bundle.d_sample):
            records.append(bundle.records[app_id])
            labels.append(bundle.label(app_id))
        faulted = world.config.fault_rate > 0.0
        cascade = None
        if faulted:
            cascade = FrappeCascade(extractor).fit(records, labels)
            classifier = cascade.full
        else:
            classifier = frappe(extractor).fit(records, labels)

        result = PipelineResult(
            world=world,
            monitor_report=report,
            bundle=bundle,
            extractor=extractor,
            classifier=classifier,
            cascade=cascade,
            transport_stats=crawler.stats,
        )
        if sweep_unlabelled:
            self._sweep_unlabelled(result, crawler, journal)
        return result

    @staticmethod
    def make_extractor(
        world: SimulatedWorld, bundle: DatasetBundle
    ) -> FeatureExtractor:
        """Wire the feature extractor's aggregation context."""
        malicious_names = FeatureExtractor.name_counter(
            bundle.records, bundle.d_sample_malicious
        )
        # Names of apps whose summary crawl failed come from post
        # metadata — how the paper knows the names of deleted apps.
        id_to_name = world.post_log.app_names()
        for name_source_id in bundle.d_sample_malicious:
            record = bundle.records.get(name_source_id)
            if record is not None and not record.name:
                observed = id_to_name.get(name_source_id)
                if observed:
                    malicious_names[observed] += 1
        return FeatureExtractor(
            wot=world.services.wot,
            post_log=world.post_log,
            malicious_names=malicious_names,
            known_malicious_ids=set(bundle.d_sample_malicious),
            id_to_name=id_to_name,
        )

    def _sweep_unlabelled(
        self,
        result: PipelineResult,
        crawler: AppCrawler,
        journal: CrawlJournal | None = None,
    ) -> None:
        """Apply FRAppE to every D-Total app outside D-Sample (Sec 5.3).

        Under fault injection the sweep routes each record through the
        cascade, so transiently degraded crawls are judged by the tier
        their surviving collections support instead of by imputed zeros.
        """
        unlabelled = result.bundle.d_total - result.bundle.d_sample
        result.unlabelled_records = crawler.crawl_many(
            unlabelled,
            journal=journal,
            workers=result.world.config.crawl_workers,
            processes=result.world.config.crawl_processes,
        )
        ordered = sorted(result.unlabelled_records)
        records = [result.unlabelled_records[a] for a in ordered]
        if records:
            model = result.cascade or result.classifier
            predictions = model.predict(records)
            result.flagged_new = {
                app_id for app_id, hit in zip(ordered, predictions) if hit
            }
        validator = FlagValidator(result.world, result.bundle)
        result.validation = validator.validate(result.flagged_new)
