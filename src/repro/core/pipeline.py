"""The end-to-end FRAppE pipeline.

Chains the complete measurement study: simulate the world → run
MyPageKeeper over the post log → build the datasets (Table 1) → extract
features → train FRAppE on D-Sample → sweep the unlabelled remainder of
D-Total (Sec 5.3) → validate the flags (Table 8).

Every benchmark and example consumes a :class:`PipelineResult`, so the
expensive steps run once per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ScaleConfig
from repro.core.features import FeatureExtractor
from repro.core.frappe import FrappeClassifier, frappe
from repro.core.validation import FlagValidator, ValidationResult
from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.crawler.datasets import DatasetBuilder, DatasetBundle
from repro.ecosystem.params import GenerationParams
from repro.ecosystem.simulation import CrawlSchedule, SimulatedWorld, run_simulation
from repro.mypagekeeper.classifier import UrlClassifier
from repro.mypagekeeper.monitor import MonitorReport, MyPageKeeper

__all__ = ["PipelineResult", "FrappePipeline"]


@dataclass
class PipelineResult:
    """Everything the study produced, in dependency order."""

    world: SimulatedWorld
    monitor_report: MonitorReport
    bundle: DatasetBundle
    extractor: FeatureExtractor
    classifier: FrappeClassifier
    #: crawl records of the unlabelled (non-D-Sample) apps
    unlabelled_records: dict[str, CrawlRecord] = field(default_factory=dict)
    #: apps FRAppE flagged in the unlabelled remainder
    flagged_new: set[str] = field(default_factory=set)
    validation: ValidationResult | None = None

    def sample_records(self) -> tuple[list[CrawlRecord], list[int]]:
        """(records, labels) over D-Sample, in a stable order."""
        records, labels = [], []
        for app_id in sorted(self.bundle.d_sample):
            records.append(self.bundle.records[app_id])
            labels.append(self.bundle.label(app_id))
        return records, labels

    def complete_records(self) -> tuple[list[CrawlRecord], list[int]]:
        """(records, labels) over D-Complete — the CV training set."""
        benign, malicious = self.bundle.d_complete
        records, labels = [], []
        for app_id in sorted(benign | malicious):
            records.append(self.bundle.records[app_id])
            labels.append(1 if app_id in malicious else 0)
        return records, labels


class FrappePipeline:
    """Builds and runs the complete study."""

    def __init__(
        self,
        config: ScaleConfig | None = None,
        params: GenerationParams | None = None,
        schedule: CrawlSchedule | None = None,
    ) -> None:
        self._config = config or ScaleConfig()
        self._params = params or GenerationParams()
        self._schedule = schedule or CrawlSchedule()

    def run(self, sweep_unlabelled: bool = True) -> PipelineResult:
        world = run_simulation(self._config, self._params, self._schedule)
        return self.run_on_world(world, sweep_unlabelled=sweep_unlabelled)

    def run_on_world(
        self, world: SimulatedWorld, sweep_unlabelled: bool = True
    ) -> PipelineResult:
        """Run the measurement chain over an already built world."""
        url_classifier = UrlClassifier(world.services.blacklist)
        report = MyPageKeeper(url_classifier, world.post_log).scan()
        bundle = DatasetBuilder(world, report).build(crawl=True)
        extractor = self.make_extractor(world, bundle)

        classifier = frappe(extractor)
        records, labels = [], []
        for app_id in sorted(bundle.d_sample):
            records.append(bundle.records[app_id])
            labels.append(bundle.label(app_id))
        classifier.fit(records, labels)

        result = PipelineResult(
            world=world,
            monitor_report=report,
            bundle=bundle,
            extractor=extractor,
            classifier=classifier,
        )
        if sweep_unlabelled:
            self._sweep_unlabelled(result)
        return result

    @staticmethod
    def make_extractor(
        world: SimulatedWorld, bundle: DatasetBundle
    ) -> FeatureExtractor:
        """Wire the feature extractor's aggregation context."""
        malicious_names = FeatureExtractor.name_counter(
            bundle.records, bundle.d_sample_malicious
        )
        # Names of apps whose summary crawl failed come from post
        # metadata — how the paper knows the names of deleted apps.
        id_to_name = world.post_log.app_names()
        for name_source_id in bundle.d_sample_malicious:
            record = bundle.records.get(name_source_id)
            if record is not None and not record.name:
                observed = id_to_name.get(name_source_id)
                if observed:
                    malicious_names[observed] += 1
        return FeatureExtractor(
            wot=world.services.wot,
            post_log=world.post_log,
            malicious_names=malicious_names,
            known_malicious_ids=set(bundle.d_sample_malicious),
            id_to_name=id_to_name,
        )

    def _sweep_unlabelled(self, result: PipelineResult) -> None:
        """Apply FRAppE to every D-Total app outside D-Sample (Sec 5.3)."""
        unlabelled = result.bundle.d_total - result.bundle.d_sample
        crawler = AppCrawler(result.world)
        result.unlabelled_records = crawler.crawl_many(unlabelled)
        ordered = sorted(result.unlabelled_records)
        records = [result.unlabelled_records[a] for a in ordered]
        if records:
            predictions = result.classifier.predict(records)
            result.flagged_new = {
                app_id for app_id, hit in zip(ordered, predictions) if hit
            }
        validator = FlagValidator(result.world, result.bundle)
        result.validation = validator.validate(result.flagged_new)
