"""The FRAppE classifiers (Secs 5.1, 5.2, 7).

All variants are the same machine — an RBF SVM with libsvm-default
parameters (C = 1) over standardised features — differing only in which
feature group they consume:

* :func:`frappe_lite` — on-demand features only (Table 4),
* :func:`frappe` — on-demand + aggregation-based features (Table 7),
* :func:`frappe_robust` — only the features Sec 7 argues hackers cannot
  cheaply obfuscate,
* ``FrappeClassifier(extractor, features=("has_description",))`` — the
  single-feature classifiers of Table 6.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import (
    ALL_FEATURES,
    ON_DEMAND_FEATURES,
    ROBUST_FEATURES,
    TIER_FEATURES,
    FeatureExtractor,
    classification_tier,
)
from repro.crawler.crawler import CrawlRecord
from repro.ml.crossval import cross_validate, subsample_to_ratio
from repro.ml.metrics import ClassificationReport
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC

__all__ = [
    "FrappeClassifier",
    "FrappeCascade",
    "frappe_lite",
    "frappe",
    "frappe_robust",
]


class FrappeClassifier:
    """SVM over a configurable feature group."""

    def __init__(
        self,
        extractor: FeatureExtractor,
        features: tuple[str, ...] = ALL_FEATURES,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: str | float = "auto",
    ) -> None:
        if not features:
            raise ValueError("need at least one feature")
        self.features = tuple(features)
        self._extractor = extractor
        self._svm_params = {"c": c, "kernel": kernel, "gamma": gamma}
        self._scaler: StandardScaler | None = None
        self._svm: SVC | None = None

    def _matrix(self, records: list[CrawlRecord]) -> np.ndarray:
        return self._extractor.matrix(records, self.features)

    # -- training / inference ----------------------------------------------

    def fit(
        self,
        records: list[CrawlRecord],
        labels: np.ndarray | list[int],
        init_alphas: np.ndarray | None = None,
    ) -> "FrappeClassifier":
        """Fit; ``init_alphas`` warm-starts SMO from a previous model's
        dual vector (aligned with ``records``; ``None`` is the exact
        historical cold-start path)."""
        x = self._matrix(records)
        y = np.asarray(labels).astype(int)
        self._scaler = StandardScaler().fit(x)
        self._svm = SVC(**self._svm_params).fit(
            self._scaler.transform(x), y, init_alphas=init_alphas
        )
        return self

    @property
    def svm(self) -> SVC:
        """The fitted SVM (exposes ``alphas_`` for warm-started retrains)."""
        if self._svm is None:
            raise RuntimeError("classifier is not fitted")
        return self._svm

    def predict(self, records: list[CrawlRecord]) -> np.ndarray:
        if self._svm is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted")
        x = self._scaler.transform(self._matrix(records))
        return self._svm.predict(x)

    def predict_one(self, record: CrawlRecord) -> bool:
        """Evaluate a single app — the FRAppE Lite on-demand use case."""
        return bool(self.predict([record])[0])

    def decision_function(self, records: list[CrawlRecord]) -> np.ndarray:
        if self._svm is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted")
        return self._svm.decision_function(
            self._scaler.transform(self._matrix(records))
        )

    def margins_from_raw(self, x_raw: np.ndarray) -> np.ndarray:
        """Decision margins over an already extracted (unscaled) matrix.

        The batched service extracts one ``ALL_FEATURES`` matrix per
        tick and hands each tier model its row/column slice; scaling
        and the support-vector Gram happen here exactly as in
        :meth:`decision_function`, so the margins are bit-identical to
        extracting this model's features directly (the column builders
        are per-record functions, making any slice of the shared matrix
        equal to a direct extraction).
        """
        if self._svm is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted")
        return self._svm.decision_function(self._scaler.transform(x_raw))

    # -- evaluation ------------------------------------------------------------

    def cross_validate(
        self,
        records: list[CrawlRecord],
        labels: np.ndarray | list[int],
        k: int = 5,
        benign_per_malicious: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> ClassificationReport:
        """Stratified k-fold CV, optionally resampled to a class ratio.

        This is the paper's Table 5 protocol: subsample D-Complete to a
        benign:malicious ratio, then 5-fold cross-validate.
        """
        rng = rng or np.random.default_rng(5)
        x = self._matrix(records)
        y = np.asarray(labels).astype(int)
        if benign_per_malicious is not None:
            x, y = subsample_to_ratio(x, y, benign_per_malicious, rng)
        return cross_validate(
            lambda: SVC(**self._svm_params), x, y, k=k, rng=rng, scale=True
        )


class FrappeCascade:
    """FRAppE with graceful degradation over partially failed crawls.

    Holds one :class:`FrappeClassifier` per tier — full FRAppE, FRAppE
    Lite, and a summary-only last resort — all trained on the same
    labelled records, and routes each record to the best tier its crawl
    outcomes support (:func:`~repro.core.features.classification_tier`).
    Records whose summary crawl gave up transiently carry no trustworthy
    evidence at all; the cascade declines to condemn them (prediction 0,
    tier ``"none"``) and lets the caller surface the missing confidence.

    On records with no transient failures the cascade is exactly the
    full FRAppE classifier, so it is a drop-in replacement under a
    fault-free transport.
    """

    def __init__(self, extractor: FeatureExtractor, **svm_params) -> None:
        self._extractor = extractor
        self._models = {
            tier: FrappeClassifier(extractor, features, **svm_params)
            for tier, features in TIER_FEATURES.items()
        }

    @property
    def full(self) -> FrappeClassifier:
        """The all-features FRAppE model (the fault-free behaviour)."""
        return self._models["frappe"]

    def model(self, tier: str) -> FrappeClassifier:
        return self._models[tier]

    def fit(
        self, records: list[CrawlRecord], labels: np.ndarray | list[int]
    ) -> "FrappeCascade":
        for model in self._models.values():
            model.fit(records, labels)
        return self

    def tier_of(self, record: CrawlRecord) -> str:
        return classification_tier(record)

    def _tier_groups(
        self, records: list[CrawlRecord]
    ) -> dict[str, tuple[list[int], list[CrawlRecord]]]:
        """``tier -> (indices, sub-list)`` in first-seen tier order.

        Shared by :meth:`predict` and :meth:`score_batch`, so the tier
        of each record is computed once per batch and each tier's
        sub-list is allocated once, not once per consumer.
        """
        by_tier: dict[str, tuple[list[int], list[CrawlRecord]]] = {}
        for index, record in enumerate(records):
            tier = self.tier_of(record)
            group = by_tier.get(tier)
            if group is None:
                group = by_tier[tier] = ([], [])
            group[0].append(index)
            group[1].append(record)
        return by_tier

    def predict(self, records: list[CrawlRecord]) -> np.ndarray:
        """Per-record predictions, each routed through its tier's model."""
        predictions = np.zeros(len(records), dtype=int)
        for tier, (indices, subrecords) in self._tier_groups(records).items():
            if tier == "none":
                continue  # no trustworthy evidence: leave the 0
            predictions[indices] = self._models[tier].predict(subrecords)
        return predictions

    def predict_one(self, record: CrawlRecord) -> bool:
        return bool(self.predict([record])[0])

    def decision_function_one(self, record: CrawlRecord) -> tuple[float, str]:
        """(SVM margin, tier) for one record; margin 0 for tier ``none``."""
        tier = self.tier_of(record)
        if tier == "none":
            return 0.0, tier
        margin = float(self._models[tier].decision_function([record])[0])
        return margin, tier

    def score_batch(
        self, records: list[CrawlRecord]
    ) -> list[tuple[int, float, str]]:
        """(prediction, margin, tier) per record, one model pass per tier.

        Routes records exactly like :meth:`score_record` — same tier
        choice, same ``margin >= 0`` rule — but amortises the cost:
        one feature extraction over the whole batch (every tier's
        feature tuple is a prefix of ``ALL_FEATURES``, so a tier model
        scores a row/column slice of the shared matrix), one scaler
        transform and one support-vector Gram per *tier group*.  The
        column builders are per-record functions, so the slice holds
        the very same floats a direct per-tier extraction would — on a
        single record this reduces to the same arithmetic as
        :meth:`score_record`, and the two are bit-identical at batch
        size 1.
        """
        results: list[tuple[int, float, str]] = [(0, 0.0, "none")] * len(records)
        groups = [
            (self._models[tier], indices, subrecords, tier)
            for tier, (indices, subrecords) in self._tier_groups(records).items()
            if tier != "none"
        ]
        fused = [
            group for group in groups
            if group[0].features == ALL_FEATURES[: len(group[0].features)]
        ]
        matrix = None
        if fused:
            scorable = [
                record
                for _, _, subrecords, _ in fused
                for record in subrecords
            ]
            matrix = self._extractor.matrix(scorable, ALL_FEATURES)
        offset = 0
        for model, indices, subrecords, tier in groups:
            if matrix is not None and model.features == ALL_FEATURES[
                : len(model.features)
            ]:
                rows = matrix[
                    offset : offset + len(indices), : len(model.features)
                ]
                offset += len(indices)
                margins = model.margins_from_raw(rows)
            else:
                # A model whose features are not an ALL_FEATURES prefix
                # (e.g. forensic-extended) extracts its own matrix.
                margins = model.decision_function(subrecords)
            for index, margin in zip(indices, margins):
                value = float(margin)
                results[index] = (int(value >= 0.0), value, tier)
        return results

    def score_record(self, record: CrawlRecord) -> tuple[int, float, str]:
        """(prediction, margin, tier) for one record, in one pass.

        The prediction is derived from the margin with the same
        ``margin >= 0`` rule :meth:`FrappeClassifier.predict` applies,
        so it is bit-identical to ``predict([record])[0]`` — the online
        service leans on that equivalence for its fault-free contract.
        Tier ``none`` declines to condemn: prediction 0, margin 0.
        """
        margin, tier = self.decision_function_one(record)
        if tier == "none":
            return 0, 0.0, tier
        return int(margin >= 0.0), margin, tier


def frappe_lite(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """FRAppE Lite: the on-demand-features-only variant (Sec 5.1)."""
    return FrappeClassifier(extractor, ON_DEMAND_FEATURES, **svm_params)


def frappe(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """Full FRAppE: on-demand + aggregation features (Sec 5.2)."""
    return FrappeClassifier(extractor, ALL_FEATURES, **svm_params)


def frappe_robust(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """The robust-features-only variant discussed in Sec 7."""
    return FrappeClassifier(extractor, ROBUST_FEATURES, **svm_params)
