"""The FRAppE classifiers (Secs 5.1, 5.2, 7).

All variants are the same machine — an RBF SVM with libsvm-default
parameters (C = 1) over standardised features — differing only in which
feature group they consume:

* :func:`frappe_lite` — on-demand features only (Table 4),
* :func:`frappe` — on-demand + aggregation-based features (Table 7),
* :func:`frappe_robust` — only the features Sec 7 argues hackers cannot
  cheaply obfuscate,
* ``FrappeClassifier(extractor, features=("has_description",))`` — the
  single-feature classifiers of Table 6.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import (
    ALL_FEATURES,
    ON_DEMAND_FEATURES,
    ROBUST_FEATURES,
    FeatureExtractor,
)
from repro.crawler.crawler import CrawlRecord
from repro.ml.crossval import cross_validate, subsample_to_ratio
from repro.ml.metrics import ClassificationReport
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC

__all__ = ["FrappeClassifier", "frappe_lite", "frappe", "frappe_robust"]


class FrappeClassifier:
    """SVM over a configurable feature group."""

    def __init__(
        self,
        extractor: FeatureExtractor,
        features: tuple[str, ...] = ALL_FEATURES,
        c: float = 1.0,
        kernel: str = "rbf",
        gamma: str | float = "auto",
    ) -> None:
        if not features:
            raise ValueError("need at least one feature")
        self.features = tuple(features)
        self._extractor = extractor
        self._svm_params = {"c": c, "kernel": kernel, "gamma": gamma}
        self._scaler: StandardScaler | None = None
        self._svm: SVC | None = None

    def _matrix(self, records: list[CrawlRecord]) -> np.ndarray:
        return self._extractor.matrix(records, self.features)

    # -- training / inference ----------------------------------------------

    def fit(
        self, records: list[CrawlRecord], labels: np.ndarray | list[int]
    ) -> "FrappeClassifier":
        x = self._matrix(records)
        y = np.asarray(labels).astype(int)
        self._scaler = StandardScaler().fit(x)
        self._svm = SVC(**self._svm_params).fit(self._scaler.transform(x), y)
        return self

    def predict(self, records: list[CrawlRecord]) -> np.ndarray:
        if self._svm is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted")
        x = self._scaler.transform(self._matrix(records))
        return self._svm.predict(x)

    def predict_one(self, record: CrawlRecord) -> bool:
        """Evaluate a single app — the FRAppE Lite on-demand use case."""
        return bool(self.predict([record])[0])

    def decision_function(self, records: list[CrawlRecord]) -> np.ndarray:
        if self._svm is None or self._scaler is None:
            raise RuntimeError("classifier is not fitted")
        return self._svm.decision_function(
            self._scaler.transform(self._matrix(records))
        )

    # -- evaluation ------------------------------------------------------------

    def cross_validate(
        self,
        records: list[CrawlRecord],
        labels: np.ndarray | list[int],
        k: int = 5,
        benign_per_malicious: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> ClassificationReport:
        """Stratified k-fold CV, optionally resampled to a class ratio.

        This is the paper's Table 5 protocol: subsample D-Complete to a
        benign:malicious ratio, then 5-fold cross-validate.
        """
        rng = rng or np.random.default_rng(5)
        x = self._matrix(records)
        y = np.asarray(labels).astype(int)
        if benign_per_malicious is not None:
            x, y = subsample_to_ratio(x, y, benign_per_malicious, rng)
        return cross_validate(
            lambda: SVC(**self._svm_params), x, y, k=k, rng=rng, scale=True
        )


def frappe_lite(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """FRAppE Lite: the on-demand-features-only variant (Sec 5.1)."""
    return FrappeClassifier(extractor, ON_DEMAND_FEATURES, **svm_params)


def frappe(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """Full FRAppE: on-demand + aggregation features (Sec 5.2)."""
    return FrappeClassifier(extractor, ALL_FEATURES, **svm_params)


def frappe_robust(extractor: FeatureExtractor, **svm_params) -> FrappeClassifier:
    """The robust-features-only variant discussed in Sec 7."""
    return FrappeClassifier(extractor, ROBUST_FEATURES, **svm_params)
