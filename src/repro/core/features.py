"""FRAppE's feature extraction (Sec 4, Tables 4 and 7).

Two feature classes:

* **on-demand** — computable from a single crawl of the app ID
  (summary completeness, profile-feed posts, permission count,
  client-ID mismatch, WOT reputation of the redirect URI).  These feed
  FRAppE Lite.
* **aggregation-based** — requiring a cross-user, cross-app view over
  time (name similarity to known malicious apps, external-link-to-post
  ratio).  These additionally feed full FRAppE.

Sec 7 singles out the subset that hackers cannot cheaply obfuscate;
:data:`ROBUST_FEATURES` is that subset.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

import numpy as np

from repro.crawler.crawler import CrawlRecord
from repro.urlinfra.url import is_facebook_url
from repro.urlinfra.wot import WotService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.platform.posts import PostLog

__all__ = [
    "ON_DEMAND_FEATURES",
    "AGGREGATION_FEATURES",
    "ALL_FEATURES",
    "ROBUST_FEATURES",
    "SUMMARY_ONLY_FEATURES",
    "FORENSIC_FEATURES",
    "TIER_FEATURES",
    "CONFIDENCE_BY_TIER",
    "classification_tier",
    "FeatureExtractor",
]

#: Table 4 — FRAppE Lite's inputs, crawlable on demand from an app ID.
ON_DEMAND_FEATURES: tuple[str, ...] = (
    "has_category",
    "has_company",
    "has_description",
    "has_profile_posts",
    "permission_count",
    "client_id_mismatch",
    "wot_score",
)

#: Table 7 — the cross-user/cross-app additions used by full FRAppE.
AGGREGATION_FEATURES: tuple[str, ...] = (
    "name_matches_malicious",
    "external_link_ratio",
)

ALL_FEATURES: tuple[str, ...] = ON_DEMAND_FEATURES + AGGREGATION_FEATURES

#: Sec 7 — features robust to hacker adaptation: obfuscating any of
#: these costs the hacker victims or campaign capability.
ROBUST_FEATURES: tuple[str, ...] = (
    "permission_count",
    "client_id_mismatch",
    "wot_score",
    "name_matches_malicious",
    "external_link_ratio",
)

#: The last-resort feature set when only the summary crawl is usable.
SUMMARY_ONLY_FEATURES: tuple[str, ...] = (
    "has_category",
    "has_company",
    "has_description",
)

#: Temporal-forensics columns produced by the continuous monitor
#: (:mod:`repro.crawler.monitor`): per-app counts of observed lifecycle
#: events.  **Not** part of :data:`ALL_FEATURES` — they only exist for
#: apps with monitoring history, so the one-shot pipeline (and every
#: seed artifact) is untouched unless a caller opts in via
#: :meth:`FeatureExtractor.set_forensics`.
FORENSIC_FEATURES: tuple[str, ...] = (
    "forensic_event_count",
    "forensic_deletion",
    "forensic_rename",
    "forensic_permission_change",
    "forensic_post_collapse",
)

# -- degraded-crawl classification tiers -----------------------------------
#
# A crawl collection can be missing for two very different reasons:
#
# * *authoritatively* — the app is removed, or its install flow is
#   human-only.  The paper treats this absence as a feature in itself
#   (Sec 4.1: malicious apps are exactly the ones with empty summaries),
#   so the default 0/-1 encodings stand and the full model applies;
# * *transiently* — the crawler exhausted its retry budget.  The zeros
#   would be lies, so classification falls back to a model trained on
#   the features the surviving collections can vouch for:
#   FRAppE -> FRAppE Lite -> summary-only -> none.

#: classifier tier -> feature set it consumes ("none": no model applies)
TIER_FEATURES: dict[str, tuple[str, ...]] = {
    "frappe": ALL_FEATURES,
    "lite": ON_DEMAND_FEATURES,
    "summary_only": SUMMARY_ONLY_FEATURES,
}

#: classifier tier -> the confidence surfaced in watchdog assessments
CONFIDENCE_BY_TIER: dict[str, str] = {
    "frappe": "high",
    "lite": "medium",
    "summary_only": "low",
    "none": "none",
}


def classification_tier(record: CrawlRecord) -> str:
    """Which classifier tier a (possibly degraded) crawl record supports.

    Only *transient* give-ups degrade the tier; authoritative failures
    keep the record on the full-FRAppE path, where missingness is
    itself a signal.  Records without outcome bookkeeping (e.g. loaded
    from an export) are treated as authoritative.
    """
    if record.gave_up("summary"):
        return "none"
    if record.gave_up("feed") and record.gave_up("install"):
        return "summary_only"
    if record.gave_up("feed") or record.gave_up("install"):
        return "lite"
    return "frappe"


class FeatureExtractor:
    """Turns crawl records (+ post-log context) into feature vectors.

    The aggregation features need a reference corpus: ``malicious_names``
    counts how many *known* malicious apps carry each name.  When
    extracting for an app that itself contributed to those counts
    (training on D-Sample), pass its IDs via ``known_malicious_ids`` so
    the app's own contribution is subtracted — the feature asks about
    *other* apps sharing the name.
    """

    def __init__(
        self,
        wot: WotService,
        post_log: "PostLog | None" = None,
        malicious_names: Counter[str] | None = None,
        known_malicious_ids: set[str] | None = None,
        id_to_name: dict[str, str] | None = None,
    ) -> None:
        self._wot = wot
        self._post_log = post_log
        self._malicious_names = malicious_names or Counter()
        self._known_malicious_ids = known_malicious_ids or set()
        self._id_to_name = id_to_name or {}
        #: app_id -> {forensic event kind -> count}; None = forensics off
        self._forensics: dict[str, dict[str, int]] | None = None

    def name_of(self, app_id: str) -> str | None:
        """Display name observed in post metadata (None if never seen)."""
        return self._id_to_name.get(app_id)

    # -- temporal forensics (off unless a monitor opts in) -----------------

    def set_forensics(
        self, tallies: dict[str, dict[str, int]] | None
    ) -> None:
        """Attach monitor forensic tallies, enabling the forensic columns.

        *tallies* is :attr:`AppMonitor.forensic_tallies
        <repro.crawler.monitor.AppMonitor.forensic_tallies>` — per-app
        counts of observed lifecycle events.  Passing ``None`` switches
        the columns back off.  The default extraction feature sets never
        include these columns, so calling this cannot perturb the seed
        pipeline's vectors.
        """
        self._forensics = tallies

    @property
    def forensics_enabled(self) -> bool:
        return self._forensics is not None

    def feature_names(self, base: tuple[str, ...] = ALL_FEATURES) -> tuple[str, ...]:
        """*base* plus the forensic columns when forensics are attached."""
        if self._forensics is None:
            return base
        return base + FORENSIC_FEATURES

    def _forensic_count(self, record: CrawlRecord, kind: str | None) -> float:
        tallies = (self._forensics or {}).get(record.app_id)
        if not tallies:
            return 0.0
        if kind is None:
            return float(sum(tallies.values()))
        return float(tallies.get(kind, 0))

    # -- individual features ------------------------------------------------

    def feature_value(self, name: str, record: CrawlRecord) -> float:
        method = getattr(self, f"_feature_{name}", None)
        if method is None:
            raise KeyError(f"unknown feature: {name}")
        return float(method(record))

    def _feature_has_category(self, record: CrawlRecord) -> float:
        return 1.0 if record.category else 0.0

    def _feature_has_company(self, record: CrawlRecord) -> float:
        return 1.0 if record.company else 0.0

    def _feature_has_description(self, record: CrawlRecord) -> float:
        return 1.0 if record.description else 0.0

    def _feature_has_profile_posts(self, record: CrawlRecord) -> float:
        return 1.0 if record.profile_posts else 0.0

    def _feature_permission_count(self, record: CrawlRecord) -> float:
        return float(len(record.permissions))

    def _feature_client_id_mismatch(self, record: CrawlRecord) -> float:
        # Tri-state source: True -> 1.0; both False (verified match) and
        # None (install crawl yielded nothing) -> 0.0.  Folding None into
        # the benign encoding is the paper's protocol — the feature is
        # measured over D-Inst, where the crawl succeeded — and keeps the
        # vector identical whether the install data is authoritatively
        # absent or never collected.  The missing-vs-benign distinction
        # is carried by classification_tier / CrawlRecord.gave_up, not
        # smuggled into the Lite feature vector.
        return 1.0 if record.client_id_mismatch else 0.0

    def _feature_wot_score(self, record: CrawlRecord) -> float:
        if not record.redirect_uri:
            return -1.0
        return self._wot.score_url(record.redirect_uri)

    def _feature_name_matches_malicious(self, record: CrawlRecord) -> float:
        """Does the app share its name with a *known* malicious app?"""
        name = record.name or self._id_to_name.get(record.app_id)
        if name is None:
            return 0.0
        count = self._malicious_names.get(name, 0)
        if record.app_id in self._known_malicious_ids:
            count -= 1  # don't let the app match itself
        return 1.0 if count > 0 else 0.0

    def _feature_external_link_ratio(self, record: CrawlRecord) -> float:
        """Fraction of the app's observed posts carrying external links."""
        if self._post_log is None:
            return 0.0
        total = self._post_log.post_count(record.app_id)
        if total == 0:
            return 0.0
        external = sum(
            count
            for url, count in self._post_log.urls_of_app(record.app_id).items()
            if not is_facebook_url(url)
        )
        return external / total

    def _feature_forensic_event_count(self, record: CrawlRecord) -> float:
        return self._forensic_count(record, None)

    def _feature_forensic_deletion(self, record: CrawlRecord) -> float:
        return self._forensic_count(record, "deletion")

    def _feature_forensic_rename(self, record: CrawlRecord) -> float:
        return self._forensic_count(record, "rename")

    def _feature_forensic_permission_change(self, record: CrawlRecord) -> float:
        return self._forensic_count(record, "permission_change")

    def _feature_forensic_post_collapse(self, record: CrawlRecord) -> float:
        return self._forensic_count(record, "post_rate_collapse")

    # -- vectors ----------------------------------------------------------------

    def vector(
        self, record: CrawlRecord, features: tuple[str, ...] = ALL_FEATURES
    ) -> np.ndarray:
        return np.array([self.feature_value(f, record) for f in features])

    def matrix(
        self,
        records: list[CrawlRecord],
        features: tuple[str, ...] = ALL_FEATURES,
    ) -> np.ndarray:
        """Batch feature extraction, one column at a time.

        Produces bit-identical values to stacking :meth:`vector` per
        record (the per-record path stays as the reference; the tests
        assert equality), but avoids its per-value costs:

        * each feature method is resolved once per *column*, not once
          per value;
        * WOT lookups are memoised per distinct ``redirect_uri``;
        * external-link ratios are computed in a single pass over each
          app's live URL multiset (no Counter copies), with
          ``is_facebook_url`` memoised per distinct URL.
        """
        if not records:
            return np.zeros((0, len(features)))
        out = np.empty((len(records), len(features)), dtype=np.float64)
        batched = {
            "wot_score": self._column_wot_score,
            "external_link_ratio": self._column_external_link_ratio,
        }
        for j, name in enumerate(features):
            builder = batched.get(name)
            if builder is not None:
                out[:, j] = builder(records)
                continue
            method = getattr(self, f"_feature_{name}", None)
            if method is None:
                raise KeyError(f"unknown feature: {name}")
            out[:, j] = [method(r) for r in records]
        return out

    # -- batched columns --------------------------------------------------------

    def _column_wot_score(self, records: list[CrawlRecord]) -> np.ndarray:
        scores = np.empty(len(records), dtype=np.float64)
        memo: dict[str, float] = {}
        for i, record in enumerate(records):
            uri = record.redirect_uri
            if not uri:
                scores[i] = -1.0
                continue
            score = memo.get(uri)
            if score is None:
                score = memo[uri] = self._wot.score_url(uri)
            scores[i] = score
        return scores

    def _column_external_link_ratio(self, records: list[CrawlRecord]) -> np.ndarray:
        ratios = np.zeros(len(records), dtype=np.float64)
        log = self._post_log
        if log is None:
            return ratios
        is_external: dict[str, bool] = {}
        for i, record in enumerate(records):
            total = log.post_count(record.app_id)
            if total == 0:
                continue
            external = 0
            for url, count in log.url_counts(record.app_id).items():
                verdict = is_external.get(url)
                if verdict is None:
                    verdict = is_external[url] = not is_facebook_url(url)
                if verdict:
                    external += count
            ratios[i] = external / total
        return ratios

    @staticmethod
    def name_counter(
        records: dict[str, CrawlRecord], malicious_ids: set[str]
    ) -> Counter[str]:
        """Count names over the known-malicious apps (for aggregation)."""
        counter: Counter[str] = Counter()
        for app_id in malicious_ids:
            record = records.get(app_id)
            if record is not None and record.name:
                counter[record.name] += 1
        return counter
