"""The drift-resilient model lifecycle: detect → retrain → roll out.

This module closes the loop the paper's §7 leaves open.  Hackers adapt
(:mod:`repro.ecosystem.drift` simulates them adapting), so a FRAppE
deployment must notice the adaptation and respond without breaking the
service.  One :func:`run_lifecycle` call plays an entire trajectory:

* every epoch's cohort is scored by the **static** epoch-0 model (the
  paper's frozen classifier — the degradation baseline) and by the
  **online** loop's current champion;
* a :class:`~repro.ml.drift.DriftDetector` watches the champion's view
  of the feature and margin distributions; its reference window is the
  champion's own training epoch and is re-baselined on promotion;
* a drift flag triggers a warm-started sliding-window retrain
  (:class:`~repro.ml.online.SlidingWindowTrainer`); the challenger must
  pass the :class:`~repro.service.rollout.RolloutController`'s held-out
  promotion gate, then survive canary probation on the *next* epochs'
  traffic before it becomes champion;
* an injected bad canary (``inject_bad_canary_epoch``) skips the gate —
  simulating a gate fooled by an unlucky holdout — and must be caught
  by the canary health gate and rolled back automatically.

Labels arrive late: epoch *k* is scored with knowledge accumulated from
epochs ``< k`` (the malicious-name counter the aggregation features
need), and epoch *k*'s operator labels only enter the training window
afterwards.  Everything runs on simulated epoch days; the whole
trajectory is a pure function of ``DriftPlan.seed``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.features import ON_DEMAND_FEATURES, FeatureExtractor
from repro.ecosystem.drift import DriftPlan, EpochData, EpochGenerator
from repro.ml.drift import DriftConfig, DriftDetector, DriftReport
from repro.ml.online import SlidingWindowTrainer, WindowModel
from repro.obs import get_observer
from repro.rng import derive_seed
from repro.service.rollout import (
    ModelRegistry,
    RolloutConfig,
    RolloutController,
)

__all__ = [
    "LifecycleConfig",
    "EpochOutcome",
    "LifecycleResult",
    "BrokenModel",
    "run_lifecycle",
    "run_drift_sweep",
    "write_drift_metrics",
]


class BrokenModel:
    """A wrapper inverting every verdict of the wrapped model.

    The worst model that could leave a training pipeline: confidently
    wrong on everything.  Injected as a canary to prove the health gate
    catches what the promotion gate (here: deliberately skipped) missed.
    """

    def __init__(self, model: Any) -> None:
        self._model = model

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        return -np.asarray(self._model.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return 1 - np.asarray(self._model.predict(x))


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the detect → retrain → roll out loop."""

    #: labelled epochs the sliding training window spans
    window_epochs: int = 3
    #: labelled fraction of each epoch held out for the promotion gate
    holdout_fraction: float = 0.3
    #: retrain only when the detector flags ("flag") or every epoch
    #: ("always") — "flag" is the production posture the study measures
    retrain_on: str = "flag"
    #: epoch at which a broken model is injected straight into canary
    #: probation (None = never); used by the rollback chaos scenario
    inject_bad_canary_epoch: int | None = None
    #: detector tuned for epoch-sized windows: the strongest reliable
    #: signal at a few hundred samples is the calibration shift (the
    #: frozen boundary flags fewer apps as hackers adapt), so the
    #: positive-rate gate is tightened; window is "flush per epoch"
    drift: DriftConfig = field(
        default_factory=lambda: DriftConfig(
            window=10_000, positive_rate_delta=0.08
        )
    )
    rollout: RolloutConfig = field(
        default_factory=lambda: RolloutConfig(
            canary_requests=24, min_canary_sample=8
        )
    )
    svm_c: float = 1.0
    svm_kernel: str = "rbf"
    svm_gamma: str | float = "auto"

    def __post_init__(self) -> None:
        if self.retrain_on not in ("flag", "always"):
            raise ValueError("retrain_on must be 'flag' or 'always'")
        if not 0.0 < self.holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")


@dataclass
class EpochOutcome:
    """What the lifecycle saw and did during one epoch."""

    epoch: int
    day: int
    intensity: float
    #: adaptation intensity of the detector's reference window (0 until
    #: a promotion re-baselines it); ground truth for the drift flag is
    #: ``intensity != reference_intensity``
    reference_intensity: float
    n_apps: int
    n_labeled: int
    static_accuracy: float
    online_accuracy: float
    drift_flagged: bool
    max_psi: float
    score_psi: float
    retrained: bool
    #: None when no challenger was trained this epoch
    gate_passed: bool | None
    #: "" | "promoted" | "rolled_back" — canary transition this epoch
    transition: str
    champion_version: int
    #: canary still on probation at epoch end (0 = none)
    canary_version: int

    def as_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "day": self.day,
            "intensity": round(self.intensity, 6),
            "reference_intensity": round(self.reference_intensity, 6),
            "n_apps": self.n_apps,
            "n_labeled": self.n_labeled,
            "static_accuracy": round(self.static_accuracy, 6),
            "online_accuracy": round(self.online_accuracy, 6),
            "drift_flagged": self.drift_flagged,
            "max_psi": round(self.max_psi, 6),
            "score_psi": round(self.score_psi, 6),
            "retrained": self.retrained,
            "gate_passed": self.gate_passed,
            "transition": self.transition,
            "champion_version": self.champion_version,
            "canary_version": self.canary_version,
        }


@dataclass
class LifecycleResult:
    """One full trajectory, with every decision on the record."""

    plan: DriftPlan
    config: LifecycleConfig
    outcomes: list[EpochOutcome]
    drift_reports: list[DriftReport]
    controller: RolloutController

    @property
    def incidents(self):
        return self.controller.incidents

    @property
    def promotions(self):
        return self.controller.promotions

    def detection_accuracy(self) -> float:
        """Fraction of epochs whose drift flag matched the ground truth.

        Ground truth: an epoch is drifted iff its adaptation intensity
        differs from the detector's reference window's intensity — a
        promotion re-baselines the reference, after which the absorbed
        drift is the new normal and further flags would be false.
        """
        if not self.outcomes:
            return 0.0
        correct = sum(
            1
            for outcome in self.outcomes
            if outcome.drift_flagged
            == (abs(outcome.intensity - outcome.reference_intensity) > 1e-9)
        )
        return correct / len(self.outcomes)

    def mean_accuracy(self, which: str, from_epoch: int = 1) -> float:
        """Mean static/online accuracy over epochs ``>= from_epoch``."""
        values = [
            outcome.static_accuracy if which == "static" else outcome.online_accuracy
            for outcome in self.outcomes
            if outcome.epoch >= from_epoch
        ]
        return float(np.mean(values)) if values else 0.0


def _holdout_split(
    plan: DriftPlan, epoch: int, n: int, fraction: float
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic (train_idx, holdout_idx) split of n labelled rows."""
    rng = np.random.default_rng(
        derive_seed(plan.seed, f"lifecycle-holdout-{epoch:04d}")
    )
    order = rng.permutation(n)
    n_hold = max(1, int(round(n * fraction))) if n > 1 else 0
    return np.sort(order[n_hold:]), np.sort(order[:n_hold])


def _extractor_for(
    epoch_data: EpochData, knowledge: Counter[str]
) -> FeatureExtractor:
    """Epoch-local extractor carrying only *prior* malicious knowledge."""
    return FeatureExtractor(
        epoch_data.services.wot,
        epoch_data.services.post_log,
        malicious_names=Counter(knowledge),
        id_to_name={r.app_id: r.name or "" for r in epoch_data.records},
    )


def run_lifecycle(
    plan: DriftPlan, config: LifecycleConfig | None = None
) -> LifecycleResult:
    """Play one drift trajectory through the full lifecycle loop."""
    config = config or LifecycleConfig()
    generator = EpochGenerator(plan)
    obs = get_observer()

    registry = ModelRegistry()
    trainer = SlidingWindowTrainer(
        window_epochs=config.window_epochs,
        c=config.svm_c,
        kernel=config.svm_kernel,
        gamma=config.svm_gamma,
    )
    knowledge: Counter[str] = Counter()
    outcomes: list[EpochOutcome] = []

    # -- epoch 0: train the first champion, baseline the detector --------
    epoch0 = generator.epoch(0)
    extractor = _extractor_for(epoch0, knowledge)
    x0 = extractor.matrix(epoch0.records)
    y0 = epoch0.labels
    lab_records, lab_y = epoch0.labeled()
    lab_x = x0[epoch0.labeled_mask]
    train_idx, hold_idx = _holdout_split(
        plan, 0, len(lab_y), config.holdout_fraction
    )
    trainer.push(lab_x[train_idx], lab_y[train_idx])
    champion_model = trainer.train()
    holdout_acc = (
        champion_model.accuracy(lab_x[hold_idx], lab_y[hold_idx])
        if len(hold_idx)
        else float("nan")
    )
    registry.register(
        champion_model,
        trained_day=plan.day_of(0),
        holdout_accuracy=holdout_acc,
        note="epoch-0 initial champion",
    )
    controller = RolloutController(registry, 1, config=config.rollout)
    static_model = champion_model

    # The detector watches only the environment-derived (on-demand)
    # columns: the aggregation features shift by construction as the
    # operator's name knowledge grows, which is learning, not drift.
    n_watched = len(ON_DEMAND_FEATURES)
    margins0 = champion_model.decision_function(x0)
    detector = DriftDetector(
        x0[:, :n_watched], margins0, ON_DEMAND_FEATURES, config.drift
    )
    accuracy0 = champion_model.accuracy(x0, y0)
    outcomes.append(
        EpochOutcome(
            epoch=0,
            day=epoch0.day,
            intensity=0.0,
            reference_intensity=0.0,
            n_apps=len(epoch0.records),
            n_labeled=len(lab_y),
            static_accuracy=accuracy0,
            online_accuracy=accuracy0,
            drift_flagged=False,
            max_psi=0.0,
            score_psi=0.0,
            retrained=True,
            gate_passed=None,
            transition="",
            champion_version=1,
            canary_version=0,
        )
    )
    _learn_names(knowledge, lab_records, lab_y)

    # -- epochs 1..n-1: score, detect, respond ---------------------------
    reference_intensity = 0.0
    for epoch in range(1, plan.n_epochs):
        epoch_data = generator.epoch(epoch)
        day = epoch_data.day
        extractor = _extractor_for(epoch_data, knowledge)
        x = extractor.matrix(epoch_data.records)
        y = epoch_data.labels
        # The static baseline is frozen *end to end*: epoch-0 weights
        # AND epoch-0 (empty) name knowledge.  The online loop's
        # features keep learning names even between retrains.
        x_static = _extractor_for(epoch_data, Counter()).matrix(
            epoch_data.records
        )

        champion_model = controller.champion.model
        champion_version = controller.champion.version
        margins = champion_model.decision_function(x)
        champion_pred = (margins >= 0.0).astype(int)
        static_accuracy = static_model.accuracy(x_static, y)
        online_accuracy = float((champion_pred == y).mean())

        # Canary probation rides the epoch's traffic: the canary scores
        # its deterministic slice, the champion shadow-scores the same
        # rows, and the health gate advances row by row.
        transition = ""
        if controller.canary is not None:
            canary_pred = controller.model_for(
                controller.canary.version
            ).predict(x)
            for row, record in enumerate(epoch_data.records):
                if controller.canary is None:
                    break
                version = controller.assign(record.app_id)
                if version != controller.canary.version:
                    continue
                step = controller.record_canary(
                    bool(canary_pred[row]),
                    bool(champion_pred[row]),
                    t=float(day),
                )
                if step != "canary":
                    transition = step
            controller.consume_flush()  # no verdict cache in this loop

        # Feed the detector and evaluate the epoch as one window.
        reports = detector.update(x[:, :n_watched], margins, t=float(day))
        tail = detector.flush(t=float(day))
        if tail is not None:
            reports.append(tail)
        flagged = any(report.drifted for report in reports)
        # The flag is judged against the reference as it stood while
        # this epoch was scored, even if a promotion moves it below.
        epoch_reference = reference_intensity
        max_psi = max((report.max_psi for report in reports), default=0.0)
        score_psi = max((report.score_psi for report in reports), default=0.0)

        # Labels for this epoch arrive after scoring; push the training
        # slice into the window regardless of whether we retrain now.
        lab_records, lab_y = epoch_data.labeled()
        lab_x = x[epoch_data.labeled_mask]
        train_idx, hold_idx = _holdout_split(
            plan, epoch, len(lab_y), config.holdout_fraction
        )
        trainer.push(lab_x[train_idx], lab_y[train_idx])

        retrain = (
            config.retrain_on == "always" or flagged
        ) and controller.canary is None
        gate_passed: bool | None = None
        if retrain and len(hold_idx):
            challenger_model = trainer.train()
            entry = registry.register(
                challenger_model,
                trained_day=day,
                holdout_accuracy=challenger_model.accuracy(
                    lab_x[hold_idx], lab_y[hold_idx]
                ),
                note=f"epoch-{epoch} window retrain"
                + (" (warm start)" if trainer.last_warm_start else ""),
            )
            gate_passed = controller.evaluate_challenger(
                entry.version, lab_x[hold_idx], lab_y[hold_idx]
            )
            if gate_passed:
                controller.start_canary(entry.version, t=float(day))

        if (
            config.inject_bad_canary_epoch == epoch
            and controller.canary is None
        ):
            bad = registry.register(
                BrokenModel(controller.champion.model),
                trained_day=day,
                note="injected bad canary (gate bypassed)",
            )
            controller.start_canary(bad.version, t=float(day))

        # A promotion changes the deployed model: the detector's
        # reference must follow it, or every later window would be
        # compared against a world the champion no longer lives in.
        if transition == "promoted":
            detector.rebaseline(
                x[:, :n_watched],
                controller.champion.model.decision_function(x),
            )
            reference_intensity = epoch_data.intensity

        _learn_names(knowledge, lab_records, lab_y)
        outcome = EpochOutcome(
            epoch=epoch,
            day=day,
            intensity=epoch_data.intensity,
            reference_intensity=epoch_reference,
            n_apps=len(epoch_data.records),
            n_labeled=len(lab_y),
            static_accuracy=static_accuracy,
            online_accuracy=online_accuracy,
            drift_flagged=flagged,
            max_psi=max_psi,
            score_psi=score_psi,
            retrained=bool(retrain and gate_passed is not None),
            gate_passed=gate_passed,
            transition=transition,
            champion_version=controller.champion.version,
            canary_version=(
                controller.canary.version if controller.canary else 0
            ),
        )
        outcomes.append(outcome)
        if obs.enabled:
            obs.event(
                "lifecycle.epoch",
                t=float(day),
                category="lifecycle",
                epoch=epoch,
                intensity=round(epoch_data.intensity, 4),
                static_accuracy=round(static_accuracy, 4),
                online_accuracy=round(online_accuracy, 4),
                drift_flagged=flagged,
                champion=champion_version,
                transition=transition or "none",
            )
            obs.gauge("lifecycle_static_accuracy", static_accuracy)
            obs.gauge("lifecycle_online_accuracy", online_accuracy)

    return LifecycleResult(
        plan=plan,
        config=config,
        outcomes=outcomes,
        drift_reports=list(detector.reports),
        controller=controller,
    )


def _learn_names(
    knowledge: Counter[str], records: list, labels: np.ndarray
) -> None:
    """Fold an epoch's labelled malicious names into the knowledge base."""
    for record, label in zip(records, labels):
        if label and record.name:
            knowledge[record.name] += 1


# -- the sweep ---------------------------------------------------------------


@dataclass
class SweepRow:
    """One drift rate's end-to-end summary."""

    drift_rate: float
    detection_accuracy: float
    static_accuracy: float
    online_accuracy: float
    promotions: int
    rollbacks: int
    result: LifecycleResult

    def as_dict(self) -> dict:
        return {
            "drift_rate": round(self.drift_rate, 6),
            "detection_accuracy": round(self.detection_accuracy, 6),
            "static_accuracy": round(self.static_accuracy, 6),
            "online_accuracy": round(self.online_accuracy, 6),
            "promotions": self.promotions,
            "rollbacks": self.rollbacks,
        }


@dataclass
class SweepResult:
    rows: list[SweepRow]

    def table(self) -> str:
        """The deterministic detection-accuracy-vs-drift-rate table."""
        lines = [
            "drift_rate  detect_acc  static_acc  online_acc  promoted  rolled_back",
        ]
        for row in self.rows:
            lines.append(
                f"{row.drift_rate:>10.2f}  "
                f"{row.detection_accuracy:>10.3f}  "
                f"{row.static_accuracy:>10.3f}  "
                f"{row.online_accuracy:>10.3f}  "
                f"{row.promotions:>8d}  "
                f"{row.rollbacks:>11d}"
            )
        return "\n".join(lines)


def run_drift_sweep(
    drift_rates: list[float],
    plan: DriftPlan | None = None,
    config: LifecycleConfig | None = None,
) -> SweepResult:
    """Run one lifecycle per drift rate over otherwise identical plans."""
    base = plan or DriftPlan()
    rows = []
    for rate in drift_rates:
        swept = DriftPlan(
            seed=base.seed,
            n_epochs=base.n_epochs,
            drift_rate=rate,
            epoch_days=base.epoch_days,
            apps_per_epoch=base.apps_per_epoch,
            malicious_fraction=base.malicious_fraction,
            labeled_fraction=base.labeled_fraction,
            posts_per_app=base.posts_per_app,
            n_users=base.n_users,
            scale=base.scale,
        )
        result = run_lifecycle(swept, config)
        rows.append(
            SweepRow(
                drift_rate=rate,
                detection_accuracy=result.detection_accuracy(),
                static_accuracy=result.mean_accuracy("static"),
                online_accuracy=result.mean_accuracy("online"),
                promotions=len(result.promotions),
                rollbacks=len(result.incidents),
                result=result,
            )
        )
    return SweepResult(rows=rows)


def write_drift_metrics(path: str | Path, sweep: SweepResult) -> int:
    """Dump a sweep as JSONL (one row per epoch, window, and rate)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with path.open("w", encoding="utf-8") as handle:
        for row in sweep.rows:
            for outcome in row.result.outcomes:
                record = {"kind": "epoch", "drift_rate": row.drift_rate}
                record.update(outcome.as_dict())
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                n += 1
            for report in row.result.drift_reports:
                record = {"kind": "window", "drift_rate": row.drift_rate}
                record.update(report.as_dict())
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                n += 1
            summary = {"kind": "summary"}
            summary.update(row.as_dict())
            handle.write(json.dumps(summary, sort_keys=True) + "\n")
            n += 1
    return n
