"""The independent app watchdog (the paper's long-term vision).

The conclusion frames FRAppE as "a step towards creating an independent
watchdog for app assessment and ranking, so as to warn Facebook users
before installing apps."  This module builds that service on top of a
trained classifier:

* a calibrated **risk score** in [0, 100] per app (sigmoid of the SVM
  margin, rescaled so the decision boundary maps to 50),
* an **assessment cache** with explicit re-crawl staleness,
* a **ranking** of the riskiest apps,
* human-readable **advisories** explaining which features drove the
  verdict, and
* a **confidence tier** per assessment: a verdict computed from a
  partially failed crawl (transient give-ups, not authoritative
  removals) is served with degraded confidence rather than presented
  as if every feature had been observed — and a re-crawl that fails
  outright degrades the *cached* verdict's confidence instead of
  silently serving stale data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.features import (
    CONFIDENCE_BY_TIER,
    FeatureExtractor,
    classification_tier,
)
from repro.core.frappe import FrappeCascade, FrappeClassifier
from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.obs.observer import get_observer

__all__ = ["AppAssessment", "AppWatchdog"]

#: Feature -> human explanation used in advisories.  The predicate
#: receives the feature's raw value and says whether it is suspicious.
#: Tri-state features only fire on their *positive* encoding: a missing
#: install crawl leaves ``client_id_mismatch`` at None -> 0.0, which
#: must read as "unverified", never as "mismatch observed".
_ADVISORY_RULES: tuple[tuple[str, str, object], ...] = (
    ("has_description", "the app provides no description",
     lambda v: v == 0.0),
    ("has_company", "no company is listed", lambda v: v == 0.0),
    ("has_category", "no category is configured", lambda v: v == 0.0),
    ("has_profile_posts", "the app's profile page has no posts",
     lambda v: v == 0.0),
    ("permission_count", "it requests only a single permission "
     "(just enough to post on your wall)", lambda v: v == 1.0),
    ("client_id_mismatch", "its install URL hands out a different "
     "app's client ID", lambda v: v == 1.0),
    ("wot_score", "it redirects to a domain with no or poor web "
     "reputation", lambda v: v < 5.0),
    ("name_matches_malicious", "it shares its name with known "
     "malicious apps", lambda v: v == 1.0),
    ("external_link_ratio", "most of its posts push links outside "
     "Facebook", lambda v: v >= 0.5),
)

#: collection -> advisory note when its crawl transiently gave up
_DEGRADED_NOTES: dict[str, str] = {
    "summary": "the summary crawl could not be completed",
    "feed": "the profile-feed crawl could not be completed",
    "install": "the install-URL crawl could not be completed",
}


@dataclass
class AppAssessment:
    """One cached watchdog verdict."""

    app_id: str
    name: str | None
    risk_score: float  # 0 (safe) .. 100 (malicious), 50 = boundary
    advisories: list[str] = field(default_factory=list)
    assessed_day: int = 0
    #: high | medium | low | none | stale — how much crawl evidence
    #: backs the score (see features.CONFIDENCE_BY_TIER; "stale" marks
    #: a cached verdict whose refresh crawl failed)
    confidence: str = "high"

    @property
    def is_risky(self) -> bool:
        # Strictly above the boundary: a score of exactly 50 is "no
        # verdict" (SVM margin 0 — notably the no-evidence fallback of a
        # fully failed crawl), and the classifier flags only positive
        # margins, so the watchdog must not condemn on it either.
        return self.risk_score > 50.0

    def summary(self) -> str:
        label = "HIGH RISK" if self.is_risky else "low risk"
        head = f"{self.name or self.app_id}: {label} ({self.risk_score:.0f}/100)"
        if self.confidence != "high":
            head += f" [confidence: {self.confidence}]"
        if not self.advisories:
            return head
        return head + "\n  - " + "\n  - ".join(self.advisories)


class AppWatchdog:
    """Assesses, caches, and ranks apps with a trained classifier.

    Accepts either a plain :class:`FrappeClassifier` (every record is
    scored by the one model, as in the paper) or a
    :class:`FrappeCascade` (degraded records fall back to the best tier
    their surviving collections support).  Either way the assessment
    carries the confidence tier the record's crawl outcomes warrant.
    """

    def __init__(
        self,
        classifier: FrappeClassifier | FrappeCascade,
        extractor: FeatureExtractor,
        crawler: AppCrawler,
        max_staleness_days: int = 14,
        margin_scale: float = 1.5,
    ) -> None:
        self._classifier = classifier
        self._extractor = extractor
        self._crawler = crawler
        self.max_staleness_days = max_staleness_days
        self._margin_scale = margin_scale
        self._cache: dict[str, AppAssessment] = {}

    # -- scoring -----------------------------------------------------------

    def risk_from_margin(self, margin: float) -> float:
        """Map the SVM margin to [0, 100] with 50 at the boundary.

        Public because the online verdict service
        (:mod:`repro.service`) scores every degradation-ladder rung on
        the same calibrated scale the watchdog uses, so a cached
        verdict and a freshly computed one are directly comparable.
        """
        return 100.0 / (1.0 + math.exp(-margin * self._margin_scale))

    # Backwards-compatible alias (pre-service callers).
    _risk_from_margin = risk_from_margin

    def _margin_and_tier(self, record: CrawlRecord) -> tuple[float, str]:
        if isinstance(self._classifier, FrappeCascade):
            return self._classifier.decision_function_one(record)
        # A plain classifier has no fallback: score with the one model
        # and let the confidence tier carry the caveat.
        tier = classification_tier(record)
        return float(self._classifier.decision_function([record])[0]), tier

    def _advisory_features(self, tier: str) -> tuple[str, ...]:
        if isinstance(self._classifier, FrappeCascade):
            if tier == "none":
                return ()
            return self._classifier.model(tier).features
        return self._classifier.features

    def _advisories(self, record: CrawlRecord, tier: str) -> list[str]:
        features = self._advisory_features(tier)
        notes = []
        for feature, text, predicate in _ADVISORY_RULES:
            if feature not in features:
                continue
            value = self._extractor.feature_value(feature, record)
            if predicate(value):
                notes.append(text)
        return notes

    def assess_record(
        self,
        record: CrawlRecord,
        day: int = 0,
        scored: tuple[float, str] | None = None,
    ) -> AppAssessment:
        """Assess an already crawled record (no caching).

        ``scored`` optionally supplies an already computed
        ``(margin, tier)`` pair for *record* from this watchdog's own
        classifier — the verdict service scores every live record
        before assessing it, so passing the result through skips a
        bit-identical re-evaluation of the decision function.
        """
        obs = get_observer()
        span_cm = span = None
        if obs.enabled:
            span_cm = obs.span(
                "watchdog.assess",
                key=record.app_id,
                category="watchdog",
                t=self._crawler.stats.elapsed_s,
            )
            span = span_cm.__enter__()
        margin, tier = scored if scored is not None else self._margin_and_tier(record)
        # Deleted apps have no crawlable summary; fall back to the name
        # observed in post metadata (how the paper knows dead apps' names).
        name = record.name or self._extractor.name_of(record.app_id)
        assessment = AppAssessment(
            app_id=record.app_id,
            name=name,
            risk_score=self._risk_from_margin(margin),
            assessed_day=day,
            confidence=CONFIDENCE_BY_TIER[tier],
        )
        if assessment.is_risky:
            assessment.advisories = self._advisories(record, tier)
        for collection in record.degraded_collections:
            assessment.advisories.append(_DEGRADED_NOTES[collection])
        if span_cm is not None:
            span.note(
                tier=tier,
                risk=round(assessment.risk_score, 3),
                confidence=assessment.confidence,
            )
            span.end(self._crawler.stats.elapsed_s)
            span_cm.__exit__(None, None, None)
            obs.count("watchdog_assessments_total", confidence=assessment.confidence)
            obs.observe(
                "watchdog_risk_score",
                assessment.risk_score,
                edges=(10.0, 25.0, 50.0, 75.0, 90.0),
            )
        return assessment

    # -- the service surface -------------------------------------------------

    def assess(self, app_id: str, day: int = 0) -> AppAssessment:
        """Crawl-and-assess with caching and staleness-driven re-crawls.

        A stale cache entry triggers a re-crawl.  If the re-crawl comes
        back with no trustworthy evidence at all (every collection gave
        up transiently) while a previous verdict exists, the previous
        verdict is *degraded* — same score, confidence ``"stale"`` —
        rather than silently served as-is or replaced by a score
        computed from zeros.
        """
        obs = get_observer()
        cached = self._cache.get(app_id)
        if cached is not None:
            staleness = day - cached.assessed_day
            if staleness <= self.max_staleness_days:
                if obs.enabled:
                    obs.count("watchdog_cache_hits_total")
                    obs.observe(
                        "watchdog_staleness_days",
                        float(staleness),
                        edges=(1.0, 3.0, 7.0, 14.0, 30.0),
                    )
                return cached
            if obs.enabled:
                obs.event(
                    "watchdog.stale",
                    t=self._crawler.stats.elapsed_s,
                    category="watchdog",
                    app_id=app_id,
                    staleness_days=staleness,
                )
                obs.observe(
                    "watchdog_staleness_days",
                    float(staleness),
                    edges=(1.0, 3.0, 7.0, 14.0, 30.0),
                )
        span_cm = None
        if obs.enabled:
            span_cm = obs.span(
                "watchdog.recrawl",
                key=app_id,
                category="watchdog",
                t=self._crawler.stats.elapsed_s,
            )
            span = span_cm.__enter__()
            obs.count("watchdog_recrawls_total")
        record = self._crawler.crawl_app(app_id)
        if span_cm is not None:
            span.note(degraded=record.degraded)
            span.end(self._crawler.stats.elapsed_s)
            span_cm.__exit__(None, None, None)
        if cached is not None and classification_tier(record) == "none":
            if obs.enabled:
                obs.count("watchdog_stale_degradations_total")
            degraded = AppAssessment(
                app_id=cached.app_id,
                name=cached.name,
                risk_score=cached.risk_score,
                advisories=list(cached.advisories)
                + ["re-crawl failed; verdict may be out of date"],
                assessed_day=day,
                confidence="stale",
            )
            self._cache[app_id] = degraded
            return degraded
        assessment = self.assess_record(record, day=day)
        self._cache[app_id] = assessment
        return assessment

    def cached_count(self) -> int:
        return len(self._cache)

    def ranking(self, top: int = 10) -> list[AppAssessment]:
        """The riskiest cached apps, most dangerous first."""
        ordered = sorted(
            self._cache.values(), key=lambda a: a.risk_score, reverse=True
        )
        return ordered[:top]

    def bulk_assess(self, app_ids, day: int = 0) -> list[AppAssessment]:
        return [self.assess(app_id, day=day) for app_id in sorted(app_ids)]
