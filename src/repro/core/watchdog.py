"""The independent app watchdog (the paper's long-term vision).

The conclusion frames FRAppE as "a step towards creating an independent
watchdog for app assessment and ranking, so as to warn Facebook users
before installing apps."  This module builds that service on top of a
trained classifier:

* a calibrated **risk score** in [0, 100] per app (sigmoid of the SVM
  margin, rescaled so the decision boundary maps to 50),
* an **assessment cache** with explicit re-crawl staleness,
* a **ranking** of the riskiest apps, and
* human-readable **advisories** explaining which features drove the
  verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.features import FeatureExtractor
from repro.core.frappe import FrappeClassifier
from repro.crawler.crawler import AppCrawler, CrawlRecord

__all__ = ["AppAssessment", "AppWatchdog"]

#: Feature -> human explanation used in advisories.  The predicate
#: receives the feature's raw value and says whether it is suspicious.
_ADVISORY_RULES: tuple[tuple[str, str, object], ...] = (
    ("has_description", "the app provides no description",
     lambda v: v == 0.0),
    ("has_company", "no company is listed", lambda v: v == 0.0),
    ("has_category", "no category is configured", lambda v: v == 0.0),
    ("has_profile_posts", "the app's profile page has no posts",
     lambda v: v == 0.0),
    ("permission_count", "it requests only a single permission "
     "(just enough to post on your wall)", lambda v: v == 1.0),
    ("client_id_mismatch", "its install URL hands out a different "
     "app's client ID", lambda v: v == 1.0),
    ("wot_score", "it redirects to a domain with no or poor web "
     "reputation", lambda v: v < 5.0),
    ("name_matches_malicious", "it shares its name with known "
     "malicious apps", lambda v: v == 1.0),
    ("external_link_ratio", "most of its posts push links outside "
     "Facebook", lambda v: v >= 0.5),
)


@dataclass
class AppAssessment:
    """One cached watchdog verdict."""

    app_id: str
    name: str | None
    risk_score: float  # 0 (safe) .. 100 (malicious), 50 = boundary
    advisories: list[str] = field(default_factory=list)
    assessed_day: int = 0

    @property
    def is_risky(self) -> bool:
        return self.risk_score >= 50.0

    def summary(self) -> str:
        label = "HIGH RISK" if self.is_risky else "low risk"
        head = f"{self.name or self.app_id}: {label} ({self.risk_score:.0f}/100)"
        if not self.advisories:
            return head
        return head + "\n  - " + "\n  - ".join(self.advisories)


class AppWatchdog:
    """Assesses, caches, and ranks apps with a trained classifier."""

    def __init__(
        self,
        classifier: FrappeClassifier,
        extractor: FeatureExtractor,
        crawler: AppCrawler,
        max_staleness_days: int = 14,
        margin_scale: float = 1.5,
    ) -> None:
        self._classifier = classifier
        self._extractor = extractor
        self._crawler = crawler
        self.max_staleness_days = max_staleness_days
        self._margin_scale = margin_scale
        self._cache: dict[str, AppAssessment] = {}

    # -- scoring -----------------------------------------------------------

    def _risk_from_margin(self, margin: float) -> float:
        """Map the SVM margin to [0, 100] with 50 at the boundary."""
        return 100.0 / (1.0 + math.exp(-margin * self._margin_scale))

    def _advisories(self, record: CrawlRecord) -> list[str]:
        notes = []
        for feature, text, predicate in _ADVISORY_RULES:
            if feature not in self._classifier.features:
                continue
            value = self._extractor.feature_value(feature, record)
            if predicate(value):
                notes.append(text)
        return notes

    def assess_record(self, record: CrawlRecord, day: int = 0) -> AppAssessment:
        """Assess an already crawled record (no caching)."""
        margin = float(self._classifier.decision_function([record])[0])
        # Deleted apps have no crawlable summary; fall back to the name
        # observed in post metadata (how the paper knows dead apps' names).
        name = record.name or self._extractor.name_of(record.app_id)
        assessment = AppAssessment(
            app_id=record.app_id,
            name=name,
            risk_score=self._risk_from_margin(margin),
            assessed_day=day,
        )
        if assessment.is_risky:
            assessment.advisories = self._advisories(record)
        return assessment

    # -- the service surface -------------------------------------------------

    def assess(self, app_id: str, day: int = 0) -> AppAssessment:
        """Crawl-and-assess with caching and staleness-driven re-crawls."""
        cached = self._cache.get(app_id)
        if cached is not None and day - cached.assessed_day <= self.max_staleness_days:
            return cached
        record = self._crawler.crawl_app(app_id)
        assessment = self.assess_record(record, day=day)
        self._cache[app_id] = assessment
        return assessment

    def cached_count(self) -> int:
        return len(self._cache)

    def ranking(self, top: int = 10) -> list[AppAssessment]:
        """The riskiest cached apps, most dangerous first."""
        ordered = sorted(
            self._cache.values(), key=lambda a: a.risk_score, reverse=True
        )
        return ordered[:top]

    def bulk_assess(self, app_ids, day: int = 0) -> list[AppAssessment]:
        return [self.assess(app_id, day=day) for app_id in sorted(app_ids)]
