"""FRAppE — the paper's primary contribution.

Feature extraction over crawl records and the post log (Sec 4), the
FRAppE Lite / FRAppE / robust-variant SVM classifiers (Secs 5.1, 5.2,
7), the Sec 5.3 validation of newly flagged apps, and an end-to-end
pipeline tying the whole measurement chain together.
"""

from repro.core.features import (
    AGGREGATION_FEATURES,
    CONFIDENCE_BY_TIER,
    ON_DEMAND_FEATURES,
    ROBUST_FEATURES,
    SUMMARY_ONLY_FEATURES,
    FeatureExtractor,
    classification_tier,
)
from repro.core.frappe import (
    FrappeCascade,
    FrappeClassifier,
    frappe,
    frappe_lite,
    frappe_robust,
)
from repro.core.validation import FlagValidator, ValidationResult
from repro.core.pipeline import FrappePipeline, PipelineResult
from repro.core.recommendations import (
    PolicyReport,
    PromotionBlocker,
    PromptFeedAuthenticator,
)
from repro.core.watchdog import AppAssessment, AppWatchdog

__all__ = [
    "AGGREGATION_FEATURES",
    "ON_DEMAND_FEATURES",
    "ROBUST_FEATURES",
    "SUMMARY_ONLY_FEATURES",
    "CONFIDENCE_BY_TIER",
    "classification_tier",
    "FeatureExtractor",
    "FrappeClassifier",
    "FrappeCascade",
    "frappe",
    "frappe_lite",
    "frappe_robust",
    "FlagValidator",
    "ValidationResult",
    "FrappePipeline",
    "PipelineResult",
    "PolicyReport",
    "PromotionBlocker",
    "PromptFeedAuthenticator",
    "AppAssessment",
    "AppWatchdog",
]
