"""Rendering experiment results as aligned text tables.

Each experiment produces an :class:`ExperimentReport` with
paper-vs-measured rows; the benchmark harness prints them so a run's
output reads like the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["render_table", "ExperimentReport"]


def render_table(headers: list[str], rows: list[tuple]) -> str:
    """Render an aligned ASCII table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
    rule = "  ".join("-" * width for width in widths)
    lines = [fmt(headers), rule]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """One table/figure reproduction: paper values next to measured."""

    experiment_id: str  # e.g. "table5", "fig03"
    title: str
    #: (metric, paper value, measured value) triples
    rows: list[tuple[str, str, str]] = field(default_factory=list)
    notes: str = ""

    def add(self, metric: str, paper: object, measured: object) -> None:
        self.rows.append((metric, str(paper), str(measured)))

    def add_fraction(self, metric: str, paper: float, measured: float) -> None:
        self.rows.append((metric, f"{paper:.1%}", f"{measured:.1%}"))

    def render(self) -> str:
        body = render_table(["metric", "paper", "measured"], self.rows)
        header = f"== {self.experiment_id}: {self.title} =="
        parts = [header, body]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def measured_by_metric(self) -> dict[str, str]:
        return {metric: measured for metric, _paper, measured in self.rows}
