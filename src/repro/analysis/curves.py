"""Text rendering of CDF/CCDF curves (the paper's figures, in ASCII).

Terminal-friendly plots so a reproduction run can *show* the
distributions behind each figure, not just threshold read-offs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.distributions import empirical_cdf

__all__ = ["ascii_cdf", "ascii_bars"]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or 0 < abs(value) < 0.01:
        return f"{value:.0e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}".rstrip("0").rstrip(".")


def ascii_cdf(
    series: dict[str, Iterable[float]],
    width: int = 60,
    height: int = 12,
    log_x: bool = False,
    title: str = "",
) -> str:
    """Render one or more empirical CDFs as an ASCII plot.

    Each series gets its own glyph; the y-axis runs 0..100% and the
    x-axis spans the pooled data range (optionally log-scaled, as the
    paper's click/MAU figures are).
    """
    glyphs = "*o+x#@"
    prepared: list[tuple[str, str, np.ndarray, np.ndarray]] = []
    pooled: list[float] = []
    for index, (label, values) in enumerate(series.items()):
        x, y = empirical_cdf(values)
        if log_x:
            keep = x > 0
            x, y = x[keep], y[keep]
            x = np.log10(x)
        if len(x):
            prepared.append((label, glyphs[index % len(glyphs)], x, y))
            pooled.extend(x.tolist())
    if not pooled:
        return f"{title}\n(no data)"
    lo, hi = min(pooled), max(pooled)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for _label, glyph, xs, ys in prepared:
        for x, y in zip(xs, ys):
            col = int((x - lo) / (hi - lo) * (width - 1))
            row = int((1.0 - y) * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        lines.append(f"{fraction:>4.0%} |" + "".join(row))
    left = 10 ** lo if log_x else lo
    right = 10 ** hi if log_x else hi
    axis = "-" * width
    lines.append("     +" + axis)
    label_left = _format_tick(left)
    label_right = _format_tick(right)
    pad = width - len(label_left) - len(label_right)
    lines.append("      " + label_left + " " * max(pad, 1) + label_right)
    legend = "   ".join(
        f"{glyph} {label}" for label, glyph, _x, _y in prepared
    )
    lines.append("      " + legend + ("  [log x]" if log_x else ""))
    return "\n".join(lines)


def ascii_bars(
    rows: Sequence[tuple[str, float]],
    width: int = 40,
    title: str = "",
    maximum: float | None = None,
) -> str:
    """Horizontal bar chart for fraction-valued rows (Fig 5/6 style)."""
    if maximum is None:
        maximum = max((value for _label, value in rows), default=1.0) or 1.0
    label_width = max((len(label) for label, _v in rows), default=0)
    lines = [title] if title else []
    for label, value in rows:
        filled = int(round(width * min(value / maximum, 1.0)))
        bar = "#" * filled
        lines.append(f"  {label:<{label_width}} |{bar:<{width}}| {value:.1%}")
    return "\n".join(lines)
