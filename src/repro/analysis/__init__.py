"""Distribution helpers and text rendering for tables/figures."""

from repro.analysis.distributions import (
    empirical_cdf,
    fraction_above,
    fraction_at_least,
    fraction_at_most,
    fraction_below,
)
from repro.analysis.curves import ascii_bars, ascii_cdf
from repro.analysis.report import ExperimentReport, render_table

__all__ = [
    "empirical_cdf",
    "fraction_above",
    "fraction_at_least",
    "fraction_at_most",
    "fraction_below",
    "ExperimentReport",
    "render_table",
    "ascii_bars",
    "ascii_cdf",
]
