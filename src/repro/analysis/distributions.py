"""Empirical distribution helpers used by the figure reproductions.

Every figure in the paper is a CDF/CCDF; its reproduction reduces to
"what fraction of the population is above/below a threshold".
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "empirical_cdf",
    "fraction_above",
    "fraction_at_least",
    "fraction_at_most",
    "fraction_below",
]


def empirical_cdf(values: Iterable[float]) -> tuple[np.ndarray, np.ndarray]:
    """``(x, F(x))`` of the empirical CDF, one step per sample.

    >>> x, y = empirical_cdf([3, 1, 2])
    >>> list(x), list(y)
    ([1.0, 2.0, 3.0], [0.3333333333333333, 0.6666666666666666, 1.0])
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if len(data) == 0:
        return np.zeros(0), np.zeros(0)
    y = np.arange(1, len(data) + 1) / len(data)
    return data, y


def _as_array(values: Iterable[float]) -> np.ndarray:
    return np.asarray(list(values), dtype=float)


def fraction_above(values: Iterable[float], threshold: float) -> float:
    """P(X > t) — the CCDF read off at *t*."""
    data = _as_array(values)
    if len(data) == 0:
        return 0.0
    return float(np.mean(data > threshold))


def fraction_at_least(values: Iterable[float], threshold: float) -> float:
    """P(X >= t)."""
    data = _as_array(values)
    if len(data) == 0:
        return 0.0
    return float(np.mean(data >= threshold))


def fraction_below(values: Iterable[float], threshold: float) -> float:
    """P(X < t)."""
    data = _as_array(values)
    if len(data) == 0:
        return 0.0
    return float(np.mean(data < threshold))


def fraction_at_most(values: Iterable[float], threshold: float) -> float:
    """P(X <= t) — the CDF read off at *t*."""
    data = _as_array(values)
    if len(data) == 0:
        return 0.0
    return float(np.mean(data <= threshold))
