"""repro — a reproduction of "FRAppE: Detecting Malicious Facebook
Applications" (Rahman, Huang, Madhyastha, Faloutsos — CoNEXT 2012).

The package has three layers:

* **substrates** — a simulated Facebook platform
  (:mod:`repro.platform`), web/URL infrastructure
  (:mod:`repro.urlinfra`), a generative app ecosystem
  (:mod:`repro.ecosystem`), the MyPageKeeper post classifier
  (:mod:`repro.mypagekeeper`), a crawler + dataset builder
  (:mod:`repro.crawler`), and a from-scratch SVM stack
  (:mod:`repro.ml`);
* **the contribution** — FRAppE feature extraction, classifiers,
  validation, and pipeline (:mod:`repro.core`), plus the AppNet
  forensics (:mod:`repro.collusion`);
* **evaluation** — one module per paper table/figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro.config import ScaleConfig
    from repro.core import FrappePipeline

    result = FrappePipeline(ScaleConfig(scale=0.02)).run()
    print(result.bundle.table1_rows())

Durability: long crawls are crash-safe.  :class:`CrawlJournal` is a
write-ahead log — once ``append`` returns, that app's record is on disk
(written, flushed, fsynced) and survives any process death; killing a
checkpointed crawl anywhere and resuming it yields records, and an
exported dataset, byte-identical to an uninterrupted run.
:func:`atomic_write` is the shared all-or-nothing file write behind the
journal's snapshots and the dataset export, and :exc:`SimulatedCrash`
is the injected process death the crash tests kill crawls with::

    from repro import CrawlJournal

    with CrawlJournal("checkpoint/") as journal:
        records = crawler.crawl_many(app_ids, journal=journal)
"""

from repro.config import PAPER, PaperStats, ScaleConfig
from repro.crawler.checkpoint import CrawlJournal, SimulatedCrash, atomic_write

__version__ = "1.0.0"

__all__ = [
    "PAPER",
    "PaperStats",
    "ScaleConfig",
    "CrawlJournal",
    "SimulatedCrash",
    "atomic_write",
    "__version__",
]
