"""repro — a reproduction of "FRAppE: Detecting Malicious Facebook
Applications" (Rahman, Huang, Madhyastha, Faloutsos — CoNEXT 2012).

The package has three layers:

* **substrates** — a simulated Facebook platform
  (:mod:`repro.platform`), web/URL infrastructure
  (:mod:`repro.urlinfra`), a generative app ecosystem
  (:mod:`repro.ecosystem`), the MyPageKeeper post classifier
  (:mod:`repro.mypagekeeper`), a crawler + dataset builder
  (:mod:`repro.crawler`), and a from-scratch SVM stack
  (:mod:`repro.ml`);
* **the contribution** — FRAppE feature extraction, classifiers,
  validation, and pipeline (:mod:`repro.core`), plus the AppNet
  forensics (:mod:`repro.collusion`);
* **evaluation** — one module per paper table/figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro.config import ScaleConfig
    from repro.core import FrappePipeline

    result = FrappePipeline(ScaleConfig(scale=0.02)).run()
    print(result.bundle.table1_rows())
"""

from repro.config import PAPER, PaperStats, ScaleConfig

__version__ = "1.0.0"

__all__ = ["PAPER", "PaperStats", "ScaleConfig", "__version__"]
