"""Deterministic random-number streams for the simulation.

Every subsystem of the simulation (name generation, campaign wiring, post
emission, click modelling, ...) draws from its own named stream derived
from a single master seed.  This keeps the whole pipeline reproducible
while letting subsystems evolve independently: adding a draw to one
subsystem does not perturb any other subsystem's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*.

    The derivation is a stable hash (SHA-256), so the same
    ``(master_seed, name)`` pair always yields the same child seed on
    every platform and Python version.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A registry of named, independently seeded numpy ``Generator`` streams.

    >>> rngs = RngRegistry(master_seed=7)
    >>> a = rngs.stream("names").integers(0, 100)
    >>> b = RngRegistry(master_seed=7).stream("names").integers(0, 100)
    >>> int(a) == int(b)
    True
    """

    def __init__(self, master_seed: int = 2012) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        Repeated calls with the same name return the same generator
        object, so draws within one registry advance the stream.
        """
        if name not in self._streams:
            seed = derive_seed(self.master_seed, name)
            self._streams[name] = np.random.default_rng(seed)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for *name* (restarted stream)."""
        self._streams.pop(name, None)
        return self.stream(name)

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.master_seed, f"spawn:{name}"))
