"""Simulated web/URL infrastructure surrounding the Facebook platform.

The paper's measurements depend on several external services: the
``bit.ly`` shortener and its click-count API (Fig 3, Sec 6.1), the
Web-of-Trust domain reputation service (Fig 8), URL blacklists feeding
MyPageKeeper (Sec 2.2), the indirection websites hackers use to rotate
app promotion targets (Sec 6.1), and the hosting providers behind them
(one third on Amazon).  This package simulates all of them offline.
"""

from repro.urlinfra.url import Url, domain_of, is_facebook_url, registered_domain
from repro.urlinfra.shortener import Shortener, ShortLink
from repro.urlinfra.wot import WotService, WOT_UNKNOWN
from repro.urlinfra.blacklist import UrlBlacklist
from repro.urlinfra.redirector import IndirectionSite, RedirectorNetwork
from repro.urlinfra.hosting import HostingRegistry

__all__ = [
    "Url",
    "domain_of",
    "is_facebook_url",
    "registered_domain",
    "Shortener",
    "ShortLink",
    "WotService",
    "WOT_UNKNOWN",
    "UrlBlacklist",
    "IndirectionSite",
    "RedirectorNetwork",
    "HostingRegistry",
]
