"""A Web-of-Trust-style domain reputation service (Fig 8).

WOT assigns each domain a trust score between 0 and 100; domains it has
never collected enough evidence about have *no* score, which the paper
maps to a sentinel value of -1.  Reputation is per registered domain.
"""

from __future__ import annotations

import numpy as np

from repro.urlinfra.url import domain_of, registered_domain

__all__ = ["WotService", "WOT_UNKNOWN"]

#: The paper's sentinel for "WOT has no score for this domain".
WOT_UNKNOWN = -1.0


class WotService:
    """Domain → trust score database with partial coverage.

    Well-established domains (facebook.com, large companies) carry high
    scores; freshly registered spam domains are usually absent from the
    database, and the few that are present score very low.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._scores: dict[str, float] = {}
        # The platform itself is maximally trusted.
        self.set_score("facebook.com", 94.0)

    def set_score(self, domain: str, score: float) -> None:
        if not WOT_UNKNOWN <= score <= 100.0:
            raise ValueError(f"score out of range: {score}")
        self._scores[registered_domain(domain)] = float(score)

    def forget(self, domain: str) -> None:
        """Remove a domain from the database (it becomes unknown)."""
        self._scores.pop(registered_domain(domain), None)

    def score_domain(self, domain: str) -> float:
        """Trust score for a domain; :data:`WOT_UNKNOWN` if uncovered."""
        return self._scores.get(registered_domain(domain), WOT_UNKNOWN)

    def score_url(self, url: str) -> float:
        """Trust score of the registered domain behind *url*."""
        domain = domain_of(url)
        if not domain:
            return WOT_UNKNOWN
        return self.score_domain(domain)

    def known_domains(self) -> list[str]:
        return sorted(self._scores)

    # -- seeding helpers used by the ecosystem generator -----------------

    def seed_reputable(self, domain: str, low: float = 70.0, high: float = 98.0) -> None:
        """Record a reputable domain with a high score."""
        self.set_score(domain, float(self._rng.uniform(low, high)))

    def seed_spammy(
        self, domain: str, coverage_probability: float = 0.2, high: float = 5.0
    ) -> None:
        """Record a spam domain: usually unknown, occasionally scored <= *high*.

        Matches Fig 8: 80% of malicious redirect domains have no WOT
        score and 95% score below 5.
        """
        if self._rng.random() < coverage_probability:
            self.set_score(domain, float(self._rng.uniform(0.0, high)))
        else:
            self.forget(domain)
