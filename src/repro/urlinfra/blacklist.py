"""URL blacklists (one of MyPageKeeper's inputs, Sec 2.2).

MyPageKeeper combines URL blacklists with its own post classifier.  The
blacklist matches on exact URL or on registered domain, mirroring how
feeds like Google Safe Browsing or PhishTank are applied in practice.
Blacklisting lags the appearance of a malicious URL, which the
simulation models with an explicit delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.urlinfra.url import domain_of

__all__ = ["UrlBlacklist"]


@dataclass
class UrlBlacklist:
    """A URL/domain blacklist with time-delayed entries.

    Time is measured in simulation days.  An entry added at day *d*
    matches lookups at any day >= *d*; lookups with ``day=None`` ignore
    timing and match everything ever listed.
    """

    _urls: dict[str, int] = field(default_factory=dict)
    _domains: dict[str, int] = field(default_factory=dict)

    def add_url(self, url: str, day: int = 0) -> None:
        existing = self._urls.get(url)
        if existing is None or day < existing:
            self._urls[url] = day

    def add_domain(self, domain: str, day: int = 0) -> None:
        domain = domain.lower()
        existing = self._domains.get(domain)
        if existing is None or day < existing:
            self._domains[domain] = day

    def __len__(self) -> int:
        return len(self._urls) + len(self._domains)

    def contains(self, url: str, day: int | None = None) -> bool:
        """Is *url* blacklisted (as of *day*, if given)?"""
        listed_day = self._urls.get(url)
        if listed_day is None:
            domain = domain_of(url)
            if domain:
                listed_day = self._domains.get(domain)
        if listed_day is None:
            return False
        return day is None or day >= listed_day

    def __contains__(self, url: str) -> bool:
        return self.contains(url)
