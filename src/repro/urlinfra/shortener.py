"""A bit.ly-style URL shortener with a click-count API.

Fig 3 of the paper measures the reach of malicious apps through the
click counts that the bit.ly API reports for links the apps posted.  The
paper notes two caveats which this model reproduces:

* the API resolves most but not all short links (5,197 of 5,700 —
  links can be made private or deleted), and
* click totals include clicks from outside Facebook, so they are an
  upper bound on Facebook-originated clicks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ShortLink", "Shortener"]

_ALPHABET = "abcdefghijkmnpqrstuvwxyzABCDEFGHJKLMNPQRSTUVWXYZ23456789"


@dataclass
class ShortLink:
    """One shortened URL and its click counters."""

    code: str
    long_url: str
    domain: str
    resolvable: bool = True
    clicks_facebook: int = 0
    clicks_external: int = 0

    @property
    def short_url(self) -> str:
        return f"http://{self.domain}/{self.code}"

    @property
    def total_clicks(self) -> int:
        return self.clicks_facebook + self.clicks_external


class Shortener:
    """One shortening service (``bit.ly`` by default).

    >>> rng = np.random.default_rng(0)
    >>> s = Shortener(rng)
    >>> short = s.shorten("http://example.com/page")
    >>> s.expand(short) == "http://example.com/page"
    True
    """

    def __init__(self, rng: np.random.Generator, domain: str = "bit.ly") -> None:
        self.domain = domain
        self._rng = rng
        self._by_code: dict[str, ShortLink] = {}
        self._by_long: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._by_code)

    def shorten(self, long_url: str, reuse: bool = True) -> str:
        """Shorten *long_url*, reusing an existing code unless *reuse* is False."""
        if reuse and long_url in self._by_long:
            return self._by_code[self._by_long[long_url]].short_url
        code = self._mint_code()
        link = ShortLink(code=code, long_url=long_url, domain=self.domain)
        self._by_code[code] = link
        self._by_long[long_url] = code
        return link.short_url

    def _mint_code(self) -> str:
        while True:
            chars = self._rng.choice(list(_ALPHABET), size=6)
            code = "".join(chars)
            if code not in self._by_code:
                return code

    def owns(self, url: str) -> bool:
        """Is *url* a short link minted by this service?"""
        return self._code_of(url) is not None

    def _code_of(self, url: str) -> str | None:
        prefix_http = f"http://{self.domain}/"
        prefix_https = f"https://{self.domain}/"
        for prefix in (prefix_http, prefix_https):
            if url.startswith(prefix):
                code = url[len(prefix) :]
                if code in self._by_code:
                    return code
        return None

    def link(self, url: str) -> ShortLink:
        code = self._code_of(url)
        if code is None:
            raise KeyError(f"unknown short URL: {url}")
        return self._by_code[code]

    # -- API surface (what the paper's scripts call) ---------------------

    def expand(self, url: str) -> str | None:
        """Resolve a short URL to its target; ``None`` if unresolvable.

        Mirrors the bit.ly expand API: private/deleted links fail.
        """
        link = self.link(url)
        return link.long_url if link.resolvable else None

    def clicks(self, url: str) -> int:
        """Total click count for a short URL (Facebook + elsewhere)."""
        return self.link(url).total_clicks

    # -- simulation hooks -------------------------------------------------

    def record_click(self, url: str, n: int = 1, from_facebook: bool = True) -> None:
        link = self.link(url)
        if from_facebook:
            link.clicks_facebook += n
        else:
            link.clicks_external += n

    def make_unresolvable(self, url: str) -> None:
        """Mark a link private/deleted so the expand API fails on it."""
        self.link(url).resolvable = False

    def all_links(self) -> list[ShortLink]:
        return list(self._by_code.values())
