"""Indirection websites used for app promotion (Sec 6.1b).

Posts made by a promoter app carry a (usually shortened) URL pointing to
a website *outside* Facebook.  That website dynamically forwards each
visitor to the installation page of one of many promoted apps, rotating
targets over time.  The paper found 103 such sites pointing to 4,676
different malicious apps, a third of them hosted on amazonaws.com.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IndirectionSite", "RedirectorNetwork"]


@dataclass
class IndirectionSite:
    """One redirection website and its rotating pool of target apps."""

    url: str
    #: app IDs whose installation pages this site forwards to
    target_app_ids: list[str]
    hosting_provider: str = "unknown"

    def __post_init__(self) -> None:
        if not self.target_app_ids:
            raise ValueError("an indirection site needs at least one target")

    def resolve(self, rng: np.random.Generator) -> str:
        """Follow the redirect once: returns the app ID landed on."""
        index = int(rng.integers(0, len(self.target_app_ids)))
        return self.target_app_ids[index]


class RedirectorNetwork:
    """All indirection websites in the simulated web."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._sites: dict[str, IndirectionSite] = {}

    def __len__(self) -> int:
        return len(self._sites)

    def register(self, site: IndirectionSite) -> None:
        if site.url in self._sites:
            raise ValueError(f"site already registered: {site.url}")
        self._sites[site.url] = site

    def is_indirection(self, url: str) -> bool:
        return url in self._sites

    def site(self, url: str) -> IndirectionSite:
        return self._sites[url]

    def sites(self) -> list[IndirectionSite]:
        return list(self._sites.values())

    def follow(self, url: str) -> str:
        """Visit *url* once and return the app ID it forwards to."""
        return self._sites[url].resolve(self._rng)

    def probe(self, url: str, times: int) -> set[str]:
        """Follow *url* repeatedly and collect the distinct landing apps.

        This is the paper's measurement method: each indirection site
        was followed 100 times a day for a month and a half with an
        instrumented browser.
        """
        return {self.follow(url) for _ in range(times)}
