"""Hosting registry: which provider serves which domain (Sec 6.1).

The paper traces the indirection websites to their hosting
infrastructure and finds a third of them on ``amazonaws.com``.  Table 3
similarly ranks the domains hosting the redirect URIs of malicious
apps.  This registry is the simulation's miniature DNS/whois.
"""

from __future__ import annotations

from collections import Counter

from repro.urlinfra.url import domain_of, registered_domain

__all__ = ["HostingRegistry"]

AWS_PROVIDER = "amazonaws.com"


class HostingRegistry:
    """Maps registered domains to the provider hosting them."""

    def __init__(self) -> None:
        self._provider_of: dict[str, str] = {}

    def assign(self, domain: str, provider: str) -> None:
        self._provider_of[registered_domain(domain)] = provider

    def provider_of_domain(self, domain: str) -> str:
        return self._provider_of.get(registered_domain(domain), "unknown")

    def provider_of_url(self, url: str) -> str:
        domain = domain_of(url)
        return self.provider_of_domain(domain) if domain else "unknown"

    def domains_on(self, provider: str) -> list[str]:
        return sorted(d for d, p in self._provider_of.items() if p == provider)

    def provider_histogram(self, urls: list[str]) -> Counter[str]:
        """Provider → count over a list of URLs (Sec 6.1's AWS share)."""
        return Counter(self.provider_of_url(u) for u in urls)
