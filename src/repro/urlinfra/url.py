"""A small URL model.

The simulation passes URLs around as plain strings (as Facebook post
metadata does); this module centralises parsing so every subsystem
agrees on what the host, path, and query parameters of a URL are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlencode, urlsplit

__all__ = ["Url", "domain_of", "registered_domain", "is_facebook_url"]

FACEBOOK_DOMAIN = "facebook.com"


@dataclass(frozen=True)
class Url:
    """A parsed URL.

    >>> u = Url.parse("https://www.facebook.com/apps/application.php?id=42")
    >>> u.host, u.path, u.params["id"]
    ('www.facebook.com', '/apps/application.php', '42')
    """

    scheme: str
    host: str
    path: str = ""
    params: dict[str, str] = field(default_factory=dict)

    @classmethod
    def parse(cls, raw: str) -> "Url":
        parts = urlsplit(raw)
        if not parts.scheme or not parts.netloc:
            raise ValueError(f"not an absolute URL: {raw!r}")
        return cls(
            scheme=parts.scheme,
            host=parts.netloc.lower(),
            path=parts.path,
            params=dict(parse_qsl(parts.query)),
        )

    def __str__(self) -> str:
        query = f"?{urlencode(self.params)}" if self.params else ""
        return f"{self.scheme}://{self.host}{self.path}{query}"

    @property
    def domain(self) -> str:
        """The registered domain, e.g. ``facebook.com`` for ``www.facebook.com``."""
        return registered_domain(self.host)

    def with_params(self, **params: str) -> "Url":
        merged = dict(self.params)
        merged.update(params)
        return Url(self.scheme, self.host, self.path, merged)


def registered_domain(host: str) -> str:
    """Collapse a hostname to its registered domain.

    The simulation only mints two-label domains (plus subdomains), so
    the last two labels suffice; real public-suffix handling is out of
    scope.
    """
    labels = host.lower().rstrip(".").split(".")
    if len(labels) <= 2:
        return ".".join(labels)
    return ".".join(labels[-2:])


def domain_of(raw: str) -> str:
    """Registered domain of a raw URL string (empty string if unparsable)."""
    try:
        return Url.parse(raw).domain
    except ValueError:
        return ""


def is_facebook_url(raw: str) -> bool:
    """Does this URL point inside ``facebook.com`` (Sec 4.2.2)?"""
    return domain_of(raw) == FACEBOOK_DOMAIN
