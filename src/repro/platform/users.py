"""User accounts and the friendship graph.

The simulation keeps users lightweight — an integer ID plus install and
subscription state — because the paper's pipeline never needs the full
2.2M-user social graph: MyPageKeeper observes the walls of subscribed
users, and propagation is driven by campaign dynamics.  A small-world
:class:`SocialGraph` is provided for the examples and for propagation
demos where an explicit friend structure matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["UserBase", "SocialGraph"]


@dataclass
class _UserRecord:
    """Per-user platform state (installs, MyPageKeeper subscription)."""

    user_id: int
    installed_apps: set[str] = field(default_factory=set)
    subscribed_to_mpk: bool = False


class UserBase:
    """The population of platform users.

    Records are materialised lazily: most users never install a
    monitored security app and never need an object.
    """

    def __init__(self, n_users: int, rng: np.random.Generator) -> None:
        if n_users <= 0:
            raise ValueError("need at least one user")
        self.n_users = n_users
        self._rng = rng
        self._records: dict[int, _UserRecord] = {}

    def __len__(self) -> int:
        return self.n_users

    def record(self, user_id: int) -> _UserRecord:
        if not 0 <= user_id < self.n_users:
            raise KeyError(f"no such user: {user_id}")
        if user_id not in self._records:
            self._records[user_id] = _UserRecord(user_id)
        return self._records[user_id]

    def sample_users(self, n: int) -> np.ndarray:
        """Sample *n* distinct user IDs uniformly."""
        n = min(n, self.n_users)
        return self._rng.choice(self.n_users, size=n, replace=False)

    # -- MyPageKeeper subscription ---------------------------------------

    def subscribe_to_mpk(self, user_ids: np.ndarray | list[int]) -> None:
        for uid in user_ids:
            self.record(int(uid)).subscribed_to_mpk = True

    def subscribed_users(self) -> list[int]:
        return sorted(
            uid for uid, rec in self._records.items() if rec.subscribed_to_mpk
        )

    def is_subscribed(self, user_id: int) -> bool:
        rec = self._records.get(user_id)
        return rec is not None and rec.subscribed_to_mpk

    # -- installs -----------------------------------------------------------

    def install_app(self, user_id: int, app_id: str) -> None:
        self.record(user_id).installed_apps.add(app_id)

    def has_installed(self, user_id: int, app_id: str) -> bool:
        rec = self._records.get(user_id)
        return rec is not None and app_id in rec.installed_apps


class SocialGraph:
    """A Watts-Strogatz small-world friendship graph over a user range.

    Used by the examples to demonstrate app propagation along
    friendships; the measurement pipeline itself does not require it.
    """

    def __init__(
        self,
        n_users: int,
        mean_friends: int,
        rng: np.random.Generator,
        rewire_probability: float = 0.1,
    ) -> None:
        if mean_friends >= n_users:
            raise ValueError("mean_friends must be smaller than n_users")
        self.n_users = n_users
        self._adjacency: list[set[int]] = [set() for _ in range(n_users)]
        k = max(2, mean_friends // 2 * 2)  # even ring degree
        for u in range(n_users):
            for offset in range(1, k // 2 + 1):
                v = (u + offset) % n_users
                self._add_edge(u, v)
        # Rewire a fraction of edges for short path lengths.
        for u in range(n_users):
            for v in list(self._adjacency[u]):
                if v > u and rng.random() < rewire_probability:
                    w = int(rng.integers(0, n_users))
                    if w != u and w not in self._adjacency[u]:
                        self._remove_edge(u, v)
                        self._add_edge(u, w)

    def _add_edge(self, u: int, v: int) -> None:
        if u != v:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)

    def _remove_edge(self, u: int, v: int) -> None:
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def friends(self, user_id: int) -> set[int]:
        return set(self._adjacency[user_id])

    def degree(self, user_id: int) -> int:
        return len(self._adjacency[user_id])

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2
