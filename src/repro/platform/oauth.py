"""OAuth 2.0 access tokens (Fig 2 of the paper).

When a user installs an app, Facebook hands the application server an
OAuth token scoped to the permissions the user granted.  The token is
what lets the app read profile data and post on the user's wall — and
what hackers exfiltrate to their own servers (step 5 in Fig 2).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

__all__ = ["AccessToken", "TokenService"]


@dataclass(frozen=True)
class AccessToken:
    """An OAuth 2.0 bearer token for (user, app, scopes)."""

    token: str
    user_id: int
    app_id: str
    scopes: tuple[str, ...]
    issued_day: int = 0

    def allows(self, permission: str) -> bool:
        return permission in self.scopes


class TokenService:
    """Issues and validates access tokens; supports revocation."""

    def __init__(self) -> None:
        self._tokens: dict[str, AccessToken] = {}
        self._revoked: set[str] = set()

    def issue(
        self, user_id: int, app_id: str, scopes: tuple[str, ...], day: int = 0
    ) -> AccessToken:
        token = AccessToken(
            token=secrets.token_hex(16),
            user_id=user_id,
            app_id=app_id,
            scopes=tuple(scopes),
            issued_day=day,
        )
        self._tokens[token.token] = token
        return token

    def validate(self, raw_token: str) -> AccessToken | None:
        """Return the token record if valid and unrevoked, else ``None``."""
        if raw_token in self._revoked:
            return None
        return self._tokens.get(raw_token)

    def revoke(self, raw_token: str) -> None:
        self._revoked.add(raw_token)

    def revoke_app(self, app_id: str) -> int:
        """Revoke every token issued to *app_id* (moderation takedown)."""
        revoked = 0
        for raw, record in self._tokens.items():
            if record.app_id == app_id and raw not in self._revoked:
                self._revoked.add(raw)
                revoked += 1
        return revoked

    def tokens_of_app(self, app_id: str) -> list[AccessToken]:
        return [
            t
            for t in self._tokens.values()
            if t.app_id == app_id and t.token not in self._revoked
        ]
