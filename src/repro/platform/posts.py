"""Posts, walls, and the platform-wide post log.

A post is the unit MyPageKeeper observes (Sec 2.2): it carries a text
message, an optional link, like/comment counts, and — crucially for this
paper — the ``application`` metadata field naming the app that made it.
That field is what app piggybacking forges (Sec 6.2), so a post also
records hidden truth about who really produced it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Post", "PostLog"]

#: Shared empty multiset returned by :meth:`PostLog.url_counts` for apps
#: with no links, so the no-copy path allocates nothing.
_NO_URLS: Counter[str] = Counter()


@dataclass(slots=True)
class Post:
    """One wall/news-feed post."""

    post_id: int
    day: int
    user_id: int
    #: The app named in the post's ``application`` metadata field;
    #: ``None`` for manual posts and social-plugin posts (37% of the
    #: paper's corpus).
    app_id: str | None
    #: The app's display name, as Facebook embeds it in post metadata
    #: (this is how the paper knows the names of long-deleted apps).
    app_name: str | None = None
    message: str = ""
    link: str | None = None
    likes: int = 0
    comments: int = 0
    # --- hidden ground truth (never read by the classifiers) ----------
    truth_malicious: bool = False
    #: True when hackers forged the application field via prompt_feed.
    truth_piggybacked: bool = False

    @property
    def has_link(self) -> bool:
        return self.link is not None


class PostLog:
    """Append-only log of every post, with per-app aggregates.

    The log maintains the aggregates FRAppE's aggregation-based features
    need (per-app post counts and URL multisets) incrementally, so
    feature extraction never rescans the full corpus.
    """

    def __init__(self) -> None:
        self._posts: list[Post] = []
        self._post_ids_by_app: dict[str, list[int]] = {}
        self._url_counts_by_app: dict[str, Counter[str]] = {}
        self._name_of_app: dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self._posts)

    def new_post(self, **kwargs) -> Post:
        """Create, append, and return a post with the next post ID."""
        post = Post(post_id=len(self._posts), **kwargs)
        self.append(post)
        return post

    def append(self, post: Post) -> None:
        if post.post_id != len(self._posts):
            raise ValueError(
                f"post IDs must be dense: expected {len(self._posts)}, "
                f"got {post.post_id}"
            )
        self._posts.append(post)
        if post.app_id is not None:
            self._post_ids_by_app.setdefault(post.app_id, []).append(post.post_id)
            if post.app_name is not None:
                self._name_of_app.setdefault(post.app_id, post.app_name)
            if post.link is not None:
                counts = self._url_counts_by_app.setdefault(post.app_id, Counter())
                counts[post.link] += 1

    def get(self, post_id: int) -> Post:
        return self._posts[post_id]

    # -- per-app views -----------------------------------------------------

    def app_ids(self) -> list[str]:
        """Every app observed posting, in first-seen order."""
        return list(self._post_ids_by_app)

    def post_count(self, app_id: str) -> int:
        return len(self._post_ids_by_app.get(app_id, ()))

    def posts_of_app(self, app_id: str) -> list[Post]:
        return [self._posts[i] for i in self._post_ids_by_app.get(app_id, ())]

    def urls_of_app(self, app_id: str) -> Counter[str]:
        """Multiset of URLs the app has posted."""
        return Counter(self._url_counts_by_app.get(app_id, Counter()))

    def url_counts(self, app_id: str) -> Counter[str]:
        """Like :meth:`urls_of_app`, but the live internal multiset.

        No copy is made, so batch feature extraction can scan every
        app's URLs in one pass; callers must treat the result as
        read-only.
        """
        return self._url_counts_by_app.get(app_id, _NO_URLS)

    def link_count(self, app_id: str) -> int:
        return sum(self._url_counts_by_app.get(app_id, Counter()).values())

    def app_name(self, app_id: str) -> str | None:
        """App display name as observed in post metadata."""
        return self._name_of_app.get(app_id)

    def app_names(self) -> dict[str, str]:
        """All observed app_id -> name mappings."""
        return dict(self._name_of_app)
