"""Third-party applications and the platform's app registry.

Each application mirrors the attributes the paper crawls: the Open
Graph summary (name, description, company, category, monthly active
users), the installation-time permission set and redirect URI, the
client ID handed out by the installation URL (Sec 4.1.4), and the
profile-feed posts (Sec 4.1.5).

``truth_malicious`` is the simulation's hidden ground-truth label.  It
exists so experiments can score classifiers; nothing in the FRAppE
pipeline reads it — FRAppE sees apps only through the crawler and the
post log, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.platform.permissions import PUBLISH_STREAM, validate_permissions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.platform.posts import Post

__all__ = ["FacebookApp", "AppRegistry"]

#: Facebook category vocabulary (a subset of the 2012 list).
APP_CATEGORIES = (
    "Games",
    "Entertainment",
    "Lifestyle",
    "Utilities",
    "News",
    "Sports",
    "Education",
    "Business",
    "Communication",
    "Music",
)


@dataclass
class FacebookApp:
    """One third-party application registered on the platform."""

    app_id: str
    name: str
    developer_id: str
    created_day: int = 0
    # --- Open Graph summary fields (empty string = not configured) ----
    description: str = ""
    company: str = ""
    category: str = ""
    # --- installation configuration ------------------------------------
    permissions: tuple[str, ...] = (PUBLISH_STREAM,)
    redirect_uri: str = "https://apps.facebook.com/app"
    #: Sibling app IDs the install URL may hand out as the client ID
    #: instead of this app's own ID (Sec 4.1.4).  Empty = honest.
    client_id_pool: tuple[str, ...] = ()
    #: Whether an automated crawler can follow this app's install-URL
    #: redirect flow.  Many 2012 install flows were human-only (Sec 2.3:
    #: "automatically crawling the permissions for all apps is not
    #: trivial"), which is why D-Inst is much smaller than D-Sample.
    install_flow_crawlable: bool = True
    # --- lifecycle -------------------------------------------------------
    deleted_day: int | None = None
    # --- engagement ------------------------------------------------------
    #: Monthly active users over the crawl window (Fig 4).
    mau_series: tuple[int, ...] = ()
    #: Posts made by users/developers on the app's profile page.
    profile_feed: list["Post"] = field(default_factory=list)
    # --- hidden ground truth (never read by FRAppE) ----------------------
    truth_malicious: bool = False
    #: Hacker organisation controlling this app, if malicious.
    truth_campaign_id: str | None = None

    def __post_init__(self) -> None:
        self.permissions = validate_permissions(self.permissions)

    # --- summary-derived helpers -----------------------------------------

    @property
    def has_description(self) -> bool:
        return bool(self.description)

    @property
    def has_company(self) -> bool:
        return bool(self.company)

    @property
    def has_category(self) -> bool:
        return bool(self.category)

    @property
    def permission_count(self) -> int:
        return len(self.permissions)

    @property
    def median_mau(self) -> int:
        if not self.mau_series:
            return 0
        return int(np.median(np.asarray(self.mau_series)))

    @property
    def max_mau(self) -> int:
        return max(self.mau_series, default=0)

    # --- lifecycle ---------------------------------------------------------

    def is_deleted(self, day: int | None = None) -> bool:
        """Has Facebook removed this app from the graph (as of *day*)?"""
        if self.deleted_day is None:
            return False
        return day is None or day >= self.deleted_day

    # --- platform URLs -------------------------------------------------------

    @property
    def graph_url(self) -> str:
        return f"https://graph.facebook.com/{self.app_id}"

    @property
    def install_url(self) -> str:
        return f"https://www.facebook.com/apps/application.php?id={self.app_id}"

    @property
    def canvas_url(self) -> str:
        return f"https://apps.facebook.com/{self.app_id}"


class AppRegistry:
    """All applications known to the platform, indexed by app ID."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._apps: dict[str, FacebookApp] = {}

    def __len__(self) -> int:
        return len(self._apps)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._apps

    def mint_app_id(self) -> str:
        """Mint a fresh Facebook-style numeric app ID."""
        while True:
            app_id = str(self._rng.integers(10**14, 10**15))
            if app_id not in self._apps:
                return app_id

    def register(self, app: FacebookApp) -> FacebookApp:
        if app.app_id in self._apps:
            raise ValueError(f"app ID already registered: {app.app_id}")
        self._apps[app.app_id] = app
        return app

    def create(self, **kwargs) -> FacebookApp:
        """Mint an ID and register a new app in one step."""
        app = FacebookApp(app_id=self.mint_app_id(), **kwargs)
        return self.register(app)

    def get(self, app_id: str) -> FacebookApp:
        return self._apps[app_id]

    def maybe_get(self, app_id: str) -> FacebookApp | None:
        return self._apps.get(app_id)

    def all_apps(self) -> list[FacebookApp]:
        return list(self._apps.values())

    def alive(self, day: int | None = None) -> list[FacebookApp]:
        return [a for a in self._apps.values() if not a.is_deleted(day)]

    def by_name(self, name: str) -> list[FacebookApp]:
        return [a for a in self._apps.values() if a.name == name]

    def malicious(self) -> list[FacebookApp]:
        """Ground-truth malicious apps — for scoring experiments only."""
        return [a for a in self._apps.values() if a.truth_malicious]

    def benign(self) -> list[FacebookApp]:
        """Ground-truth benign apps — for scoring experiments only."""
        return [a for a in self._apps.values() if not a.truth_malicious]
