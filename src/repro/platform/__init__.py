"""The simulated Facebook platform.

This package provides the *mechanisms* the paper's measurement relies
on: user accounts and walls, third-party applications with the
64-permission OAuth install flow (Fig 2), posts and news feeds, the Open
Graph API surface that the crawler queries (app summaries, profile
feeds, deletion errors), app installation URLs with their client-ID
redirect parameter (Sec 4.1.4), the lax ``prompt_feed`` authentication
that enables app piggybacking (Sec 6.2), and Facebook-side moderation
that deletes detected apps from the graph.

*Policy* — which apps exist, what they post, how campaigns are wired —
lives in :mod:`repro.ecosystem`.
"""

from repro.platform.permissions import (
    PERMISSION_POOL,
    PUBLISH_STREAM,
    TOP_BENIGN_PERMISSIONS,
    validate_permissions,
)
from repro.platform.apps import AppRegistry, FacebookApp
from repro.platform.users import SocialGraph, UserBase
from repro.platform.posts import Post, PostLog
from repro.platform.oauth import AccessToken, TokenService
from repro.platform.install import InstallPrompt, InstallationService
from repro.platform.graph_api import GraphApi, GraphApiError
from repro.platform.moderation import ModerationEngine
from repro.platform.transport import (
    DirectTransport,
    FaultPlan,
    FaultyTransport,
    RateLimitError,
    RequestTimeoutError,
    TransientGraphApiError,
    TransientServerError,
    TransportStats,
)

__all__ = [
    "PERMISSION_POOL",
    "PUBLISH_STREAM",
    "TOP_BENIGN_PERMISSIONS",
    "validate_permissions",
    "AppRegistry",
    "FacebookApp",
    "SocialGraph",
    "UserBase",
    "Post",
    "PostLog",
    "AccessToken",
    "TokenService",
    "InstallPrompt",
    "InstallationService",
    "GraphApi",
    "GraphApiError",
    "TransientGraphApiError",
    "RateLimitError",
    "TransientServerError",
    "RequestTimeoutError",
    "DirectTransport",
    "FaultyTransport",
    "FaultPlan",
    "TransportStats",
    "ModerationEngine",
]
