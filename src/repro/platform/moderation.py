"""Facebook-side moderation: deleting detected apps from the graph.

Facebook monitors its platform and deletes malicious apps it catches
(Sec 5.3 uses these deletions as validation).  The paper's numbers imply
partial, delayed enforcement:

* by the March–May crawl, only 2,528 of 6,273 malicious apps still had a
  graph summary (≈60% already removed),
* by October 2012, 5,440 of 6,273 (87%) were deleted,
* some benign apps disappear too (6,067 of 6,273 remained) — ordinary
  developer churn rather than enforcement.

The engine models per-day removal hazards for both classes, calibrated
so those observed survival fractions emerge at the corresponding days.
"""

from __future__ import annotations

import math

import numpy as np

from repro.platform.apps import AppRegistry, FacebookApp
from repro.platform.oauth import TokenService

__all__ = ["ModerationEngine", "hazard_for_survival"]


def hazard_for_survival(survival_fraction: float, days: int) -> float:
    """Daily removal hazard giving *survival_fraction* after *days* days.

    Solves ``(1 - h) ** days = survival_fraction``.
    """
    if not 0 < survival_fraction <= 1:
        raise ValueError("survival fraction must be in (0, 1]")
    if days <= 0:
        raise ValueError("days must be positive")
    return 1.0 - survival_fraction ** (1.0 / days)


class ModerationEngine:
    """Applies removal hazards to apps over simulated time."""

    def __init__(
        self,
        registry: AppRegistry,
        tokens: TokenService | None,
        rng: np.random.Generator,
        malicious_daily_hazard: float,
        benign_daily_hazard: float,
    ) -> None:
        for hazard in (malicious_daily_hazard, benign_daily_hazard):
            if not 0 <= hazard < 1:
                raise ValueError(f"hazard must be in [0, 1), got {hazard}")
        self._registry = registry
        self._tokens = tokens
        self._rng = rng
        self.malicious_daily_hazard = malicious_daily_hazard
        self.benign_daily_hazard = benign_daily_hazard

    def delete_app(self, app: FacebookApp, day: int) -> None:
        """Remove *app* from the graph and revoke its tokens."""
        if app.is_deleted(day):
            return
        app.deleted_day = day
        if self._tokens is not None:
            self._tokens.revoke_app(app.app_id)

    def step_day(self, day: int) -> int:
        """Run one day of enforcement; returns the number of deletions."""
        deleted = 0
        for app in self._registry.all_apps():
            if app.is_deleted(day) or app.created_day > day:
                continue
            hazard = (
                self.malicious_daily_hazard
                if app.truth_malicious
                else self.benign_daily_hazard
            )
            if hazard and self._rng.random() < hazard:
                self.delete_app(app, day)
                deleted += 1
        return deleted

    def run(self, first_day: int, last_day: int) -> int:
        """Run enforcement over an inclusive day range."""
        return sum(self.step_day(day) for day in range(first_day, last_day + 1))

    # -- bulk assignment used by the fast simulation path -----------------

    def assign_deletion_days(
        self, apps: list[FacebookApp], horizon_days: int
    ) -> None:
        """Draw each app's deletion day directly from its geometric law.

        Equivalent in distribution to running :meth:`step_day` for
        ``horizon_days`` days, but O(apps) instead of O(apps x days).
        Apps whose drawn day falls beyond the horizon stay alive.
        """
        for app in apps:
            hazard = (
                self.malicious_daily_hazard
                if app.truth_malicious
                else self.benign_daily_hazard
            )
            if hazard <= 0:
                continue
            # Geometric draw: day of first "removal success".
            u = self._rng.random()
            lifetime = int(math.ceil(math.log(max(u, 1e-300)) / math.log(1.0 - hazard)))
            deletion_day = app.created_day + max(1, lifetime)
            if deletion_day <= horizon_days:
                app.deleted_day = deletion_day
                if self._tokens is not None:
                    self._tokens.revoke_app(app.app_id)
