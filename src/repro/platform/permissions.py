"""The Facebook permission pool (Sec 4.1.2).

At install time every app requests a subset of 64 permissions
pre-defined by Facebook.  The paper's Fig 6 ranks the five permissions
most requested by each class; ``publish_stream`` (the ability to post on
the user's wall) dominates malicious apps because it is the only
capability spam campaigns need.
"""

from __future__ import annotations

__all__ = [
    "PERMISSION_POOL",
    "PUBLISH_STREAM",
    "OFFLINE_ACCESS",
    "TOP_BENIGN_PERMISSIONS",
    "validate_permissions",
]

PUBLISH_STREAM = "publish_stream"
OFFLINE_ACCESS = "offline_access"
USER_BIRTHDAY = "user_birthday"
EMAIL = "email"
PUBLISH_ACTIONS = "publish_actions"

#: The five permissions Fig 6 reports as most requested.
TOP_BENIGN_PERMISSIONS = (
    PUBLISH_STREAM,
    OFFLINE_ACCESS,
    USER_BIRTHDAY,
    EMAIL,
    PUBLISH_ACTIONS,
)

_USER_FIELDS = (
    "about_me", "activities", "birthday", "checkins", "education_history",
    "events", "games_activity", "groups", "hometown", "interests", "likes",
    "location", "notes", "online_presence", "photo_video_tags", "photos",
    "questions", "relationship_details", "relationships", "religion_politics",
    "status", "subscriptions", "videos", "website", "work_history",
)

#: The full pool of 64 permissions, modelled on the 2012 permissions
#: reference: wall/actions publishing, offline access, contact fields,
#: ``user_*`` profile fields, the matching ``friends_*`` fields, and a
#: handful of extended capabilities.
PERMISSION_POOL: tuple[str, ...] = (
    (
        PUBLISH_STREAM,
        PUBLISH_ACTIONS,
        OFFLINE_ACCESS,
        EMAIL,
        "read_stream",
        "read_friendlists",
        "read_insights",
        "read_mailbox",
        "read_requests",
        "manage_pages",
        "manage_notifications",
        "rsvp_event",
        "xmpp_login",
        "ads_management",
    )
    + tuple(f"user_{f}" for f in _USER_FIELDS)
    + tuple(f"friends_{f}" for f in _USER_FIELDS)
)

# ``user_birthday`` appears via the _USER_FIELDS expansion:
assert USER_BIRTHDAY in PERMISSION_POOL
assert len(PERMISSION_POOL) == 64, len(PERMISSION_POOL)
assert len(set(PERMISSION_POOL)) == 64

_POOL_SET = frozenset(PERMISSION_POOL)


def validate_permissions(permissions: list[str] | tuple[str, ...]) -> tuple[str, ...]:
    """Check a requested permission set against the platform pool.

    Returns the deduplicated tuple (stable order).  Raises
    ``ValueError`` on an unknown permission or an empty request — every
    app implicitly needs at least basic access, which the paper counts
    as one permission.
    """
    seen: dict[str, None] = {}
    for perm in permissions:
        if perm not in _POOL_SET:
            raise ValueError(f"unknown permission: {perm!r}")
        seen.setdefault(perm)
    if not seen:
        raise ValueError("an app must request at least one permission")
    return tuple(seen)
