"""The network transport under the crawler, with seeded fault injection.

The paper's nine-month crawl was defined by failure: rate limits,
5xx responses, hung redirect chains, feeds cut short mid-pagination,
and apps deleted between one weekly snapshot and the next.  This module
models that reality as a *transport* layer between the crawler and the
Graph API facade:

* :class:`DirectTransport` — the fault-free transport; every request
  reaches the platform and only *authoritative* errors (app removed)
  come back.  This is a strict no-op wrapper: with it, the crawler
  behaves byte-for-byte as it would talking to the API directly.
* :class:`FaultyTransport` — wraps the same endpoints but injects
  transient faults from a deterministic, seeded :class:`FaultPlan`:
  rate limits (with a retry-after hint), transient 5xx errors, timeouts,
  truncated feed pages, and mid-crawl app deletion.

Fault decisions are *stateless*: each is derived by hashing
``(seed, endpoint, app_id, call index)``, so the same plan replayed over
the same crawl order injects exactly the same faults — retries and
crawler refactors cannot perturb other apps' fault draws.

Both transports account simulated latency in a shared
:class:`TransportStats` clock, so benchmarks can measure what a fault
rate *costs* in crawl time, not just in data loss.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs.observer import get_observer
from repro.platform.graph_api import GraphApi, GraphApiError
from repro.platform.install import (
    AppRemovedError,
    InstallationService,
    InstallPrompt,
)
from repro.rng import derive_seed

__all__ = [
    "TransientGraphApiError",
    "RateLimitError",
    "TransientServerError",
    "RequestTimeoutError",
    "PlatformBlackoutError",
    "Fault",
    "FaultPlan",
    "draw_blackout_windows",
    "TransportStats",
    "DirectTransport",
    "FaultyTransport",
]


# -- error taxonomy --------------------------------------------------------
#
# GraphApiError / AppRemovedError are *permanent*: the platform answered
# authoritatively that the app is gone, and retrying cannot change that.
# The subclasses below are *transient*: the request failed, the platform
# said nothing about the app, and a retry may succeed.


class TransientGraphApiError(GraphApiError):
    """A request failed without an authoritative answer; retrying may help.

    Contrast with the base :class:`~repro.platform.graph_api.GraphApiError`,
    which is *permanent* (the app is removed from the graph): callers must
    never retry the base class, and must always consider retrying this one.
    """

    #: fault-kind tag (see :class:`FaultPlan`), e.g. ``"rate_limit"``
    kind: str = "transient"

    def __init__(self, app_id: str, message: str | None = None) -> None:
        super().__init__(message or app_id)
        self.app_id = app_id


class RateLimitError(TransientGraphApiError):
    """HTTP 429 analogue: the crawler exceeded its request quota.

    Transient — the request itself was fine; it must be *re-sent after
    waiting* at least :attr:`retry_after` simulated seconds.
    """

    kind = "rate_limit"

    def __init__(self, app_id: str, retry_after: float) -> None:
        super().__init__(app_id, f"rate limited on {app_id}")
        self.retry_after = float(retry_after)


class TransientServerError(TransientGraphApiError):
    """HTTP 5xx analogue: the platform hiccuped.

    Transient — unlike a summary query returning ``false`` (app removed,
    permanent), a 5xx carries no verdict about the app and is safe to
    retry with backoff.
    """

    kind = "server_error"


class RequestTimeoutError(TransientGraphApiError):
    """The request hung past the client timeout (stuck redirect chains).

    Transient, but expensive: the caller already paid the full timeout
    in latency before learning nothing.
    """

    kind = "timeout"

    def __init__(self, app_id: str, elapsed: float) -> None:
        super().__init__(app_id, f"timed out on {app_id}")
        self.elapsed = float(elapsed)


class PlatformBlackoutError(TransientGraphApiError):
    """The whole platform is down: a sustained outage window is active.

    Unlike the per-call faults, a blackout fails *every* request whose
    simulated start time falls inside the window, regardless of the
    per-call fault draw — the multi-call failure pattern that opens
    circuit breakers for real.  ``resume_at`` is the simulated global
    time the window ends; schedulers can use it to pause and re-plan
    instead of burning retry budgets against a wall.
    """

    kind = "blackout"

    def __init__(self, app_id: str, resume_at: float) -> None:
        super().__init__(app_id, f"platform blackout until t={resume_at:.0f}s")
        self.resume_at = float(resume_at)


# -- the fault plan --------------------------------------------------------


@dataclass(frozen=True)
class Fault:
    """One injected fault decision (already materialised draws)."""

    kind: str  # rate_limit | server_error | timeout | vanish | truncate
    retry_after: float = 0.0  # rate_limit only
    keep_fraction: float = 1.0  # truncate only


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic recipe for which requests fail and how.

    ``fault_rate`` is the per-request probability of *any* fault; the
    ``*_weight`` fields apportion it across fault kinds.  Truncation
    only applies to feed pages and vanishing only to apps still alive,
    so the effective mix per endpoint renormalises over the applicable
    kinds.  A plan with ``fault_rate=0`` never injects anything.
    """

    fault_rate: float = 0.0
    seed: int = 2012
    rate_limit_weight: float = 3.0
    server_error_weight: float = 3.0
    timeout_weight: float = 2.0
    truncate_weight: float = 1.0
    vanish_weight: float = 0.5
    #: rate-limit retry-after window, simulated seconds
    retry_after_range: tuple[float, float] = (15.0, 90.0)
    #: client-side timeout, simulated seconds (paid on every timeout fault)
    timeout_s: float = 30.0
    #: service time of a request that reaches the platform
    base_latency_s: float = 0.35
    #: service time of a fast failure (429/5xx responses return quickly)
    error_latency_s: float = 0.12
    #: sustained-outage windows ``(start_s, end_s)`` on the *global*
    #: simulated clock.  A request started inside a window fails with
    #: :class:`PlatformBlackoutError` before any per-call draw — the
    #: outage is platform-wide state, not a per-request coin flip.
    #: Distinct from ``fault_rate``: windows work at ``fault_rate=0``.
    blackout_windows: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate < 1.0:
            raise ValueError(f"fault_rate must be in [0, 1), got {self.fault_rate}")
        previous_end = -1.0
        for start, end in self.blackout_windows:
            if not 0.0 <= start < end:
                raise ValueError(
                    f"blackout window must satisfy 0 <= start < end, "
                    f"got ({start}, {end})"
                )
            if start <= previous_end:
                raise ValueError(
                    "blackout windows must be sorted and non-overlapping"
                )
            previous_end = end

    # -- blackout windows ---------------------------------------------------

    def blackout_at(self, now_s: float) -> tuple[float, float] | None:
        """The outage window containing *now_s*, or ``None``.

        Closed at the start, open at the end: a request issued exactly
        when the window closes reaches the platform again.
        """
        for start, end in self.blackout_windows:
            if start <= now_s < end:
                return (start, end)
            if now_s < start:
                return None
        return None

    @property
    def disabled(self) -> bool:
        return self.fault_rate == 0.0

    def _weights(self, endpoint: str) -> list[tuple[str, float]]:
        kinds = [
            ("rate_limit", self.rate_limit_weight),
            ("server_error", self.server_error_weight),
            ("timeout", self.timeout_weight),
            ("vanish", self.vanish_weight),
        ]
        if endpoint == "feed":
            kinds.append(("truncate", self.truncate_weight))
        return [(kind, weight) for kind, weight in kinds if weight > 0]

    def draw(self, endpoint: str, app_id: str, call_index: int) -> Fault | None:
        """The fault (if any) for one request, independent of all others."""
        if self.disabled:
            return None
        rng = np.random.default_rng(
            derive_seed(self.seed, f"fault:{endpoint}:{app_id}:{call_index}")
        )
        if rng.random() >= self.fault_rate:
            return None
        weighted = self._weights(endpoint)
        total = sum(weight for _, weight in weighted)
        pick = rng.random() * total
        cumulative = 0.0
        kind = weighted[-1][0]
        for candidate, weight in weighted:
            cumulative += weight
            if pick < cumulative:
                kind = candidate
                break
        if kind == "rate_limit":
            low, high = self.retry_after_range
            return Fault(kind, retry_after=float(rng.uniform(low, high)))
        if kind == "truncate":
            return Fault(kind, keep_fraction=float(rng.uniform(0.1, 0.9)))
        return Fault(kind)


def draw_blackout_windows(
    seed: int,
    count: int,
    horizon_s: float = 4.0 * 3600.0,
    duration_range: tuple[float, float] = (60.0, 150.0),
) -> tuple[tuple[float, float], ...]:
    """*count* seeded, sorted, non-overlapping outage windows.

    Window starts are drawn uniformly over ``[0, horizon_s)`` and
    durations over *duration_range*; overlapping draws are merged apart
    by shifting each window past its predecessor.  A pure function of
    the arguments, so the same seed always produces the same outage
    schedule — the blackout analogue of :meth:`FaultPlan.draw`.

    The default duration range sits *below* the default breaker
    cooldown (180 s), so a breaker opened by a blackout waits out one
    cooldown and finds the platform healthy again: open once, close
    once, no flapping.
    """
    if count <= 0:
        return ()
    rng = np.random.default_rng(derive_seed(seed, "blackout-windows"))
    starts = sorted(float(rng.uniform(0.0, horizon_s)) for _ in range(count))
    low, high = duration_range
    windows: list[tuple[float, float]] = []
    cursor = 0.0
    for start in starts:
        start = max(start, cursor)
        end = start + float(rng.uniform(low, high))
        windows.append((start, end))
        cursor = end + 1.0  # keep windows strictly apart
    return tuple(windows)


# -- latency + fault accounting --------------------------------------------


@dataclass
class TransportStats:
    """What the crawl cost: requests, injected faults, simulated time.

    ``service_s`` accumulates per-request service time (including paid
    timeouts); ``wait_s`` accumulates time the *crawler* chose to sleep
    (backoff, retry-after, circuit-breaker cooldowns).  Their sum is the
    simulated wall clock the resilience layer schedules against.

    The verdict service shares one transport (hence one stats clock)
    across in-flight requests, so every mutation goes through a method
    that holds an internal lock; lost updates would silently shrink the
    simulated clock and break deterministic replay.
    """

    requests: int = 0
    injected: Counter[str] = field(default_factory=Counter)
    truncated_feeds: int = 0
    service_s: float = 0.0
    wait_s: float = 0.0
    vanished: set[str] = field(default_factory=set)
    #: the *app frame*: time accumulated since the last
    #: :meth:`begin_app`.  All deadline/backoff/breaker arithmetic runs
    #: in this frame, which every crawl integrates from exactly 0.0 —
    #: that is what makes a sandboxed (batch-parallel) crawl of an app
    #: bit-identical to the same crawl performed in sequence, where the
    #: global clock base differs but the app frame does not.
    app_service_s: float = 0.0
    app_wait_s: float = 0.0
    #: when set (sandbox crawls), every service/wait increment is logged
    #: here in order, so the commit phase can replay the exact global
    #: floating-point accumulation the sequential loop would perform
    event_log: list[tuple[str, float]] | None = field(
        default=None, repr=False, compare=False
    )
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __getstate__(self) -> dict[str, Any]:
        """Picklable image: everything but the (unpicklable) lock.

        The multi-process crawl supervisor ships sandbox state between
        OS processes; the lock is process-local by nature and is
        recreated fresh on unpickle.
        """
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @property
    def elapsed_s(self) -> float:
        """The simulated clock: total service plus deliberate waiting."""
        with self._lock:
            return self.service_s + self.wait_s

    @property
    def app_elapsed_s(self) -> float:
        """The app-frame clock: time since the last :meth:`begin_app`."""
        with self._lock:
            return self.app_service_s + self.app_wait_s

    def begin_app(self) -> float:
        """Start a new app frame; returns the closed frame's extent.

        The returned delta is how far the old frame ran — callers use it
        to rebase frame-relative timestamps (breaker open times) into
        the new frame.
        """
        with self._lock:
            delta = self.app_service_s + self.app_wait_s
            self.app_service_s = 0.0
            self.app_wait_s = 0.0
            return delta

    def add_request(self) -> None:
        with self._lock:
            self.requests += 1

    def add_service(self, seconds: float) -> None:
        with self._lock:
            self.service_s += seconds
            self.app_service_s += seconds
            if self.event_log is not None:
                self.event_log.append(("s", seconds))

    def add_wait(self, seconds: float) -> None:
        with self._lock:
            self.wait_s += seconds
            self.app_wait_s += seconds
            if self.event_log is not None:
                self.event_log.append(("w", seconds))

    def add_fault(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1

    def add_truncated_feed(self) -> None:
        with self._lock:
            self.truncated_feeds += 1

    def add_vanished(self, app_id: str) -> None:
        with self._lock:
            self.vanished.add(app_id)

    def fault_count(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    # -- checkpoint support -----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-serialisable image of the accounting (for checkpoints)."""
        with self._lock:
            return {
                "requests": self.requests,
                "injected": dict(self.injected),
                "truncated_feeds": self.truncated_feeds,
                "service_s": self.service_s,
                "wait_s": self.wait_s,
                "app_service_s": self.app_service_s,
                "app_wait_s": self.app_wait_s,
                "vanished": sorted(self.vanished),
            }

    def restore(self, data: dict[str, Any]) -> None:
        """Restore accounting from a :meth:`snapshot` image, in place."""
        with self._lock:
            self.requests = int(data["requests"])
            self.injected = Counter(
                {kind: int(count) for kind, count in data["injected"].items()}
            )
            self.truncated_feeds = int(data["truncated_feeds"])
            self.service_s = float(data["service_s"])
            self.wait_s = float(data["wait_s"])
            self.app_service_s = float(data.get("app_service_s", 0.0))
            self.app_wait_s = float(data.get("app_wait_s", 0.0))
            self.vanished = set(data["vanished"])

    def apply_events(self, events: list[tuple[str, float]]) -> None:
        """Replay a sandbox's :attr:`event_log` onto this accounting.

        Applying the increments one by one — not as a lump sum —
        reproduces the sequential loop's floating-point accumulation
        bit for bit (float addition is not associative, so a lump sum
        would drift in the last ulp).
        """
        for kind, seconds in events:
            if kind == "s":
                self.add_service(seconds)
            else:
                self.add_wait(seconds)

    def merge_counters(self, delta: dict[str, Any]) -> None:
        """Merge a sandbox's exact (non-clock) tallies from a snapshot.

        Counts are integers and ``vanished`` is a set union, so merging
        is exact; the clock fields of the snapshot are ignored — they
        are replayed per increment via :meth:`apply_events` instead.
        """
        with self._lock:
            self.requests += int(delta["requests"])
            self.injected.update(
                {kind: int(count) for kind, count in delta["injected"].items()}
            )
            self.truncated_feeds += int(delta["truncated_feeds"])
            self.vanished |= set(delta["vanished"])


# -- transports ------------------------------------------------------------


class DirectTransport:
    """The fault-free transport: requests always reach the platform.

    Only authoritative errors (:class:`GraphApiError` /
    :class:`AppRemovedError`, both meaning *app removed*) propagate.
    Latency is still accounted so fault-free baselines have a crawl-cost
    denominator.
    """

    def __init__(
        self,
        graph_api: GraphApi,
        installer: InstallationService,
        stats: TransportStats | None = None,
        base_latency_s: float = 0.35,
    ) -> None:
        self._graph_api = graph_api
        self._installer = installer
        self._base_latency_s = base_latency_s
        self.stats = stats or TransportStats()

    def _account(self, endpoint: str, app_id: str) -> None:
        self.stats.add_request()
        self.stats.add_service(self._base_latency_s)
        obs = get_observer()
        if obs.enabled:
            # Error-biased recording: successful calls are the hot path
            # and already bounded by the enclosing crawl span (and the
            # retry layer's ``retry.attempt`` events), so they keep
            # aggregate metrics only — no per-call trace event.
            obs.count("transport_requests_total", endpoint=endpoint)
            obs.observe("transport_service_seconds", self._base_latency_s)

    # -- checkpoint support -----------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """Everything needed to continue this transport deterministically.

        Includes the installer's RNG state: the install URL of a
        colluding app *draws* which sibling's client ID it hands out, so
        a resumed crawl must continue that stream exactly where the
        interrupted run left it.
        """
        return {
            "stats": self.stats.snapshot(),
            "installer_rng": self._installer.rng_state(),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.stats.restore(state["stats"])
        self._installer.restore_rng_state(state["installer_rng"])

    def summary(self, app_id: str, day: int | None = None) -> dict[str, Any]:
        self._account("summary", app_id)
        return self._graph_api.summary(app_id, day=day)

    def profile_feed(
        self, app_id: str, day: int | None = None
    ) -> list[dict[str, Any]]:
        self._account("feed", app_id)
        return self._graph_api.profile_feed(app_id, day=day)

    def visit_install_url(
        self, app_id: str, day: int | None = None
    ) -> InstallPrompt:
        self._account("install", app_id)
        return self._installer.visit_install_url(app_id, day=day)


class FaultyTransport:
    """A transport that injects the faults a :class:`FaultPlan` dictates.

    Fault decisions happen *before* the underlying platform call, so an
    injected fault consumes no platform randomness: the simulated world
    observed through a faulty transport is the same world, just seen
    through a lossy network.

    A ``vanish`` fault models the app being deleted mid-crawl: from that
    request on, this transport answers every query about the app with
    the *permanent* :class:`GraphApiError`, exactly as the live site
    starts 404ing halfway through a weekly crawl window.
    """

    def __init__(
        self,
        graph_api: GraphApi,
        installer: InstallationService,
        plan: FaultPlan,
        stats: TransportStats | None = None,
    ) -> None:
        self._graph_api = graph_api
        self._installer = installer
        self.plan = plan
        self.stats = stats or TransportStats()
        self._vanished: set[str] = set()
        self._call_index: Counter[tuple[str, str]] = Counter()

    # -- checkpoint support -----------------------------------------------

    def snapshot_state(self) -> dict[str, Any]:
        """The faulty transport's full continuation state.

        On top of the stats clock and installer RNG this captures the
        per-``(endpoint, app)`` call indexes (fault draws are a pure
        function of them) and the vanished-app set, so a resumed crawl
        replays exactly the fault plan the interrupted run was on.
        """
        return {
            "stats": self.stats.snapshot(),
            "installer_rng": self._installer.rng_state(),
            "vanished": sorted(self._vanished),
            "call_index": [
                [endpoint, app_id, count]
                for (endpoint, app_id), count in sorted(
                    self._call_index.items()
                )
            ],
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.stats.restore(state["stats"])
        self._installer.restore_rng_state(state["installer_rng"])
        self._vanished = set(state.get("vanished", []))
        self._call_index = Counter(
            {
                (endpoint, app_id): int(count)
                for endpoint, app_id, count in state.get("call_index", [])
            }
        )

    # -- scheduler support --------------------------------------------------
    #
    # The batch-parallel scheduler crawls each app in a sandboxed clone
    # of this transport and merges the sandbox's bookkeeping back in
    # canonical order; these accessors are that merge surface.

    def active_blackout(self) -> tuple[float, float] | None:
        """The outage window covering the current simulated instant.

        The recrawl scheduler polls this before dispatching an app so a
        sustained outage triggers *backpressure* (pause and re-plan)
        instead of burning retry budgets and breaker state per call.
        """
        return self.plan.blackout_at(self.stats.elapsed_s)

    def vanished_apps(self) -> frozenset[str]:
        """Apps this transport has started answering 404 for."""
        return frozenset(self._vanished)

    def seed_vanished(self, app_ids) -> None:
        """Adopt vanished-app tombstones (sandbox seeding / commit merge)."""
        self._vanished |= set(app_ids)

    def call_index_items(self) -> list[tuple[str, str, int]]:
        """The per-``(endpoint, app)`` call counters, sorted."""
        return [
            (endpoint, app_id, count)
            for (endpoint, app_id), count in sorted(self._call_index.items())
        ]

    def absorb_call_indexes(self, items: list[tuple[str, str, int]]) -> None:
        """Advance call counters by a sandboxed crawl's consumption."""
        for endpoint, app_id, count in items:
            self._call_index[(endpoint, app_id)] += count

    # -- fault machinery ---------------------------------------------------

    def _next_index(self, endpoint: str, app_id: str) -> int:
        key = (endpoint, app_id)
        index = self._call_index[key]
        self._call_index[key] = index + 1
        return index

    def _inject(self, endpoint: str, app_id: str) -> Fault | None:
        """Account the request and raise if a fault is due.

        Returns the fault for kinds the endpoint handler must apply to
        the *response* (truncation); raises for request-level faults.
        """
        self.stats.add_request()
        obs = get_observer()
        window = self.plan.blackout_at(self.stats.elapsed_s)
        if window is not None:
            # A platform-wide outage beats every per-app consideration:
            # nothing answers, so no per-call randomness is consumed and
            # no call index advances — the same crawl replayed after the
            # window sees exactly the per-call faults it would have.
            self.stats.add_fault("blackout")
            self.stats.add_service(self.plan.error_latency_s)
            if obs.enabled:
                self._note_fault(obs, endpoint, app_id, "blackout")
            raise PlatformBlackoutError(app_id, resume_at=window[1])
        if app_id in self._vanished:
            self.stats.add_service(self.plan.base_latency_s)
            if obs.enabled:
                self._note_request(obs, endpoint, app_id, "gone")
            raise GraphApiError(app_id)
        fault = self.plan.draw(endpoint, app_id, self._next_index(endpoint, app_id))
        if fault is None:
            self.stats.add_service(self.plan.base_latency_s)
            if obs.enabled:
                # Error-biased recording: the fault-free fast path keeps
                # aggregate metrics only — the retry layer has already
                # recorded this call's ``retry.attempt`` event, and
                # faults below still get their own trace events.
                obs.count("transport_requests_total", endpoint=endpoint)
                obs.observe("transport_service_seconds", self.plan.base_latency_s)
            return None
        self.stats.add_fault(fault.kind)
        if fault.kind == "rate_limit":
            self.stats.add_service(self.plan.error_latency_s)
            if obs.enabled:
                self._note_fault(obs, endpoint, app_id, fault.kind)
            raise RateLimitError(app_id, retry_after=fault.retry_after)
        if fault.kind == "server_error":
            self.stats.add_service(self.plan.error_latency_s)
            if obs.enabled:
                self._note_fault(obs, endpoint, app_id, fault.kind)
            raise TransientServerError(app_id)
        if fault.kind == "timeout":
            self.stats.add_service(self.plan.timeout_s)
            if obs.enabled:
                self._note_fault(obs, endpoint, app_id, fault.kind)
            raise RequestTimeoutError(app_id, elapsed=self.plan.timeout_s)
        if fault.kind == "vanish":
            self._vanished.add(app_id)
            self.stats.add_vanished(app_id)
            self.stats.add_service(self.plan.base_latency_s)
            if obs.enabled:
                self._note_fault(obs, endpoint, app_id, fault.kind)
            raise GraphApiError(app_id)
        # truncate: the request succeeds but the response is cut short.
        self.stats.add_service(self.plan.base_latency_s)
        if obs.enabled:
            self._note_fault(obs, endpoint, app_id, fault.kind)
        return fault

    def _note_request(self, obs, endpoint: str, app_id: str, outcome: str) -> None:
        obs.event(
            "transport.request",
            t=self.stats.app_elapsed_s,
            endpoint=endpoint,
            app_id=app_id,
            outcome=outcome,
        )
        obs.count("transport_requests_total", endpoint=endpoint)

    def _note_fault(self, obs, endpoint: str, app_id: str, kind: str) -> None:
        obs.event(
            "transport.fault",
            t=self.stats.app_elapsed_s,
            endpoint=endpoint,
            app_id=app_id,
            kind=kind,
        )
        obs.count("transport_faults_total", kind=kind)

    # -- endpoints ---------------------------------------------------------

    def summary(self, app_id: str, day: int | None = None) -> dict[str, Any]:
        self._inject("summary", app_id)
        return self._graph_api.summary(app_id, day=day)

    def profile_feed(
        self, app_id: str, day: int | None = None
    ) -> list[dict[str, Any]]:
        fault = self._inject("feed", app_id)
        feed = self._graph_api.profile_feed(app_id, day=day)
        if fault is not None and fault.kind == "truncate" and feed:
            kept = max(1, int(len(feed) * fault.keep_fraction))
            if kept < len(feed):
                self.stats.add_truncated_feed()
                feed = feed[:kept]
        return feed

    def visit_install_url(
        self, app_id: str, day: int | None = None
    ) -> InstallPrompt:
        try:
            self._inject("install", app_id)
        except GraphApiError as err:
            if app_id in self._vanished and not isinstance(
                err, TransientGraphApiError
            ):
                # The install URL of a vanished app 404s.
                raise AppRemovedError(app_id) from err
            raise
        return self._installer.visit_install_url(app_id, day=day)
