"""The application installation flow (Fig 2, Sec 4.1.4).

Visiting an app's installation URL makes Facebook fetch the app's
configured parameters and redirect the user to a permission dialog whose
``client ID`` parameter names the app that will actually be installed.
Honest apps use their own ID; 78% of malicious apps hand out a sibling
app's ID drawn from a rotating pool, so a single advertised URL installs
many different apps (Sec 4.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.apps import AppRegistry, FacebookApp
from repro.platform.oauth import AccessToken, TokenService
from repro.platform.users import UserBase

__all__ = ["InstallPrompt", "InstallationService", "AppRemovedError"]


class AppRemovedError(LookupError):
    """Raised when the install URL of a removed app is visited."""


@dataclass(frozen=True)
class InstallPrompt:
    """The permission dialog presented after the install-URL redirect."""

    #: app whose install URL was visited
    requested_app_id: str
    #: app that will actually be installed if the user accepts
    client_id: str
    permissions: tuple[str, ...]
    redirect_uri: str

    @property
    def client_id_mismatch(self) -> bool:
        return self.client_id != self.requested_app_id


class InstallationService:
    """Implements install-URL visits and permission-dialog acceptance."""

    def __init__(
        self,
        registry: AppRegistry,
        tokens: TokenService,
        users: UserBase,
        rng: np.random.Generator,
    ) -> None:
        self._registry = registry
        self._tokens = tokens
        self._users = users
        self._rng = rng
        self._install_counts: dict[str, int] = {}

    def visit_install_url(self, app_id: str, day: int | None = None) -> InstallPrompt:
        """Visit ``facebook.com/apps/application.php?id=<app_id>``.

        Returns the resulting permission dialog.  Raises
        :class:`AppRemovedError` for apps deleted from the graph, as the
        real URL 404s for them.
        """
        app = self._registry.maybe_get(app_id)
        if app is None or app.is_deleted(day):
            raise AppRemovedError(app_id)
        client = self._pick_client_app(app, day)
        return InstallPrompt(
            requested_app_id=app.app_id,
            client_id=client.app_id,
            permissions=client.permissions,
            redirect_uri=client.redirect_uri,
        )

    def candidate_clients(self, app: FacebookApp, day: int | None) -> list[FacebookApp]:
        """The live sibling pool an install visit would rotate over.

        Empty when the app hands out its own ID (no pool, or every
        sibling deleted).  Pure function of the registry and *day* — it
        consumes no randomness, so schedulers can predict whether a
        visit will draw from the rotation RNG without performing it.
        """
        if not app.client_id_pool:
            return []
        return [
            sibling
            for sid in app.client_id_pool
            if (sibling := self._registry.maybe_get(sid)) is not None
            and not sibling.is_deleted(day)
        ]

    def _pick_client_app(self, app: FacebookApp, day: int | None) -> FacebookApp:
        """Resolve the client ID the install URL hands out.

        Malicious apps rotate over a pool of sibling apps; deleted
        siblings are skipped (that is the survivability point of the
        scheme — Sec 4.1.4).
        """
        candidates = self.candidate_clients(app, day)
        if not candidates:
            return app
        return candidates[int(self._rng.integers(0, len(candidates)))]

    def accept(self, prompt: InstallPrompt, user_id: int, day: int = 0) -> AccessToken:
        """The user grants the requested permissions.

        Installs the *client* app (not necessarily the requested one)
        and returns the OAuth token handed to its application server.
        """
        self._users.install_app(user_id, prompt.client_id)
        self._install_counts[prompt.client_id] = (
            self._install_counts.get(prompt.client_id, 0) + 1
        )
        return self._tokens.issue(
            user_id=user_id,
            app_id=prompt.client_id,
            scopes=prompt.permissions,
            day=day,
        )

    def install_count(self, app_id: str) -> int:
        return self._install_counts.get(app_id, 0)

    # -- checkpoint support -----------------------------------------------
    #
    # Install-URL visits *draw* from this service's RNG (client-ID
    # rotation), so a crash-resumed crawl must restore the stream to the
    # exact position the interrupted run reached; otherwise every later
    # colluding app would observe a different client ID.

    def rng_state(self) -> dict:
        """The RNG position as a JSON-serialisable dict."""
        return self._rng.bit_generator.state

    def restore_rng_state(self, state: dict) -> None:
        """Reposition the RNG to a :meth:`rng_state` image."""
        self._rng.bit_generator.state = state
