"""The Open Graph API surface the paper's crawler consumes (Sec 2.3).

Three endpoints matter for FRAppE:

* ``graph.facebook.com/<app_id>`` — the app summary; returns ``false``
  for apps deleted from the graph (how Sec 5.3 validates takedowns),
* ``graph.facebook.com/<app_id>/feed`` — the app's profile feed,
* ``facebook.com/connect/prompt_feed.php?api_key=<app_id>`` — the
  lax-authentication posting endpoint that enables app piggybacking:
  Facebook does not verify that the caller *is* the named app (Sec 6.2).
"""

from __future__ import annotations

from typing import Any

from repro.platform.apps import AppRegistry
from repro.platform.posts import Post, PostLog

__all__ = ["GraphApi", "GraphApiError"]


class GraphApiError(LookupError):
    """Raised when a Graph API query returns ``false`` (app removed).

    This is a *permanent* failure: the platform answered authoritatively
    that the app no longer exists, and retrying cannot change the
    answer.  Transient failures (rate limits, 5xx, timeouts) are raised
    as :class:`~repro.platform.transport.TransientGraphApiError`
    subclasses — callers deciding whether to retry must check for those
    *before* catching this base class.
    """


class GraphApi:
    """Facade over the registry/post log mimicking the 2012 Graph API."""

    def __init__(self, registry: AppRegistry, post_log: PostLog) -> None:
        self._registry = registry
        self._post_log = post_log

    # -- https://graph.facebook.com/<app_id> -----------------------------

    def exists(self, app_id: str, day: int | None = None) -> bool:
        """Does the graph still contain this app (as of *day*)?"""
        app = self._registry.maybe_get(app_id)
        return app is not None and not app.is_deleted(day)

    #: first day of the crawl window — MAU series are indexed from here
    CRAWL_EPOCH_DAY = 270

    def summary(self, app_id: str, day: int | None = None) -> dict[str, Any]:
        """The app summary, or :class:`GraphApiError` if removed.

        ``monthly_active_users`` reflects the crawl month *day* falls in
        (the paper crawled weekly over March–May and derived per-month
        MAU medians/maxima, Fig 4).
        """
        if not self.exists(app_id, day):
            raise GraphApiError(app_id)
        app = self._registry.get(app_id)
        if app.mau_series:
            if day is None:
                month = len(app.mau_series) - 1
            else:
                month = (day - self.CRAWL_EPOCH_DAY) // 30
                month = max(0, min(month, len(app.mau_series) - 1))
            mau = app.mau_series[month]
        else:
            mau = 0
        return {
            "id": app.app_id,
            "name": app.name,
            "description": app.description,
            "company": app.company,
            "category": app.category,
            "link": app.canvas_url,
            "monthly_active_users": mau,
        }

    # -- https://graph.facebook.com/<app_id>/feed -------------------------

    def profile_feed(self, app_id: str, day: int | None = None) -> list[dict[str, Any]]:
        """Posts on the app's profile page (message, link, created time)."""
        if not self.exists(app_id, day):
            raise GraphApiError(app_id)
        app = self._registry.get(app_id)
        return [
            {
                "message": post.message,
                "link": post.link,
                "created_time": post.day,
                "from": post.user_id,
            }
            for post in app.profile_feed
            if day is None or post.day <= day
        ]

    # -- connect/prompt_feed.php?api_key=<app_id> --------------------------
    #
    # The vulnerable endpoint: the application field of the resulting
    # post is taken from the request with no authentication of the
    # caller.  The *deleted* check is also skipped for popular apps —
    # the piggybacked apps are alive anyway.

    def prompt_feed(
        self,
        api_key: str,
        user_id: int,
        message: str,
        link: str | None,
        day: int,
        *,
        truth_malicious: bool = False,
        truth_piggybacked: bool = False,
        likes: int = 0,
        comments: int = 0,
    ) -> Post:
        """Publish a post whose application field is *api_key*.

        No caller authentication — any party that lures a user into the
        share dialog can attribute a post to any app ID.  The ``truth_*``
        keywords record the simulation's hidden labels.
        """
        if api_key not in self._registry:
            raise GraphApiError(api_key)
        return self._post_log.new_post(
            day=day,
            user_id=user_id,
            app_id=api_key,
            app_name=self._registry.get(api_key).name,
            message=message,
            link=link,
            likes=likes,
            comments=comments,
            truth_malicious=truth_malicious,
            truth_piggybacked=truth_piggybacked,
        )
