"""Fault-tolerant multi-process sharded crawl: the shard supervisor.

At paper scale (111K apps, a nine-month crawl window) the crawl must
run across OS processes for hours — which makes worker crashes, hangs,
and partial shard failures the *normal* case.  PR 2 made a single
process crash-safe (the checkpoint WAL), PR 4 made threads
deterministic (speculate-then-commit); this module makes the death of
an entire worker **process** a recoverable, determinism-preserving
event.

Architecture
------------
A parent :class:`ShardSupervisor` partitions the pending app IDs into
``processes`` shards (``pending[i::N]``, the same partition the thread
scheduler uses) and forks one worker process per shard.  Each worker
runs the *speculate* phase of :class:`~repro.crawler.scheduler
.CrawlScheduler` over its shard — pure per-app sandbox crawls, no
shared state — and appends every finished speculation to a private
per-shard :class:`ShardJournal` (the PR 2 WAL line format:
sha256-per-line checksummed JSONL, fsync per append).  After each app
the worker sends a heartbeat over its result pipe carrying its
simulated-clock progress; the parent multiplexes all pipes with
``multiprocessing.connection.wait``.

Failure taxonomy and the recovery ladder
----------------------------------------
The supervisor distinguishes four ways a worker dies:

* **SIGKILL / signal death** — the pipe hits EOF, ``exitcode < 0``;
* **nonzero exit** — EOF with ``exitcode > 0`` (internal error, chaos);
* **torn journal** — the final shard-journal line fails its checksum
  (the worker died mid-append); the line is quarantined to a
  counter-suffixed ``.corrupt`` sidecar, never silently dropped;
* **heartbeat silence** — the pipe stays open but no message arrives
  within ``heartbeat_timeout_s`` of wall clock (a hung worker); the
  supervisor SIGKILLs it and treats it as a signal death.

Recovery descends a bounded ladder:

1. **Restart with backoff** — respawn the shard's worker (same shard
   journal; it resumes after the last valid entry), at most
   ``max_restarts`` times per shard.
2. **Reassign** — a shard whose restart budget is exhausted donates its
   *remaining* apps to a single reassignment wave of fresh workers
   (only if the main wave produced at least one surviving shard).
3. **Inline fallback** — apps that still have no speculation when both
   rungs are spent are simply absent from the commit phase's
   speculation map, and :meth:`CrawlScheduler.commit_all` crawls them
   inline, sequentially, against the true state.

Why the output is byte-identical anyway
---------------------------------------
A speculation is a pure function of ``(app, world, fault plan)`` — no
worker death can corrupt one that was durably journaled, and a dead
worker's unfinished apps are re-speculated (or inline-crawled)
identically.  The *commit* phase is exactly the thread scheduler's:
sequential, canonical (sorted) order, replaying each sandbox's clock
increments one by one against the real crawler.  Speculations round-
trip through the shard journal losslessly (``json`` floats are
repr-exact), so the committed records, transport stats, breaker
trajectories, and export bytes are identical to the sequential crawl
no matter how many workers died, hung, or were killed — the property
the chaos tests (``tests/test_supervisor.py``) assert bit for bit.

Hang detection uses *wall* clock — the only clock a hung worker cannot
stall — which is safe precisely because recovery never changes output,
only wasted work: a false-positive kill of a slow-but-alive worker
costs a re-speculation, not determinism.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.crawler.checkpoint import _decode_line, _encode_line
from repro.crawler.scheduler import (
    CrawlScheduler,
    clamp_width,
    speculation_from_jsonable,
    speculation_to_jsonable,
)
from repro.obs.observer import get_observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crawler.checkpoint import CrawlJournal
    from repro.crawler.crawler import AppCrawler, CrawlRecord
    from repro.crawler.scheduler import Speculation

__all__ = [
    "CHAOS_ENV",
    "CHAOS_MODES",
    "KILL",
    "HANG",
    "EXIT",
    "TORN",
    "WorkerChaos",
    "ShardJournal",
    "ShardSupervisor",
]

logger = logging.getLogger(__name__)

#: environment variable carrying a chaos spec (``mode:shard:app[:persistent]``)
#: so pipeline-level runs (CLI, CI) can inject worker faults without code
CHAOS_ENV = "REPRO_SUPERVISOR_CHAOS"

#: die by SIGKILL before speculating the target app
KILL = "kill"
#: stop heartbeating and spin forever (caught by the heartbeat deadline)
HANG = "hang"
#: exit with a nonzero status before speculating the target app
EXIT = "exit"
#: write a torn (prefix-only) journal line for the target app, then die
TORN = "torn"

CHAOS_MODES = (KILL, HANG, EXIT, TORN)

#: chaos shard wildcard: the fault targets every worker
ALL_SHARDS = -1


@dataclass(frozen=True)
class WorkerChaos:
    """Deterministic worker-fault injection for the supervisor.

    Targets the ``app_index``-th *freshly speculated* app of shard
    ``shard`` (``ALL_SHARDS``/-1 hits every worker).  By default a
    fault fires only on a worker's first incarnation, so the respawned
    replacement proceeds cleanly — the common chaos-test shape.  With
    ``persistent=True`` it fires on *every* incarnation, which is how
    tests exhaust the restart budget and drive the reassignment and
    inline-fallback rungs.
    """

    mode: str
    shard: int
    app_index: int = 0
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ValueError(
                f"unknown chaos mode {self.mode!r}; one of {CHAOS_MODES}"
            )
        if self.app_index < 0:
            raise ValueError(f"app_index must be >= 0, got {self.app_index}")

    @classmethod
    def from_env(cls) -> "WorkerChaos | None":
        """Parse :data:`CHAOS_ENV` (``mode:shard:app[:persistent]``).

        ``shard`` may be ``*`` for every worker.  Returns ``None`` when
        the variable is unset or empty; raises on a malformed spec —
        a chaos run that silently injects nothing would pass CI while
        testing nothing.
        """
        raw = os.environ.get(CHAOS_ENV, "").strip()
        if not raw:
            return None
        parts = raw.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"{CHAOS_ENV}={raw!r}: expected mode:shard:app[:persistent]"
            )
        shard = ALL_SHARDS if parts[1] == "*" else int(parts[1])
        persistent = len(parts) == 4 and parts[3] == "persistent"
        return cls(
            mode=parts[0],
            shard=shard,
            app_index=int(parts[2]),
            persistent=persistent,
        )

    def due(self, shard: int, incarnation: int, app_index: int) -> bool:
        """Should the fault fire at this point of this worker's life?"""
        if self.shard != ALL_SHARDS and self.shard != shard:
            return False
        if incarnation > 0 and not self.persistent:
            return False
        return app_index == self.app_index


class ShardJournal:
    """A worker's append-only speculation WAL, one checksummed line per app.

    Reuses the checkpoint journal's line format (sha256 digest + tab +
    canonical JSON body) so every entry is self-validating.  Opening a
    journal *recovers* it first: any line that fails validation —
    including a torn final line, which for a shard journal is direct
    evidence of a worker death mid-append — is quarantined to a
    counter-suffixed ``.corrupt`` sidecar (never overwritten, never
    silently dropped) and the file is rewritten to exactly the
    surviving lines.  A respawned worker therefore resumes precisely
    after the last *valid* entry.
    """

    def __init__(self, path: str | Path, for_append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: app_id -> speculation jsonable, in append order
        self._payloads: dict[str, dict] = {}
        #: sidecar paths written by this open's recovery (if any)
        self.quarantined: tuple[Path, ...] = ()
        self._recover()
        self._fh = open(self.path, "ab") if for_append else None

    def _recover(self) -> None:
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        if not raw:
            return
        pieces = [piece for piece in raw.split(b"\n") if piece]
        good: list[bytes] = []
        bad: list[bytes] = []
        for piece in pieces:
            payload = _decode_line(piece)
            if payload is None:
                bad.append(piece)
            else:
                good.append(piece)
                self._payloads[payload["app_id"]] = payload["speculation"]
        if not bad:
            return
        from repro.crawler.checkpoint import next_sidecar_path

        sidecar = next_sidecar_path(self.path)
        with open(sidecar, "wb") as handle:
            for piece in bad:
                handle.write(piece + b"\n")
        self.quarantined = (sidecar,)
        # Rewrite to the surviving lines so the damage is absorbed once.
        from repro.crawler.checkpoint import atomic_write

        atomic_write(self.path, b"".join(piece + b"\n" for piece in good))
        logger.warning(
            "quarantined %d invalid line(s) of shard journal %s to %s "
            "(worker died mid-append); their apps will be re-speculated",
            len(bad), self.path, sidecar,
        )

    def __len__(self) -> int:
        return len(self._payloads)

    def app_ids(self) -> set[str]:
        """Apps whose speculations are durable in this journal."""
        return set(self._payloads)

    def speculations(self) -> dict[str, "Speculation"]:
        """Decode every durable speculation (append order preserved)."""
        return {
            app_id: speculation_from_jsonable(payload)
            for app_id, payload in self._payloads.items()
        }

    def append(self, speculation: "Speculation", tear: bool = False) -> None:
        """Make one speculation durable (written + flushed + fsynced).

        ``tear`` simulates a death in the write window: a prefix of the
        line is written and flushed, exactly the artifact recovery must
        quarantine.  The caller (chaos-mode worker) dies right after.
        """
        if self._fh is None:
            raise RuntimeError("journal opened read-only")
        payload = {
            "app_id": speculation.app_id,
            "speculation": speculation_to_jsonable(speculation),
        }
        line = _encode_line(payload)
        if tear:
            self._fh.write(line[: max(1, 2 * len(line) // 3)])
            self._fh.flush()
            return
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._payloads[speculation.app_id] = payload["speculation"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _shard_worker(
    crawler: "AppCrawler",
    shard: int,
    app_ids: list[str],
    journal_path: str,
    conn: Any,
    chaos: WorkerChaos | None,
    incarnation: int,
) -> None:
    """Worker entry point: speculate one shard, journal + heartbeat each app.

    Runs in a forked child, so *crawler* is the parent's crawler as of
    the fork — including any state restored from the main checkpoint —
    inherited copy-on-write; nothing the worker does is visible to the
    parent except the shard journal and the pipe.  Resumes by skipping
    apps already durable in the shard journal (the parent recovered it
    before respawning, so every entry present is valid).
    """
    scheduler = CrawlScheduler(crawler, workers=1)
    journal = ShardJournal(journal_path, for_append=True)
    done = journal.app_ids()
    sim_s = 0.0
    fresh = 0
    try:
        for app_id in app_ids:
            if app_id in done:
                continue
            if chaos is not None and chaos.due(shard, incarnation, fresh):
                if chaos.mode == KILL:
                    os.kill(os.getpid(), signal.SIGKILL)
                elif chaos.mode == HANG:
                    while True:  # silence: no heartbeat ever again
                        time.sleep(0.05)
                elif chaos.mode == EXIT:
                    os._exit(3)
                elif chaos.mode == TORN:
                    journal.append(scheduler.speculate(app_id), tear=True)
                    os._exit(4)
            speculation = scheduler.speculate(app_id)
            journal.append(speculation)
            fresh += 1
            counters = speculation.counters
            sim_s += float(counters.get("service_s", 0.0))
            sim_s += float(counters.get("wait_s", 0.0))
            conn.send(
                {
                    "type": "heartbeat",
                    "shard": shard,
                    "incarnation": incarnation,
                    "app_id": app_id,
                    "fresh": fresh,
                    "sim_s": sim_s,
                }
            )
        conn.send({"type": "done", "shard": shard, "fresh": fresh})
    except Exception as err:  # noqa: BLE001 - reported, then die nonzero
        try:
            conn.send(
                {"type": "error", "shard": shard, "message": repr(err)}
            )
        except OSError:  # pragma: no cover - parent already gone
            pass
        journal.close()
        os._exit(1)
    finally:
        journal.close()
        conn.close()


@dataclass
class _Slot:
    """One shard's worker seat: apps, journal, restart budget, liveness."""

    index: int
    apps: list[str]
    journal_path: Path
    restarts_left: int
    incarnation: int = 0
    proc: Any = None
    conn: Any = None
    last_seen: float = 0.0
    done: bool = False
    failed: bool = False
    errors: list[str] = field(default_factory=list)


class ShardSupervisor:
    """Parent of the multi-process crawl: spawn, watch, recover, commit.

    ``crawl()`` is the multi-process analogue of
    :meth:`CrawlScheduler.crawl` with the same contract: output
    byte-identical to the sequential ``crawl_many`` — records, stats,
    breakers, journal, export bytes — at any process count and under
    any worker-death pattern the recovery ladder can absorb (which is
    all of them, because the last rung is the sequential crawl itself).
    """

    def __init__(
        self,
        crawler: "AppCrawler",
        processes: int = 2,
        heartbeat_timeout_s: float = 30.0,
        max_restarts: int = 2,
        restart_backoff_s: float = 0.05,
        chaos: WorkerChaos | None = None,
        shard_dir: str | Path | None = None,
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {heartbeat_timeout_s}"
            )
        self._crawler = crawler
        self.processes = processes
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.chaos = chaos if chaos is not None else WorkerChaos.from_env()
        self._shard_dir = Path(shard_dir) if shard_dir is not None else None
        self._tmpdir: tempfile.TemporaryDirectory | None = None
        #: commit-phase accounting (mirrors CrawlScheduler)
        self.committed_speculative = 0
        self.recrawled_inline = 0
        #: recovery accounting, for tests and the supervisor trace
        self.restarts = 0
        self.reassigned_apps = 0
        self.heartbeat_gaps = 0
        self.worker_deaths = 0
        self._sim_clock = 0.0

    # -- shard journal placement ------------------------------------------

    def shard_directory(self, journal: "CrawlJournal | None") -> Path:
        """Where per-shard journals live (kept when checkpointing).

        With a main checkpoint journal, shard journals go in a
        ``shards/`` subdirectory of it — durable across supervisor
        restarts and uploadable as CI artifacts.  Without one, a
        temporary directory is used and cleaned up with the supervisor.
        """
        if self._shard_dir is not None:
            self._shard_dir.mkdir(parents=True, exist_ok=True)
            return self._shard_dir
        if journal is not None:
            self._shard_dir = journal.directory / "shards"
            self._shard_dir.mkdir(parents=True, exist_ok=True)
            return self._shard_dir
        self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
        self._shard_dir = Path(self._tmpdir.name)
        return self._shard_dir

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, slot: _Slot) -> None:
        ctx = multiprocessing.get_context("fork")
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_shard_worker,
            args=(
                self._crawler,
                slot.index,
                slot.apps,
                str(slot.journal_path),
                send_conn,
                self.chaos,
                slot.incarnation,
            ),
            daemon=True,
            name=f"repro-shard-{slot.index}-r{slot.incarnation}",
        )
        proc.start()
        # Close the parent's copy of the send end: the worker's death
        # then surfaces as EOF on recv_conn, with no heartbeat needed.
        send_conn.close()
        slot.proc = proc
        slot.conn = recv_conn
        slot.last_seen = time.monotonic()
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "supervisor.spawn",
                t=self._sim_clock,
                category="supervisor",
                shard=slot.index,
                incarnation=slot.incarnation,
                apps=len(slot.apps),
            )
            obs.count("supervisor_spawns_total")

    def _reap(self, slot: _Slot) -> int | None:
        """Join a finished/killed worker; return its exit code."""
        if slot.proc is None:
            return None
        slot.proc.join(timeout=5.0)
        code = slot.proc.exitcode
        if slot.conn is not None:
            slot.conn.close()
            slot.conn = None
        slot.proc = None
        return code

    def _on_death(self, slot: _Slot, reason: str, exitcode: int | None) -> None:
        """A worker died (kill/exit/hang): recover its journal, climb a rung."""
        self.worker_deaths += 1
        obs = get_observer()
        # Recover the shard journal now: quarantine any torn tail so
        # the respawn (or the final read) resumes from valid entries.
        recovered = ShardJournal(slot.journal_path)
        durable = len(recovered)
        obs_fields = {
            "shard": slot.index,
            "incarnation": slot.incarnation,
            "reason": reason,
            "exitcode": exitcode,
            "durable": durable,
            "quarantined": len(recovered.quarantined),
        }
        logger.warning(
            "shard %d worker died (%s, exitcode=%s): %d/%d apps durable, "
            "%d restart(s) left",
            slot.index, reason, exitcode, durable, len(slot.apps),
            slot.restarts_left,
        )
        if obs.enabled:
            obs.event(
                "supervisor.worker_death",
                t=self._sim_clock,
                category="supervisor",
                **obs_fields,
            )
            obs.count("supervisor_worker_deaths_total", reason=reason)
        if slot.restarts_left > 0:
            backoff = self.restart_backoff_s * (
                2 ** (self.max_restarts - slot.restarts_left)
            )
            if backoff > 0:
                time.sleep(backoff)
            slot.restarts_left -= 1
            slot.incarnation += 1
            self.restarts += 1
            if obs.enabled:
                obs.event(
                    "supervisor.restart",
                    t=self._sim_clock,
                    category="supervisor",
                    shard=slot.index,
                    incarnation=slot.incarnation,
                )
                obs.count("supervisor_restarts_total")
            self._spawn(slot)
        else:
            slot.failed = True
            logger.error(
                "shard %d restart budget exhausted; its remaining apps "
                "will be reassigned or crawled inline", slot.index,
            )

    def _on_message(self, slot: _Slot, message: dict) -> None:
        kind = message.get("type")
        if kind == "heartbeat":
            self._sim_clock = max(self._sim_clock, float(message["sim_s"]))
            obs = get_observer()
            if obs.enabled:
                obs.count("supervisor_heartbeats_total")
        elif kind == "done":
            slot.done = True
            self._reap(slot)
        elif kind == "error":
            slot.errors.append(str(message.get("message", "")))
            logger.warning(
                "shard %d worker error: %s", slot.index, message.get("message")
            )

    def _run_wave(self, slots: list[_Slot]) -> None:
        """Spawn *slots* and babysit them until each is done or failed."""
        for slot in slots:
            self._spawn(slot)
        poll_s = min(0.05, self.heartbeat_timeout_s / 4)
        while True:
            running = [s for s in slots if not s.done and not s.failed]
            if not running:
                return
            conn_map = {s.conn: s for s in running if s.conn is not None}
            if not conn_map:  # pragma: no cover - defensive
                return
            ready = connection_wait(list(conn_map), timeout=poll_s)
            now = time.monotonic()
            for conn in ready:
                slot = conn_map[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    exitcode = self._reap(slot)
                    if not slot.done:
                        reason = (
                            "signal" if exitcode is not None and exitcode < 0
                            else "exit"
                        )
                        self._on_death(slot, reason, exitcode)
                    continue
                slot.last_seen = now
                self._on_message(slot, message)
            for slot in running:
                if slot.done or slot.failed or slot.proc is None:
                    continue
                if now - slot.last_seen > self.heartbeat_timeout_s:
                    # Hung (or starving) worker: wall-clock silence past
                    # the deadline.  Kill it; determinism is unaffected
                    # because recovery resumes from the shard journal.
                    self.heartbeat_gaps += 1
                    obs = get_observer()
                    if obs.enabled:
                        obs.event(
                            "supervisor.heartbeat_gap",
                            t=self._sim_clock,
                            category="supervisor",
                            shard=slot.index,
                            silence_s=now - slot.last_seen,
                        )
                        obs.count("supervisor_heartbeat_gaps_total")
                    if slot.proc.is_alive():
                        slot.proc.kill()
                    exitcode = self._reap(slot)
                    self._on_death(slot, "hang", exitcode)

    # -- the public API -----------------------------------------------------

    def crawl(
        self,
        app_ids: list[str] | set[str],
        journal: "CrawlJournal | None" = None,
    ) -> "dict[str, CrawlRecord]":
        """Crawl *app_ids* across processes; byte-identical to sequential."""
        if "fork" not in multiprocessing.get_all_start_methods():
            # Non-forking platform: same contract, threads instead of
            # processes (the supervisor's recovery ladder is moot when
            # no worker can be killed by the OS independently).
            logger.warning(
                "fork start method unavailable; falling back to the "
                "in-process thread scheduler at width %d", self.processes,
            )
            return CrawlScheduler(self._crawler, workers=self.processes).crawl(
                app_ids, journal=journal
            )
        records, pending = self._crawler.journal_prologue(app_ids, journal)
        if not pending:
            return records
        width = clamp_width(self.processes, len(pending), what="processes")
        if width == 1:
            # One process is the sequential loop itself; forking would
            # only add a copy.  (Chaos targets are meaningless here.)
            for app_id in pending:
                record = self._crawler.crawl_app(app_id)
                if journal is not None:
                    journal.append(record, self._crawler.snapshot_state())
                records[app_id] = record
            return records

        shard_dir = self.shard_directory(journal)
        slots = [
            _Slot(
                index=i,
                apps=pending[i::width],
                journal_path=shard_dir / f"shard{i}.jsonl",
                restarts_left=self.max_restarts,
            )
            for i in range(width)
        ]
        try:
            self._run_wave(slots)

            # Rung 2: reassign the remaining apps of exhausted shards to
            # a fresh wave — but only when the main wave proved workers
            # can survive here at all (otherwise go straight to rung 3).
            failed = [s for s in slots if s.failed]
            survivors = len(slots) - len(failed)
            orphans: list[str] = []
            for slot in failed:
                durable = ShardJournal(slot.journal_path).app_ids()
                orphans.extend(a for a in slot.apps if a not in durable)
            if orphans and survivors > 0:
                self.reassigned_apps += len(orphans)
                obs = get_observer()
                if obs.enabled:
                    obs.event(
                        "supervisor.reassign",
                        t=self._sim_clock,
                        category="supervisor",
                        apps=len(orphans),
                        lanes=min(survivors, len(orphans)),
                    )
                    obs.count(
                        "supervisor_reassigned_apps_total",
                        delta=len(orphans),
                    )
                lanes = min(survivors, len(orphans))
                rescue = [
                    _Slot(
                        index=width + k,
                        apps=orphans[k::lanes],
                        journal_path=shard_dir / f"reassign{k}.jsonl",
                        restarts_left=self.max_restarts,
                    )
                    for k in range(lanes)
                ]
                self._run_wave(rescue)
                slots = slots + rescue

            # Gather every durable speculation (recovering each journal
            # once more is idempotent) and commit in canonical order.
            # Rung 3 is implicit: apps with no surviving speculation are
            # crawled inline by commit_all.
            speculations: dict[str, Speculation] = {}
            for slot in slots:
                shard_journal = ShardJournal(slot.journal_path)
                speculations.update(shard_journal.speculations())
            scheduler = CrawlScheduler(self._crawler, workers=1)
            result = scheduler.commit_all(
                pending, speculations, journal, records, width=width
            )
            self.committed_speculative = scheduler.committed_speculative
            self.recrawled_inline = scheduler.recrawled_inline
            obs = get_observer()
            if obs.enabled:
                obs.gauge("supervisor_restarts", float(self.restarts))
                obs.gauge(
                    "supervisor_reassigned_apps", float(self.reassigned_apps)
                )
                obs.gauge(
                    "supervisor_inline_fallback",
                    float(self.recrawled_inline),
                )
            return result
        finally:
            for slot in slots:
                if slot.proc is not None and slot.proc.is_alive():
                    slot.proc.kill()
                self._reap(slot)
            if self._tmpdir is not None:
                self._tmpdir.cleanup()
                self._tmpdir = None
