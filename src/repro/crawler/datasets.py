"""Dataset construction (Sec 2.3, Table 1).

Builds the paper's dataset hierarchy from the observed world:

* **D-Total** — every app seen posting,
* **D-Sample** — MyPageKeeper-flagged apps (minus the popular-app
  whitelist) plus an equal number of benign apps (Social-Bakers-vetted
  first, topped up with the highest-volume unflagged apps),
* **D-Summary / D-Inst / D-ProfileFeed** — the D-Sample apps whose
  respective crawls succeeded,
* **D-Complete** — the intersection, used to train the classifiers.

The labels produced here are the pipeline's *operational* ground truth
(derived from MyPageKeeper, not from the simulation's hidden labels),
including its imperfections — exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.mypagekeeper.monitor import AppLabeler, MonitorReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crawler.checkpoint import CrawlJournal
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["DatasetBundle", "DatasetBuilder"]


@dataclass
class DatasetBundle:
    """The assembled datasets plus the crawl records behind them."""

    d_total: set[str]
    whitelist: set[str]
    d_sample_malicious: set[str]
    d_sample_benign: set[str]
    records: dict[str, CrawlRecord] = field(default_factory=dict)

    @property
    def d_sample(self) -> set[str]:
        return self.d_sample_malicious | self.d_sample_benign

    def label(self, app_id: str) -> int:
        """Operational label: 1 = malicious (MyPageKeeper-derived)."""
        if app_id in self.d_sample_malicious:
            return 1
        if app_id in self.d_sample_benign:
            return 0
        raise KeyError(f"app not in D-Sample: {app_id}")

    # -- crawl-defined subsets -------------------------------------------

    def _subset(self, predicate) -> tuple[set[str], set[str]]:
        benign = {
            a for a in self.d_sample_benign
            if a in self.records and predicate(self.records[a])
        }
        malicious = {
            a for a in self.d_sample_malicious
            if a in self.records and predicate(self.records[a])
        }
        return benign, malicious

    @property
    def d_summary(self) -> tuple[set[str], set[str]]:
        """(benign, malicious) apps with a crawled summary."""
        return self._subset(lambda r: r.summary_ok)

    @property
    def d_inst(self) -> tuple[set[str], set[str]]:
        """(benign, malicious) apps with a crawled permission set."""
        return self._subset(lambda r: r.inst_ok)

    @property
    def d_profilefeed(self) -> tuple[set[str], set[str]]:
        """(benign, malicious) apps with a crawled profile feed."""
        return self._subset(lambda r: r.feed_ok)

    @property
    def d_complete(self) -> tuple[set[str], set[str]]:
        """(benign, malicious) apps with every crawl successful."""
        return self._subset(lambda r: r.complete)

    def table1_rows(self) -> list[tuple[str, int, int]]:
        """(dataset, benign, malicious) rows as in Table 1."""
        rows = [("D-Total", len(self.d_total), -1)]
        for name, (benign, malicious) in (
            ("D-Sample", (self.d_sample_benign, self.d_sample_malicious)),
            ("D-Summary", self.d_summary),
            ("D-Inst", self.d_inst),
            ("D-ProfileFeed", self.d_profilefeed),
            ("D-Complete", self.d_complete),
        ):
            rows.append((name, len(benign), len(malicious)))
        return rows


class DatasetBuilder:
    """Assembles the dataset hierarchy from a monitor report."""

    def __init__(
        self,
        world: "SimulatedWorld",
        report: MonitorReport,
        whitelist_top_fraction: float = 0.01,
    ) -> None:
        self._world = world
        self._report = report
        self._labeler = AppLabeler(report)
        self._whitelist_top_fraction = whitelist_top_fraction

    def build(
        self,
        crawl: bool = True,
        crawler: AppCrawler | None = None,
        journal: "CrawlJournal | None" = None,
        workers: int = 1,
        processes: int = 1,
    ) -> DatasetBundle:
        """Assemble the bundle, optionally crawling D-Sample.

        Pass *crawler* to crawl through a configured transport (fault
        injection, retry policy); the default is a fault-free crawler.
        Pass *journal* to make the crawl crash-safe: completed records
        become durable as they land and a rebuilt builder resumes from
        them (see :mod:`repro.crawler.checkpoint`).  *workers* > 1
        crawls through the batch-parallel scheduler (byte-identical
        records; see :mod:`repro.crawler.scheduler`); *processes* > 1
        through the fault-tolerant multi-process supervisor
        (:mod:`repro.crawler.supervisor`), same contract.
        """
        d_total = self._labeler.observed_app_ids()
        whitelist = self._build_whitelist(d_total)
        flagged = self._labeler.malicious_app_ids()
        d_sample_malicious = flagged - whitelist
        d_sample_benign = self._select_benign(d_total, flagged, len(d_sample_malicious))
        bundle = DatasetBundle(
            d_total=d_total,
            whitelist=whitelist,
            d_sample_malicious=d_sample_malicious,
            d_sample_benign=d_sample_benign,
        )
        if crawl:
            crawler = crawler or AppCrawler(self._world)
            bundle.records = crawler.crawl_many(
                bundle.d_sample,
                journal=journal,
                workers=workers,
                processes=processes,
            )
        return bundle

    def _build_whitelist(self, d_total: set[str]) -> set[str]:
        """The popular-app whitelist (Sec 2.3).

        The paper whitelisted "the most popular apps" with manual
        effort; popularity is proxied by observed post volume — the
        piggybacked apps (FarmVille, 'Facebook for iPhone', ...) are
        precisely the ones hackers pick *because* they are popular.
        """
        ranked = sorted(
            d_total,
            key=lambda app_id: (-self._report.total_count(app_id), app_id),
        )
        top = max(1, int(len(ranked) * self._whitelist_top_fraction))
        return set(ranked[:top])

    def _select_benign(
        self, d_total: set[str], flagged: set[str], needed: int
    ) -> set[str]:
        """Benign half of D-Sample: vetted apps first, then top posters.

        Candidates are ranked in a canonical order (ties broken by app
        ID) so the selection — and everything downstream of it — is
        identical for a given seed regardless of the process's string
        hash seed (set iteration order is not deterministic otherwise).
        """
        socialbakers = self._world.socialbakers
        unflagged = sorted(a for a in d_total if a not in flagged)
        vetted = [a for a in unflagged if socialbakers.is_vetted(a)]
        chosen = set(vetted[:needed]) if len(vetted) >= needed else set(vetted)
        if len(chosen) < needed:
            by_volume = sorted(
                (a for a in unflagged if a not in chosen),
                key=lambda app_id: (-self._report.total_count(app_id), app_id),
            )
            chosen.update(by_volume[: needed - len(chosen)])
        return chosen
