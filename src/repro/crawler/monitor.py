"""The always-on monitoring daemon behind ``repro monitor``.

FRAppE's conclusion frames the system as "an independent watchdog for
app assessment and ranking"; this module is that watchdog's engine.
Instead of one-shot crawls it runs *epochs*: every epoch shifts the
crawl calendar forward by a stride, re-crawls the apps the tiered
scheduler (:mod:`repro.crawler.recrawl`) says are due, scores them,
diffs each observation against the app's history, and records the
*forensic events* only a long-running monitor can see — deletion,
rename, permission change, post-rate collapse (Kagan et al.,
arXiv:1309.4067).

Robustness is the contract, not a feature:

* **Kill-anywhere resume.** Every observation (and each epoch's
  dispatch plan) is one checksummed, fsynced line in a
  :class:`MonitorJournal` — the PR 2 WAL machinery
  (:mod:`repro.crawler.checkpoint` line format, atomic writes,
  quarantine sidecars).  The line carries the crawler state, the
  scheduler state, and the epoch cursor, so SIGKILL at any instant
  resumes to a byte-identical history store and schedule.
* **Blackout backpressure.**  Before dispatching an app the monitor
  polls the transport for an active blackout window
  (:meth:`FaultyTransport.active_blackout`); inside one it *pauses* —
  jumps the simulated clock to the window's end and counts a
  scheduler-level pause — instead of crawling into the outage and
  burning retry budgets and breaker state.
* **Quarantine, never halt.**  Corrupt or contradictory history
  entries (checksum mismatches, conflicting duplicates, observations
  that resurrect an app after a recorded deletion) are moved to
  ``.corrupt`` sidecars and the loop continues.
* **Supervised epochs.**  :class:`SupervisedEpochRunner` forks each
  epoch into a worker, watches heartbeats (the
  :mod:`repro.crawler.supervisor` pattern), restarts hung or dead
  workers with backoff, and unconditionally falls back to inline
  execution — the journal makes every rung resume-correct.

With monitoring features disabled (no lifecycle events, no forensics,
no blackouts) one epoch is the sequential ``crawl_many`` loop verbatim:
same dispatch order, same per-app calls, byte-identical records.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.crawler.checkpoint import (
    _canonical,
    _decode_line,
    _encode_line,
    atomic_write,
    next_sidecar_path,
    record_from_jsonable,
    record_to_jsonable,
)
from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.crawler.recrawl import RecrawlScheduler
from repro.crawler.resilience import PERMANENT
from repro.ecosystem.app_lifecycle import LifecycleScript
from repro.obs.observer import get_observer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.watchdog import AppWatchdog
    from repro.service.cache import VerdictCache

__all__ = [
    "MONITOR_CHAOS_ENV",
    "ForensicEvent",
    "FORENSIC_EVENT_KINDS",
    "MonitorConfig",
    "MonitorJournal",
    "MonitorReport",
    "AppMonitor",
    "SupervisedEpochRunner",
]

logger = logging.getLogger(__name__)

#: environment variable carrying an epoch-worker chaos spec
#: (``kill:<observation_index>`` or ``hang:<observation_index>``) so
#: CLI/CI runs can inject mid-epoch deaths without code
MONITOR_CHAOS_ENV = "REPRO_MONITOR_CHAOS"

#: sentinel app_id of a journaled epoch dispatch plan
_PLAN_SENTINEL = "__plan__"

#: the forensic event taxonomy (DESIGN.md §12)
FORENSIC_EVENT_KINDS = (
    "deletion",
    "rename",
    "permission_change",
    "post_rate_collapse",
)


@dataclass(frozen=True)
class ForensicEvent:
    """One observed app-lifecycle change (history diff, not ground truth)."""

    epoch: int
    app_id: str
    kind: str
    detail: str = ""

    def jsonable(self) -> dict:
        return {
            "epoch": self.epoch,
            "app_id": self.app_id,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs of one monitoring run (all part of the journal fingerprint)."""

    epochs: int = 3
    #: calendar shift between epochs, in simulated days
    stride_days: int = 7
    #: detect + record forensic events (and feed the extractor columns)
    forensics: bool = False
    #: apply the simulated lifecycle script (ground truth for forensics)
    lifecycle: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.stride_days < 1:
            raise ValueError(
                f"stride_days must be >= 1, got {self.stride_days}"
            )


@dataclass
class MonitorReport:
    """What one ``run()`` did (derived from the journal, so resumable)."""

    epochs_run: int = 0
    observations: int = 0
    forensic_events: list[ForensicEvent] = field(default_factory=list)
    pauses: int = 0
    tier_census: dict[str, int] = field(default_factory=dict)
    quarantined: int = 0


class MonitorJournal:
    """The monitor's WAL: observations + epoch plans, one line each.

    Reuses the checkpoint journal's self-delimiting line format (sha256
    digest + tab + canonical JSON + newline, fsync per append) and its
    corruption policy: a torn *final* line is the expected crash
    artifact and is silently truncated; any other invalid line — bad
    checksum, malformed schema, a duplicate ``(epoch, app_id)`` with
    conflicting content, or an observation that contradicts recorded
    history (an app alive again after a journaled deletion event) — is
    quarantined to a counter-suffixed ``.corrupt`` sidecar and the loop
    continues without it.
    """

    JOURNAL_NAME = "monitor.jsonl"
    META_NAME = "meta.json"

    def __init__(self, directory: str | Path, resume: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: valid entries in durability order (observations and plans)
        self.entries: list[dict] = []
        #: (epoch, app_id) -> observation entry
        self._observations: dict[tuple[int, str], dict] = {}
        #: epoch -> journaled dispatch plan
        self._plans: dict[int, list[str]] = {}
        #: apps with a journaled deletion event, and at which epoch
        self._deleted_at: dict[str, int] = {}
        self.quarantined = 0
        self.truncated_torn_line = False
        if not resume and self.journal_path.exists() \
                and self.journal_path.stat().st_size > 0:
            raise FileExistsError(
                f"monitor directory {self.directory} already holds history; "
                "pass resume=True (CLI: --resume) to continue it, or point "
                "--checkpoint at a fresh directory"
            )
        for tmp in self.directory.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - racy cleanup
                pass
        self._load()
        self._fh = open(self.journal_path, "ab")

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    @property
    def meta_path(self) -> Path:
        return self.directory / self.META_NAME

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        path = self.journal_path
        if not path.exists():
            return
        raw = path.read_bytes()
        if not raw:
            return
        pieces = raw.split(b"\n")
        tail = pieces.pop()  # b"" when the file ends with a newline
        torn = bool(tail)
        good: list[tuple[bytes, dict]] = []
        bad: list[bytes] = []
        for index, piece in enumerate(pieces):
            payload = _decode_line(piece)
            if payload is None:
                if index == len(pieces) - 1:
                    torn = True  # torn-write artifact: truncate silently
                else:
                    bad.append(piece)
                continue
            problem = self._admit(payload)
            if problem is None:
                good.append((piece, payload))
            elif problem == "duplicate":
                pass  # byte-identical replay of a durable line: drop one
            else:
                logger.warning(
                    "quarantining contradictory monitor entry "
                    "(%s): epoch=%s app=%s",
                    problem, payload.get("epoch"), payload.get("app_id"),
                )
                bad.append(piece)
        if bad:
            sidecar = next_sidecar_path(path)
            with open(sidecar, "wb") as handle:
                for piece in bad:
                    handle.write(piece + b"\n")
            self.quarantined = len(bad)
            logger.warning(
                "quarantined %d corrupt/contradictory monitor line(s) in "
                "%s to sidecar %s; the monitor continues without them",
                len(bad), path, sidecar,
            )
        if bad or torn or len(good) != max(0, len(pieces) - (1 if torn else 0)):
            # Absorb the damage once: rewrite to exactly the survivors.
            atomic_write(path, b"".join(piece + b"\n" for piece, _ in good))
            self.truncated_torn_line = torn

    def _admit(self, payload: dict) -> str | None:
        """Fold one decoded entry in; a string names why it is rejected."""
        epoch = payload.get("epoch")
        app_id = payload.get("app_id")
        if not isinstance(epoch, int) or epoch < 0 or not isinstance(app_id, str):
            return "malformed"
        if app_id == _PLAN_SENTINEL:
            plan = payload.get("plan")
            if not isinstance(plan, list):
                return "malformed"
            stored = self._plans.get(epoch)
            if stored is not None:
                return "duplicate" if stored == plan else "conflicting-plan"
            self._plans[epoch] = [str(a) for a in plan]
            self.entries.append(payload)
            return None
        if not isinstance(payload.get("record"), dict):
            return "malformed"
        key = (epoch, app_id)
        stored = self._observations.get(key)
        if stored is not None:
            return "duplicate" if stored == payload else "conflicting-observation"
        deleted_epoch = self._deleted_at.get(app_id)
        if (
            deleted_epoch is not None
            and epoch > deleted_epoch
            and payload["record"].get("summary_ok")
        ):
            # A deleted app never comes back; an entry claiming it did
            # contradicts durable history and must not poison it.
            return "resurrection"
        self._observations[key] = payload
        self.entries.append(payload)
        for event in payload.get("events", []):
            if event.get("kind") == "deletion":
                self._deleted_at.setdefault(app_id, epoch)
        return None

    # -- replay API --------------------------------------------------------

    def observed(self, epoch: int) -> set[str]:
        """Apps with a durable observation at *epoch*."""
        return {a for (e, a) in self._observations if e == epoch}

    def plan_for(self, epoch: int) -> list[str] | None:
        return self._plans.get(epoch)

    @property
    def state(self) -> dict | None:
        """The continuation state of the last durable entry."""
        if not self.entries:
            return None
        return self.entries[-1].get("state")

    def latest_records(self) -> dict[str, CrawlRecord]:
        """Each app's most recent durable observation, decoded fresh."""
        latest: dict[str, dict] = {}
        for entry in self.entries:
            if entry["app_id"] != _PLAN_SENTINEL:
                latest[entry["app_id"]] = entry["record"]
        return {
            app_id: record_from_jsonable(data)
            for app_id, data in latest.items()
        }

    def history_of(self, app_id: str) -> list[dict]:
        """All durable observations of one app, oldest first."""
        return [
            e for e in self.entries
            if e["app_id"] == app_id and e["app_id"] != _PLAN_SENTINEL
        ]

    def forensic_events(self) -> list[ForensicEvent]:
        events: list[ForensicEvent] = []
        for entry in self.entries:
            for ev in entry.get("events", []):
                events.append(ForensicEvent(
                    epoch=int(ev["epoch"]),
                    app_id=str(ev["app_id"]),
                    kind=str(ev["kind"]),
                    detail=str(ev.get("detail", "")),
                ))
        return events

    # -- fingerprint -------------------------------------------------------

    def validate_fingerprint(self, fingerprint: dict) -> None:
        """Refuse to splice monitoring runs from different configurations."""
        stored = None
        if self.meta_path.exists():
            try:
                stored = json.loads(
                    self.meta_path.read_text(encoding="utf-8")
                ).get("fingerprint")
            except (ValueError, UnicodeDecodeError):
                logger.warning(
                    "monitor meta %s is corrupt; rewriting it from the "
                    "current configuration", self.meta_path,
                )
        if stored is not None:
            if stored != fingerprint:
                raise ValueError(
                    f"monitor history at {self.directory} was written under "
                    f"a different configuration.\n  stored:  {stored}\n"
                    f"  current: {fingerprint}\nResume with the original "
                    "settings, or start a fresh directory."
                )
            return
        atomic_write(
            self.meta_path,
            json.dumps(
                {"format_version": 1, "fingerprint": fingerprint},
                indent=1,
                sort_keys=True,
            ),
        )

    # -- writing -----------------------------------------------------------

    def _append(self, payload: dict) -> None:
        if self._fh is None:
            raise RuntimeError("monitor journal is closed")
        line = _encode_line(payload)
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append_plan(self, epoch: int, plan: list[str], state: dict) -> None:
        """Pin this epoch's dispatch order before the first crawl.

        Without the pinned plan, a mid-epoch resume would recompute the
        plan from *updated* schedule entries, and an exploration policy
        could pick different extras than the uninterrupted run did.
        """
        payload = {
            "v": 1,
            "app_id": _PLAN_SENTINEL,
            "epoch": epoch,
            "plan": list(plan),
            "state": state,
        }
        self._append(payload)
        self._plans[epoch] = list(plan)
        self.entries.append(payload)

    def append_observation(
        self,
        epoch: int,
        record: CrawlRecord,
        assessment: dict | None,
        events: list[ForensicEvent],
        state: dict,
    ) -> None:
        """Make one observation durable (written + flushed + fsynced)."""
        payload = {
            "v": 1,
            "app_id": record.app_id,
            "epoch": epoch,
            "record": record_to_jsonable(record),
            "assessment": assessment,
            "events": [e.jsonable() for e in events],
            "state": state,
        }
        self._append(payload)
        self._observations[(epoch, record.app_id)] = payload
        self.entries.append(payload)
        for event in events:
            if event.kind == "deletion":
                self._deleted_at.setdefault(record.app_id, epoch)
        obs = get_observer()
        if obs.enabled:
            clock = (
                state.get("crawler", {}).get("transport", {}).get("stats", {})
            )
            obs.event(
                "monitor.append",
                t=float(clock.get("service_s", 0.0))
                + float(clock.get("wait_s", 0.0)),
                category="monitor",
                app_id=record.app_id,
                epoch=epoch,
                events=len(events),
            )
            obs.count("monitor_appends_total")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "MonitorJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AppMonitor:
    """Epoch loop: shift the calendar, recrawl the due set, diff history.

    One instance owns a crawler, a :class:`RecrawlScheduler`, an
    optional :class:`MonitorJournal`, and optionally a trained
    :class:`~repro.core.watchdog.AppWatchdog` (suspicion scores) and a
    :class:`~repro.service.cache.VerdictCache` (forensic events evict
    cached verdicts).  All state needed to continue rides on every
    journal line; :meth:`run` resumes transparently from whatever is
    durable.
    """

    def __init__(
        self,
        world,
        crawler: AppCrawler,
        app_ids,
        config: MonitorConfig | None = None,
        scheduler: RecrawlScheduler | None = None,
        journal: MonitorJournal | None = None,
        watchdog: "AppWatchdog | None" = None,
        verdict_cache: "VerdictCache | None" = None,
    ) -> None:
        self._world = world
        self._crawler = crawler
        self._app_ids = sorted(app_ids)
        self.config = config or MonitorConfig()
        self.scheduler = scheduler or RecrawlScheduler()
        self._journal = journal
        self._watchdog = watchdog
        self._verdict_cache = verdict_cache
        self._base_schedule = world.schedule
        self._lifecycle: LifecycleScript | None = None
        if self.config.lifecycle:
            self._lifecycle = LifecycleScript.generate(
                world,
                start_day=self._base_schedule.profilefeed_crawl_day,
                horizon_days=self.config.epochs * self.config.stride_days,
            )
        #: first epoch run() still has to execute
        self._next_epoch = 0
        #: forensic tallies per app (feeds FeatureExtractor.set_forensics)
        self.forensic_tallies: dict[str, dict[str, int]] = {}
        if self._journal is not None:
            self._journal.validate_fingerprint(self.fingerprint())
            self._restore_from_journal()

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> dict:
        """Crawler fingerprint + monitor knobs: what a resume must match."""
        return {
            "crawler": self._crawler.checkpoint_fingerprint(),
            "monitor": {
                "epochs": self.config.epochs,
                "stride_days": self.config.stride_days,
                "forensics": self.config.forensics,
                "lifecycle": self.config.lifecycle,
                "policy": getattr(self.scheduler.policy, "name", "tiered"),
                "app_count": len(self._app_ids),
            },
        }

    # -- resume ------------------------------------------------------------

    def _restore_from_journal(self) -> None:
        state = self._journal.state
        if state is None:
            return
        self._crawler.restore_state(state["crawler"])
        self.scheduler.restore(state["scheduler"])
        self._next_epoch = int(state["epoch"])
        self._rebuild_tallies()
        # The restored epoch may already be complete (its state rode on
        # the last observation); run_epoch detects that via the plan.

    def _rebuild_tallies(self) -> None:
        self.forensic_tallies = {}
        for event in self._journal.forensic_events():
            per = self.forensic_tallies.setdefault(event.app_id, {})
            per[event.kind] = per.get(event.kind, 0) + 1

    def resync_from_journal(self) -> None:
        """Reload everything from disk (after a forked worker appended)."""
        if self._journal is None:
            raise RuntimeError("resync requires a journal")
        directory = self._journal.directory
        self._journal.close()
        self._journal = MonitorJournal(directory)
        self._restore_from_journal()

    @property
    def journal(self) -> MonitorJournal | None:
        return self._journal

    # -- epoch mechanics ---------------------------------------------------

    def _epoch_schedule(self, epoch: int):
        shift = epoch * self.config.stride_days
        base = self._base_schedule
        return dataclasses.replace(
            base,
            profilefeed_crawl_day=base.profilefeed_crawl_day + shift,
            summary_crawl_day=base.summary_crawl_day + shift,
            inst_crawl_day=base.inst_crawl_day + shift,
        )

    def _epoch_day(self, epoch: int) -> int:
        """The epoch's assessment day (its last collection day)."""
        return self._base_schedule.inst_crawl_day \
            + epoch * self.config.stride_days

    def _snapshot(self, epoch: int) -> dict:
        return {
            "crawler": self._crawler.snapshot_state(),
            "scheduler": self.scheduler.snapshot(),
            "epoch": epoch,
        }

    def _suspicion(self, record: CrawlRecord, epoch: int) -> tuple[float, dict | None]:
        if self._watchdog is not None:
            assessment = self._watchdog.assess_record(
                record, day=self._epoch_day(epoch)
            )
            return assessment.risk_score, {
                "risk_score": assessment.risk_score,
                "confidence": assessment.confidence,
            }
        # No trained classifier attached: a deterministic stand-in so
        # the ladder still moves.  Removed apps are the paper's prime
        # suspects; a client-ID mismatch is near-certain malice.
        score = 50.0
        summary = record.outcomes.get("summary")
        if summary is not None and summary.status == PERMANENT:
            score = 75.0
        if record.client_id_mismatch is True:
            score = 90.0
        return score, None

    def _diff(
        self, previous: CrawlRecord | None, record: CrawlRecord, epoch: int
    ) -> list[ForensicEvent]:
        """Forensic events: what changed since the app's last observation."""
        if previous is None:
            return []
        events: list[ForensicEvent] = []
        summary = record.outcomes.get("summary")
        if (
            previous.summary_ok
            and summary is not None
            and summary.status == PERMANENT
        ):
            events.append(ForensicEvent(
                epoch, record.app_id, "deletion",
                detail=f"summary turned PERMANENT (was live as "
                       f"{previous.name!r})",
            ))
        if (
            previous.name is not None
            and record.name is not None
            and previous.name != record.name
        ):
            events.append(ForensicEvent(
                epoch, record.app_id, "rename",
                detail=f"{previous.name!r} -> {record.name!r}",
            ))
        if (
            previous.inst_ok
            and record.inst_ok
            and previous.permissions != record.permissions
        ):
            events.append(ForensicEvent(
                epoch, record.app_id, "permission_change",
                detail=f"{sorted(previous.permissions)} -> "
                       f"{sorted(record.permissions)}",
            ))
        if (
            previous.feed_ok
            and record.feed_ok
            and len(record.profile_posts) < len(previous.profile_posts)
        ):
            events.append(ForensicEvent(
                epoch, record.app_id, "post_rate_collapse",
                detail=f"{len(previous.profile_posts)} -> "
                       f"{len(record.profile_posts)} posts",
            ))
        return events

    def _on_events(self, events: list[ForensicEvent]) -> None:
        obs = get_observer()
        for event in events:
            per = self.forensic_tallies.setdefault(event.app_id, {})
            per[event.kind] = per.get(event.kind, 0) + 1
            if obs.enabled:
                obs.event(
                    "monitor.forensic",
                    t=self._crawler.stats.elapsed_s,
                    category="monitor",
                    app_id=event.app_id,
                    kind=event.kind,
                    epoch=event.epoch,
                )
                obs.count("monitor_forensic_events_total", kind=event.kind)
            if self._verdict_cache is not None:
                self._verdict_cache.invalidate_forensic(
                    event.app_id,
                    reason=event.kind,
                    now_s=self._crawler.stats.elapsed_s,
                )

    def _pause_for_blackout(self, window: tuple[float, float], epoch: int) -> None:
        """Scheduler-level backpressure: sleep the window out, once.

        Jumping the simulated clock to the window's end means no crawl
        call, no retry, and no breaker transition happens inside the
        outage — the tier simply resumes when the platform does.  The
        jump is pure clock arithmetic, so an interrupted-and-resumed
        run re-derives the identical pause.
        """
        stats = self._crawler.stats
        wait = window[1] - stats.elapsed_s
        if wait > 0:
            stats.add_wait(wait)
        self.scheduler.record_pause(window[1])
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "monitor.backpressure_pause",
                t=stats.elapsed_s,
                category="monitor",
                epoch=epoch,
                resume_at=window[1],
                paused_s=max(0.0, wait),
            )
            obs.count("monitor_backpressure_pauses_total")

    # -- the epoch loop ----------------------------------------------------

    def run_epoch(
        self,
        epoch: int,
        heartbeat: Callable[[str, int], None] | None = None,
    ) -> int:
        """Run (or finish) one epoch; returns fresh observations made.

        Idempotent over the journal: apps already durable at this epoch
        are skipped, and the dispatch order comes from the journaled
        plan when one exists (pinning resume order under exploration
        policies).  *heartbeat* is called after each durable
        observation — the supervised runner's liveness signal.
        """
        obs = get_observer()
        self._world.schedule = self._epoch_schedule(epoch)
        if self._lifecycle is not None and epoch >= 1:
            self._lifecycle.apply_until(self._world, self._epoch_day(epoch))
        self.scheduler.ensure(self._app_ids)
        previous_records = (
            self._journal.latest_records() if self._journal is not None else {}
        )
        if self._journal is not None:
            plan = self._journal.plan_for(epoch)
            if plan is None:
                plan = self.scheduler.plan(epoch)
                self._journal.append_plan(epoch, plan, self._snapshot(epoch))
            done = self._journal.observed(epoch)
        else:
            plan = self.scheduler.plan(epoch)
            done = set()
        fresh = 0
        span_ctx = span = None
        if obs.enabled:
            span_ctx = obs.span(
                "monitor.epoch",
                key=str(epoch),
                category="monitor",
                t=self._crawler.stats.elapsed_s,
            )
            span = span_ctx.__enter__()
        try:
            for app_id in plan:
                if app_id in done:
                    continue
                blackout = getattr(
                    self._crawler.transport, "active_blackout", None
                )
                if blackout is not None:
                    window = blackout()
                    if window is not None:
                        self._pause_for_blackout(window, epoch)
                record = self._crawler.crawl_app(app_id)
                suspicion, assessment = self._suspicion(record, epoch)
                events = (
                    self._diff(previous_records.get(app_id), record, epoch)
                    if self.config.forensics else []
                )
                self._on_events(events)
                self.scheduler.observe(
                    app_id, epoch, suspicion, forensic_hits=len(events)
                )
                if self._journal is not None:
                    self._journal.append_observation(
                        epoch, record, assessment, events,
                        self._snapshot(epoch),
                    )
                previous_records[app_id] = record
                fresh += 1
                if heartbeat is not None:
                    heartbeat(app_id, fresh)
        finally:
            if span_ctx is not None:
                span.note(fresh=fresh, planned=len(plan))
                span.end(self._crawler.stats.elapsed_s)
                span_ctx.__exit__(None, None, None)
        if obs.enabled:
            obs.count("monitor_epochs_total")
            obs.gauge("monitor_epoch", float(epoch))
        self._next_epoch = max(self._next_epoch, epoch + 1)
        return fresh

    def run(self, supervised: bool = False) -> MonitorReport:
        """Run every remaining epoch; resumes from the journal if present."""
        runner = SupervisedEpochRunner(self) if supervised else None
        for epoch in range(self._next_epoch, self.config.epochs):
            if runner is not None:
                runner.run_epoch(epoch)
            else:
                self.run_epoch(epoch)
        return self.report()

    # -- results -----------------------------------------------------------

    def records(self) -> dict[str, CrawlRecord]:
        """Each app's latest observation (the living dataset)."""
        if self._journal is not None:
            return self._journal.latest_records()
        return {}

    def report(self) -> MonitorReport:
        events = (
            self._journal.forensic_events() if self._journal is not None else []
        )
        observations = (
            sum(
                1 for e in self._journal.entries
                if e["app_id"] != _PLAN_SENTINEL
            )
            if self._journal is not None else 0
        )
        return MonitorReport(
            epochs_run=self._next_epoch,
            observations=observations,
            forensic_events=events,
            pauses=self.scheduler.pauses,
            tier_census=self.scheduler.tier_census(),
            quarantined=(
                self._journal.quarantined if self._journal is not None else 0
            ),
        )

    def export_history_bytes(self) -> bytes:
        """The canonical byte image of the durable history store.

        This is what the kill-anywhere invariant compares: an
        interrupted-and-resumed run must produce these bytes exactly.
        """
        if self._journal is None:
            return _canonical({"entries": []})
        return _canonical({"entries": self._journal.entries})

    def export_dataset_bytes(self) -> bytes:
        """Canonical bytes of the latest record per app (the dataset)."""
        latest: dict[str, dict] = {}
        for entry in (self._journal.entries if self._journal else []):
            if entry["app_id"] != _PLAN_SENTINEL:
                latest[entry["app_id"]] = entry["record"]
        return _canonical({
            "records": [latest[app_id] for app_id in sorted(latest)]
        })


# -- the supervised epoch runner --------------------------------------------


def _epoch_worker(
    monitor: AppMonitor,
    epoch: int,
    conn: Any,
    chaos: tuple[str, int] | None,
    incarnation: int,
) -> None:
    """Forked worker: run one epoch against the shared journal.

    The journal is the only channel back to the parent — the worker
    reopens it for itself (a forked file handle must not be shared),
    runs the epoch, and heartbeats after every durable observation.
    Chaos (first incarnation only) kills or hangs the worker after the
    target observation, exercising the restart ladder.
    """
    monitor.resync_from_journal()

    def heartbeat(app_id: str, fresh: int) -> None:
        conn.send({
            "type": "heartbeat",
            "epoch": epoch,
            "app_id": app_id,
            "fresh": fresh,
        })
        if chaos is not None and incarnation == 0 and fresh == chaos[1]:
            if chaos[0] == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            elif chaos[0] == "hang":
                while True:  # silence: the parent's deadline reaps us
                    time.sleep(0.05)

    try:
        monitor.run_epoch(epoch, heartbeat=heartbeat)
        conn.send({"type": "done", "epoch": epoch})
    except Exception as err:  # noqa: BLE001 - reported, then die nonzero
        try:
            conn.send({"type": "error", "epoch": epoch, "message": repr(err)})
        except OSError:  # pragma: no cover - parent already gone
            pass
        os._exit(1)
    finally:
        conn.close()


def _chaos_from_env() -> tuple[str, int] | None:
    """Parse :data:`MONITOR_CHAOS_ENV` (``kill:<n>`` / ``hang:<n>``)."""
    raw = os.environ.get(MONITOR_CHAOS_ENV, "").strip()
    if not raw:
        return None
    mode, _, index = raw.partition(":")
    if mode not in ("kill", "hang") or not index.isdigit():
        raise ValueError(
            f"{MONITOR_CHAOS_ENV}={raw!r}: expected kill:<n> or hang:<n>"
        )
    return mode, int(index)


class SupervisedEpochRunner:
    """Fork-watch-restart for epochs, with an unconditional inline rung.

    Each epoch runs in a forked worker that heartbeats per observation
    (the :mod:`repro.crawler.supervisor` pattern).  A worker that dies
    (SIGKILL, nonzero exit) or goes silent past the heartbeat deadline
    is restarted with exponential backoff, at most ``max_restarts``
    times; after that the epoch runs *inline* in the parent — which
    always succeeds at making progress, because every durable
    observation survives every rung.  Without a journal there is
    nothing for a worker to persist, so supervision degrades to inline
    execution directly.
    """

    def __init__(
        self,
        monitor: AppMonitor,
        heartbeat_timeout_s: float = 30.0,
        max_restarts: int = 2,
        restart_backoff_s: float = 0.05,
        chaos: tuple[str, int] | None = None,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be > 0, got {heartbeat_timeout_s}"
            )
        self._monitor = monitor
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.chaos = chaos if chaos is not None else _chaos_from_env()
        self.restarts = 0
        self.heartbeat_gaps = 0
        self.inline_fallbacks = 0

    def run_epoch(self, epoch: int) -> None:
        import multiprocessing

        if (
            self._monitor.journal is None
            or "fork" not in multiprocessing.get_all_start_methods()
        ):
            self.inline_fallbacks += 1
            self._monitor.run_epoch(epoch)
            return
        obs = get_observer()
        for incarnation in range(self.max_restarts + 1):
            if incarnation > 0:
                backoff = self.restart_backoff_s * (2 ** (incarnation - 1))
                if backoff > 0:
                    time.sleep(backoff)
                self.restarts += 1
                if obs.enabled:
                    obs.count("monitor_supervisor_restarts_total")
            if self._run_worker(epoch, incarnation):
                # Fold the worker's durable progress into this process.
                # The journaled cursor points at the epoch the worker
                # was running; it finished, so advance past it.
                self._monitor.resync_from_journal()
                self._monitor._next_epoch = max(
                    self._monitor._next_epoch, epoch + 1
                )
                return
        # Every incarnation died: the unconditional last rung.  The
        # journal already holds whatever the workers completed, so the
        # inline epoch only crawls the remainder.
        self.inline_fallbacks += 1
        if obs.enabled:
            obs.count("monitor_supervisor_inline_fallbacks_total")
        logger.warning(
            "epoch %d worker restart budget exhausted; finishing inline",
            epoch,
        )
        self._monitor.resync_from_journal()
        self._monitor.run_epoch(epoch)

    def _run_worker(self, epoch: int, incarnation: int) -> bool:
        """Fork one worker; True iff it completed the epoch."""
        import multiprocessing
        from multiprocessing.connection import wait as connection_wait

        ctx = multiprocessing.get_context("fork")
        recv_conn, send_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_epoch_worker,
            args=(self._monitor, epoch, send_conn, self.chaos, incarnation),
            daemon=True,
            name=f"repro-monitor-e{epoch}-r{incarnation}",
        )
        proc.start()
        send_conn.close()  # worker death now surfaces as EOF
        last_seen = time.monotonic()
        done = False
        try:
            while True:
                ready = connection_wait(
                    [recv_conn], timeout=min(0.05, self.heartbeat_timeout_s / 4)
                )
                now = time.monotonic()
                if ready:
                    try:
                        message = recv_conn.recv()
                    except (EOFError, OSError):
                        break  # EOF: the worker is gone
                    last_seen = now
                    kind = message.get("type")
                    if kind == "done":
                        done = True
                        break
                    if kind == "error":
                        logger.warning(
                            "epoch %d worker error: %s",
                            epoch, message.get("message"),
                        )
                elif now - last_seen > self.heartbeat_timeout_s:
                    # Hung worker: wall-clock silence past the deadline.
                    self.heartbeat_gaps += 1
                    obs = get_observer()
                    if obs.enabled:
                        obs.count("monitor_heartbeat_gaps_total")
                    if proc.is_alive():
                        proc.kill()
                    break
        finally:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.kill()
                proc.join(timeout=5.0)
            recv_conn.close()
        return done and proc.exitcode == 0
