"""The measurement apparatus: crawler, vetting directory, dataset builder.

This package reproduces Sec 2.3's data collection: weekly crawls of the
Graph API and installation URLs over the March–May window, the Social
Bakers vetting used to select benign apps, the popular-app whitelist
that rescues piggybacked apps from mislabelling, and the construction of
the D-Total / D-Sample / D-Summary / D-Inst / D-ProfileFeed / D-Complete
datasets (Table 1).
"""

from repro.crawler.socialbakers import SocialBakers
from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.crawler.datasets import DatasetBundle, DatasetBuilder

__all__ = [
    "SocialBakers",
    "AppCrawler",
    "CrawlRecord",
    "DatasetBundle",
    "DatasetBuilder",
]
