"""The measurement apparatus: crawler, vetting directory, dataset builder.

This package reproduces Sec 2.3's data collection: weekly crawls of the
Graph API and installation URLs over the March–May window, the Social
Bakers vetting used to select benign apps, the popular-app whitelist
that rescues piggybacked apps from mislabelling, and the construction of
the D-Total / D-Sample / D-Summary / D-Inst / D-ProfileFeed / D-Complete
datasets (Table 1).

Crawls run through a transport layer that may inject faults
(:mod:`repro.platform.transport`); :mod:`repro.crawler.resilience`
provides the retry/backoff policy, circuit breakers, and per-collection
outcome records the crawler uses to survive them, and
:mod:`repro.crawler.checkpoint` makes the whole crawl crash-safe: a
write-ahead :class:`CrawlJournal` (an app is *durable* — survives any
process kill — once its journal line is written, flushed, and fsynced),
atomic snapshots via :func:`atomic_write`, and kill-anywhere resume
with crash injection (:class:`CrashPlan` / :exc:`SimulatedCrash`).
"""

from repro.crawler.socialbakers import SocialBakers
from repro.crawler.crawler import (
    AppCrawler,
    CrawlRecord,
    make_crawler,
    outcome_tallies,
    recovery_rate,
)
from repro.crawler.datasets import DatasetBundle, DatasetBuilder
from repro.crawler.resilience import (
    GAVE_UP,
    OK,
    PERMANENT,
    SKIPPED,
    CircuitBreaker,
    CrawlOutcome,
    ResilientExecutor,
    RetryPolicy,
)
# checkpoint imports crawler.crawler, so it must come after it here.
from repro.crawler.checkpoint import (
    CrashPlan,
    CrawlJournal,
    SimulatedCrash,
    atomic_write,
)
from repro.crawler.scheduler import CrawlScheduler

__all__ = [
    "CrawlJournal",
    "CrashPlan",
    "SimulatedCrash",
    "atomic_write",
    "SocialBakers",
    "AppCrawler",
    "CrawlRecord",
    "CrawlScheduler",
    "make_crawler",
    "outcome_tallies",
    "recovery_rate",
    "DatasetBundle",
    "DatasetBuilder",
    "OK",
    "GAVE_UP",
    "PERMANENT",
    "SKIPPED",
    "RetryPolicy",
    "CircuitBreaker",
    "CrawlOutcome",
    "ResilientExecutor",
]
