"""Retry, backoff, and circuit breaking for the crawler (Sec 2.3 at scale).

The paper's crawler simply lost whatever a failed request would have
returned — which is why D-Inst is the smallest dataset.  A production
watchdog cannot afford that: this module gives the crawler

* a :class:`RetryPolicy` — exponential backoff with *full jitter* drawn
  from a seeded RNG, a per-request attempt budget, and a per-app
  deadline so one pathological app cannot stall the crawl,
* a :class:`CircuitBreaker` per endpoint class (summary / feed /
  install) that stops hammering an endpoint that is failing
  consistently and probes it again after a cooldown, and
* a :class:`CrawlOutcome` record per collection so downstream layers
  can distinguish *authoritative* missing data (app removed — itself a
  malice signal, Sec 4.1) from *transient* missing data (we gave up —
  no signal at all).

All sleeping is simulated: delays are added to the transport's
:class:`~repro.platform.transport.TransportStats` clock, which is also
the clock the breakers schedule cooldowns against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.observer import get_observer
from repro.platform.graph_api import GraphApiError
from repro.platform.install import AppRemovedError
from repro.platform.transport import (
    RateLimitError,
    TransientGraphApiError,
    TransportStats,
)
from repro.rng import derive_seed

__all__ = [
    "OK",
    "GAVE_UP",
    "PERMANENT",
    "SKIPPED",
    "RetryPolicy",
    "CircuitBreaker",
    "CrawlOutcome",
    "ResilientExecutor",
]

#: collection succeeded (possibly after retries)
OK = "ok"
#: transient failures exhausted the retry budget / deadline — no verdict
GAVE_UP = "gave_up"
#: the platform answered authoritatively: the app is removed
PERMANENT = "permanent"
#: the crawler never attempted the collection (human-only install flow)
SKIPPED = "skipped"


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule and budgets for transient-fault retries."""

    #: attempts per request, first try included
    max_attempts: int = 4
    base_delay_s: float = 2.0
    max_delay_s: float = 60.0
    #: simulated-time budget for all of one app's collections
    per_app_deadline_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Full-jitter exponential backoff for a (0-based) failed attempt."""
        cap = min(self.max_delay_s, self.base_delay_s * (2.0**attempt))
        return float(rng.uniform(0.0, cap))

    def delay_for(
        self, error: TransientGraphApiError, attempt: int, rng: np.random.Generator
    ) -> float:
        """The wait before retrying *error* — honours rate-limit hints."""
        delay = self.backoff(attempt, rng)
        if isinstance(error, RateLimitError):
            delay = max(delay, error.retry_after)
        return delay

    @staticmethod
    def mandatory_delay(error: TransientGraphApiError) -> float:
        """The wait *error* imposes regardless of jitter (rate-limit hints).

        When this floor alone exceeds the remaining deadline budget the
        retry is hopeless: no jitter draw can shrink it, so the caller
        must give up immediately instead of sleeping toward a deadline
        it is already guaranteed to miss.
        """
        if isinstance(error, RateLimitError):
            return error.retry_after
        return 0.0


class CircuitBreaker:
    """Per-endpoint closed / open / half-open breaker on simulated time.

    ``failure_threshold`` *consecutive* transient failures open the
    breaker; while open, callers wait out the remaining ``cooldown_s``
    and then get exactly one half-open probe.  A successful probe (or
    any authoritative answer) closes the breaker; a failed probe
    re-opens it.

    Half-open admits *exactly one* probe: the caller whose ``allow``
    performed the open → half-open transition owns it, and every other
    caller is rejected until the probe resolves via ``record_success``
    or ``record_failure``.  Without this, a burst of concurrent service
    requests arriving at cooldown expiry would all hammer the
    still-suspect endpoint at once.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self, failure_threshold: int = 5, cooldown_s: float = 180.0
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def cooldown_remaining(self, now_s: float) -> float:
        """Simulated seconds until a half-open probe is allowed (0 if now)."""
        if self.state != self.OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.cooldown_s - now_s)

    def allow(self, now_s: float) -> bool:
        """May a request go out at *now_s*?  Transitions open → half-open.

        In half-open, only the caller that performed the transition is
        admitted; concurrent callers get ``False`` (the breaker-open
        outcome) until the probe resolves.
        """
        if self.state == self.OPEN:
            if now_s < self._opened_at + self.cooldown_s:
                return False
            self.state = self.HALF_OPEN
            self._probe_in_flight = True
            return True
        if self.state == self.HALF_OPEN:
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True
        return True

    def record_success(self) -> None:
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._probe_in_flight = False

    def record_failure(self, now_s: float) -> None:
        self._consecutive_failures += 1
        if (
            self.state == self.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self.state = self.OPEN
            self._opened_at = now_s
            self._consecutive_failures = 0
        self._probe_in_flight = False

    def rebase(self, delta_s: float) -> None:
        """Shift the open timestamp *delta_s* seconds into the past.

        Breaker timestamps live in the executor's *app frame* (time
        since the current app's crawl started); when a new frame begins,
        a breaker still open from the previous frame keeps its cooldown
        schedule by moving its open instant back by the closed frame's
        extent.  Closed breakers carry no live timestamp and keep their
        stale value untouched (it is checkpoint-visible).
        """
        if self.state != self.CLOSED:
            self._opened_at -= delta_s

    # -- checkpoint support -----------------------------------------------

    def snapshot(self) -> dict:
        """The breaker's dynamic state (for crawl checkpoints)."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opened_at": self._opened_at,
            "probe_in_flight": self._probe_in_flight,
        }

    def restore(self, data: dict) -> None:
        """Restore dynamic state captured by :meth:`snapshot`, in place."""
        self.state = data["state"]
        self._consecutive_failures = int(data["consecutive_failures"])
        self._opened_at = float(data["opened_at"])
        self._probe_in_flight = bool(data.get("probe_in_flight", False))


@dataclass
class CrawlOutcome:
    """How one collection (summary / feed / install) of one app went."""

    collection: str
    status: str = SKIPPED  # OK | GAVE_UP | PERMANENT | SKIPPED
    attempts: int = 0
    #: transient fault kinds encountered, in order
    faults: list[str] = field(default_factory=list)
    #: simulated seconds spent on this collection (service + waiting)
    elapsed_s: float = 0.0

    @property
    def recovered(self) -> bool:
        """Did retries turn transient faults into a definitive result?

        Both OK and PERMANENT count: an authoritative "app removed"
        reached through retries is a successful recovery — the fault
        cost latency, not the verdict.  Only GAVE_UP is a loss.
        """
        return self.status in (OK, PERMANENT) and bool(self.faults)

    @property
    def transiently_failed(self) -> bool:
        """Did the collection see at least one transient fault?"""
        return bool(self.faults)


class ResilientExecutor:
    """Runs transport calls under a retry policy and per-endpoint breakers.

    Jitter is drawn from a stateless per-``(endpoint, app)`` RNG derived
    from the seed, so retry schedules — like fault draws — are
    reproducible regardless of crawl order.

    All clock arithmetic (deadlines, backoff accounting, breaker
    timestamps, outcome timing) runs in the transport's *app frame* —
    the time elapsed since :meth:`begin_app` — which every app's crawl
    integrates from exactly 0.0.  Keeping the arithmetic off the global
    clock makes an app's crawl bit-reproducible wherever it runs: the
    batch-parallel scheduler crawls apps in sandboxes and commits them
    in canonical order relying on exactly this invariance (float
    addition is not associative, so arithmetic based on the global
    clock would drift in the last ulp with the clock's base).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        stats: TransportStats,
        seed: int = 2012,
        breakers: dict[str, CircuitBreaker] | None = None,
    ) -> None:
        self.policy = policy
        self.stats = stats
        self._seed = seed
        self.breakers = breakers if breakers is not None else {}

    def breaker(self, endpoint: str) -> CircuitBreaker:
        if endpoint not in self.breakers:
            self.breakers[endpoint] = CircuitBreaker()
        return self.breakers[endpoint]

    def begin_app(self) -> None:
        """Open a new app frame and rebase live breaker timestamps.

        Called at the start of every app's crawl; the closed frame's
        extent is subtracted from open breakers' timestamps so their
        cooldown schedules stay anchored to the global timeline.
        """
        delta = self.stats.begin_app()
        if delta:
            for breaker in self.breakers.values():
                breaker.rebase(delta)

    # -- checkpoint support -----------------------------------------------
    #
    # Breakers carry *cross-app* state (consecutive failures on one app
    # open the breaker for the next), so kill-anywhere resume must put
    # them back exactly where the interrupted run left them.

    def snapshot_breakers(self) -> dict[str, dict]:
        """Per-endpoint breaker states, JSON-serialisable."""
        return {
            endpoint: breaker.snapshot()
            for endpoint, breaker in sorted(self.breakers.items())
        }

    def restore_breakers(self, data: dict[str, dict]) -> None:
        """Restore breaker states captured by :meth:`snapshot_breakers`."""
        for endpoint, state in data.items():
            self.breaker(endpoint).restore(state)

    def call(
        self,
        endpoint: str,
        app_id: str,
        fn,
        outcome: CrawlOutcome,
        deadline_at: float | None = None,
    ):
        """Run ``fn`` with retries; returns the result or ``None``.

        Updates *outcome* in place: attempts and faults accumulate (one
        outcome may span several requests, e.g. the weekly summary
        queries), and ``status`` is set to the worst applicable verdict
        so far — OK sticks once any request succeeded, GAVE_UP records
        an exhausted budget, PERMANENT an authoritative removal.
        """
        breaker = self.breaker(endpoint)
        obs = get_observer()
        rng: np.random.Generator | None = None
        rng_key = f"retry:{endpoint}:{app_id}:{outcome.attempts}"
        started = self.stats.app_elapsed_s
        try:
            for attempt in range(self.policy.max_attempts):
                wait = breaker.cooldown_remaining(self.stats.app_elapsed_s)
                if wait > 0.0:
                    if self._past_deadline(deadline_at, wait):
                        self._mark(outcome, GAVE_UP)
                        return None
                    self.stats.add_wait(wait)
                    if obs.enabled:
                        obs.event(
                            "breaker.cooldown_wait",
                            t=self.stats.app_elapsed_s,
                            endpoint=endpoint,
                            app_id=app_id,
                            wait_s=wait,
                        )
                        obs.observe("breaker_cooldown_wait_seconds", wait)
                before = breaker.state
                allowed = breaker.allow(self.stats.app_elapsed_s)
                if obs.enabled:
                    self._note_transition(obs, endpoint, app_id, before, breaker)
                if not allowed:
                    self._mark(outcome, GAVE_UP)
                    return None
                outcome.attempts += 1
                if obs.enabled:
                    obs.event(
                        "retry.attempt",
                        t=self.stats.app_elapsed_s,
                        endpoint=endpoint,
                        app_id=app_id,
                        attempt=attempt,
                    )
                    obs.count("retry_attempts_total", endpoint=endpoint)
                try:
                    result = fn()
                except TransientGraphApiError as error:
                    outcome.faults.append(error.kind)
                    before = breaker.state
                    breaker.record_failure(self.stats.app_elapsed_s)
                    if obs.enabled:
                        obs.event(
                            "retry.fault",
                            t=self.stats.app_elapsed_s,
                            endpoint=endpoint,
                            app_id=app_id,
                            kind=error.kind,
                            attempt=attempt,
                        )
                        obs.count("retry_faults_total", kind=error.kind)
                        self._note_transition(obs, endpoint, app_id, before, breaker)
                    if attempt + 1 >= self.policy.max_attempts:
                        self._mark(outcome, GAVE_UP)
                        return None
                    # A rate-limit hint that already overruns the
                    # deadline makes the retry hopeless before any
                    # jitter is drawn: give up now, sleep nothing.
                    if self._past_deadline(
                        deadline_at, self.policy.mandatory_delay(error)
                    ):
                        self._mark(outcome, GAVE_UP)
                        return None
                    if rng is None:  # jitter RNG, derived only when needed
                        rng = np.random.default_rng(derive_seed(self._seed, rng_key))
                    delay = self.policy.delay_for(error, attempt, rng)
                    if self._past_deadline(deadline_at, delay):
                        self._mark(outcome, GAVE_UP)
                        return None
                    self.stats.add_wait(delay)
                    if obs.enabled:
                        obs.event(
                            "retry.backoff",
                            t=self.stats.app_elapsed_s,
                            endpoint=endpoint,
                            app_id=app_id,
                            delay_s=delay,
                        )
                        obs.observe("retry_backoff_seconds", delay)
                except (AppRemovedError, GraphApiError):
                    # Authoritative: the app is gone.  The endpoint is
                    # healthy (it answered), so the breaker resets.
                    before = breaker.state
                    breaker.record_success()
                    if obs.enabled:
                        self._note_transition(obs, endpoint, app_id, before, breaker)
                    self._mark(outcome, PERMANENT)
                    return None
                else:
                    before = breaker.state
                    breaker.record_success()
                    if obs.enabled:
                        self._note_transition(obs, endpoint, app_id, before, breaker)
                    outcome.status = OK
                    return result
            self._mark(outcome, GAVE_UP)
            return None
        finally:
            outcome.elapsed_s += self.stats.app_elapsed_s - started

    def _note_transition(
        self,
        obs,
        endpoint: str,
        app_id: str,
        before: str,
        breaker: CircuitBreaker,
    ) -> None:
        """Emit a ``breaker.transition`` event if the state just changed."""
        if breaker.state == before:
            return
        obs.event(
            "breaker.transition",
            t=self.stats.app_elapsed_s,
            endpoint=endpoint,
            app_id=app_id,
            from_state=before,
            to_state=breaker.state,
        )
        obs.count(
            "breaker_transitions_total",
            endpoint=endpoint,
            to_state=breaker.state,
        )

    def _past_deadline(self, deadline_at: float | None, wait: float) -> bool:
        return (
            deadline_at is not None
            and self.stats.app_elapsed_s + wait > deadline_at
        )

    @staticmethod
    def _mark(outcome: CrawlOutcome, status: str) -> None:
        """Record a terminal status without losing information.

        OK sticks (some request of the collection succeeded), and an
        authoritative PERMANENT answer sticks over a later GAVE_UP —
        once the platform has said "removed", the missing data is
        informative no matter how later requests fare.
        """
        if outcome.status == OK:
            return
        if outcome.status == PERMANENT and status == GAVE_UP:
            return
        outcome.status = status
