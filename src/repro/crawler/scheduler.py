"""The deterministic multi-worker crawl scheduler.

``crawl_many`` is a sequential per-record loop; at paper scale (111K
apps) the crawl is the longest stage of the pipeline.  This module
partitions the app IDs across N workers and still produces output
**byte-identical to the sequential crawl** — same records, same
transport accounting, same breaker trajectories, same journal — for any
worker count.  ``workers=1`` short-circuits to ``crawl_many`` itself.

Why that is hard
----------------
Almost all of one app's crawl is a pure function of the app: fault
draws hash ``(seed, endpoint, app, call index)``, retry jitter hashes
``(endpoint, app, attempt)``, deadlines are relative to the app's start.
Exactly two pieces of state couple apps to each other:

* the **installer RNG** — an install-URL visit of a colluding app draws
  which sibling's client ID it hands out from a single sequential
  stream, so the draw an app observes depends on how many draws the
  apps before it consumed;
* the **circuit breakers** (and, while one is open, the absolute
  clock) — consecutive transient failures on one app can open an
  endpoint breaker and change the next app's attempts.

The scheduler handles both with *speculate-then-commit*:

1. **Speculate (parallel).**  Each worker crawls its partition one app
   at a time, each app in a fresh sandbox: a private transport clone
   with its own stats clock starting at zero, private per-endpoint
   breakers starting pristine (closed, zero consecutive failures), and
   a deferred-draw installer that records *that* a client-ID rotation
   would be drawn without consuming the shared stream (the drawn value
   is data in the record, never control flow, so it can be patched in
   later).  The sandbox emits the record plus the state *delta* the
   crawl produced.
2. **Commit (sequential, canonical order).**  Apps are committed in
   sorted order against the real crawler state.  A speculation is valid
   exactly when every real breaker is pristine at the app's turn — the
   same state the sandbox assumed — in which case the committed record
   equals the sequential one: the deferred client-ID draw is performed
   now, in canonical order, from the real installer RNG, and the delta
   (clock increments replayed one by one, fault accounting, call
   indexes, vanished set, app-frame breaker end states) is merged.
   All within-app time arithmetic runs in the transport's *app frame*
   (see :class:`~repro.platform.transport.TransportStats.begin_app`),
   which both the sequential loop and every sandbox integrate from
   exactly 0.0 — so no float is ever translated between clock bases
   and equality is bitwise.  If a breaker is *not* pristine (a previous
   app left it
   open, half-open, or partly failed), the speculation is discarded and
   the app is re-crawled inline against the true state — a graceful
   degradation to the sequential crawl that preserves exactness.

The checkpoint journal composes unchanged: committed records are
appended with the real crawler's continuation snapshot, exactly as the
sequential loop would, so kill-anywhere resume still holds.
"""

from __future__ import annotations

import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.crawler.crawler import AppCrawler, CrawlRecord
from repro.crawler.resilience import CircuitBreaker
from repro.obs.observer import get_observer
from repro.platform.install import AppRemovedError, InstallPrompt
from repro.platform.transport import (
    DirectTransport,
    FaultyTransport,
    TransportStats,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crawler.checkpoint import CrawlJournal

__all__ = [
    "CrawlScheduler",
    "Speculation",
    "clamp_width",
    "speculation_to_jsonable",
    "speculation_from_jsonable",
]

logger = logging.getLogger(__name__)


def clamp_width(requested: int, n_apps: int, what: str = "workers") -> int:
    """Clamp a parallel width to the number of apps (and >= 1), loudly.

    Spawning more workers/processes than there are apps would only
    create idle sandboxes (or idle OS processes); the clamp keeps the
    run identical while warning that the requested width was excessive.
    """
    effective = max(1, min(requested, n_apps))
    if effective < requested:
        logger.warning(
            "clamping %s from %d to %d: only %d pending app(s) to crawl",
            what, requested, effective, n_apps,
        )
    return effective


def _pristine(snapshot: dict) -> bool:
    """Is a breaker in the state every sandbox assumes it starts in?"""
    return (
        snapshot["state"] == CircuitBreaker.CLOSED
        and snapshot["consecutive_failures"] == 0
        and not snapshot["probe_in_flight"]
    )


class _SpeculativeInstaller:
    """Installer facade for one sandbox: real registry, deferred RNG.

    Mirrors :meth:`InstallationService.visit_install_url` except that a
    client-ID rotation draw is *recorded instead of performed*: the
    prompt carries a placeholder client (the first live candidate) and
    ``drew`` is set, so the commit phase can redo the visit against the
    real installer — consuming the shared RNG stream in canonical app
    order — and patch the drawn fields into the record.  Apps without a
    live sibling pool take no draw and need no patch.
    """

    def __init__(self, registry, installer) -> None:
        self._registry = registry
        self._installer = installer
        self.drew = False

    def visit_install_url(self, app_id: str, day: int | None = None) -> InstallPrompt:
        app = self._registry.maybe_get(app_id)
        if app is None or app.is_deleted(day):
            raise AppRemovedError(app_id)
        candidates = self._installer.candidate_clients(app, day)
        if candidates:
            self.drew = True
            client = candidates[0]  # placeholder; patched at commit
        else:
            client = app
        return InstallPrompt(
            requested_app_id=app.app_id,
            client_id=client.app_id,
            permissions=client.permissions,
            redirect_uri=client.redirect_uri,
        )


@dataclass
class Speculation:
    """One sandbox crawl: the record plus the state delta it produced."""

    app_id: str
    record: CrawlRecord
    #: sandbox TransportStats snapshot — exact integer/set tallies
    counters: dict[str, Any]
    #: ordered service/wait increments; replayed one by one at commit
    #: so the global clock accumulates bit-identically to a sequential
    #: crawl (float addition is not associative)
    events: list[tuple[str, float]]
    #: endpoint -> breaker snapshot at sandbox end (timestamps are
    #: app-frame, so they transplant verbatim)
    breakers: dict[str, dict]
    #: faulty-transport bookkeeping produced by this app's crawl
    call_index: list[tuple[str, str, int]] = field(default_factory=list)
    vanished: list[str] = field(default_factory=list)
    #: the install visit consumed one client-ID rotation draw
    drew_install: bool = False


def speculation_to_jsonable(speculation: Speculation) -> dict[str, Any]:
    """A lossless, JSON-serialisable image of one :class:`Speculation`.

    This is the wire/journal format of the multi-process supervisor
    (:mod:`repro.crawler.supervisor`): worker processes persist each
    speculation to their per-shard journal as canonical JSON, and the
    parent decodes them back for the commit phase.  Floats survive a
    ``json`` round trip exactly (repr-based encoding), so a decoded
    speculation commits bit-identically to the in-process original.
    """
    from repro.crawler.checkpoint import record_to_jsonable

    return {
        "app_id": speculation.app_id,
        "record": record_to_jsonable(speculation.record),
        "counters": speculation.counters,
        "events": [[kind, seconds] for kind, seconds in speculation.events],
        "breakers": speculation.breakers,
        "call_index": [list(entry) for entry in speculation.call_index],
        "vanished": list(speculation.vanished),
        "drew_install": bool(speculation.drew_install),
    }


def speculation_from_jsonable(data: dict[str, Any]) -> Speculation:
    """The inverse of :func:`speculation_to_jsonable`."""
    from repro.crawler.checkpoint import record_from_jsonable

    return Speculation(
        app_id=data["app_id"],
        record=record_from_jsonable(data["record"]),
        counters=data["counters"],
        events=[(kind, float(seconds)) for kind, seconds in data["events"]],
        breakers=data["breakers"],
        call_index=[
            (endpoint, app_id, int(count))
            for endpoint, app_id, count in data["call_index"]
        ],
        vanished=list(data["vanished"]),
        drew_install=bool(data["drew_install"]),
    )


class CrawlScheduler:
    """Batch-parallel ``crawl_many`` with a sequential-equivalence contract.

    ``workers=1`` delegates to :meth:`AppCrawler.crawl_many` unchanged;
    ``workers>=2`` runs the speculate-then-commit protocol described in
    the module docstring.  Either way the returned records — and every
    observable side effect on the crawler (transport stats, breakers,
    installer RNG position, journal contents) — are byte-identical.
    """

    def __init__(self, crawler: AppCrawler, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._crawler = crawler
        self.workers = workers
        #: commit-phase accounting: how many speculations were reusable
        self.committed_speculative = 0
        self.recrawled_inline = 0

    # -- sandbox construction ----------------------------------------------

    def _sandbox(self) -> tuple[AppCrawler, _SpeculativeInstaller]:
        """A fresh single-app sandbox crawler (private clock/breakers)."""
        world = self._crawler._world
        real = self._crawler.transport
        installer = _SpeculativeInstaller(world.registry, world.installer)
        stats = TransportStats(event_log=[])
        if isinstance(real, FaultyTransport):
            transport: DirectTransport | FaultyTransport = FaultyTransport(
                world.graph_api, installer, real.plan, stats=stats
            )
            # A pending app can already be vanished (it vanished in a
            # journaled run segment that crashed before its append);
            # the sandbox must see the same tombstones.
            transport.seed_vanished(real.vanished_apps())
        else:
            transport = DirectTransport(
                world.graph_api,
                installer,
                stats=stats,
                base_latency_s=real._base_latency_s,
            )
        sandbox = AppCrawler(
            world, transport=transport, retry_policy=self._crawler._policy
        )
        # Fresh breakers, but with the *real* crawler's tuning: the
        # sandbox assumes the real breakers' pristine state, and a
        # pristine breaker is defined by its thresholds too.
        for endpoint, breaker in self._crawler.executor.breakers.items():
            sandbox.executor.breakers[endpoint] = CircuitBreaker(
                failure_threshold=breaker.failure_threshold,
                cooldown_s=breaker.cooldown_s,
            )
        return sandbox, installer

    def speculate(self, app_id: str) -> Speculation:
        """Crawl *app_id* in a fresh sandbox; return its state delta.

        Pure per-app work: consumes none of the real crawler's state,
        so it can run on any thread — or, via the supervisor, in any
        OS process — and commit later in canonical order.
        """
        sandbox, installer = self._sandbox()
        record = sandbox.crawl_app(app_id)
        transport = sandbox.transport
        call_index: list[tuple[str, str, int]] = []
        vanished: list[str] = []
        if isinstance(transport, FaultyTransport):
            call_index = transport.call_index_items()
            vanished = sorted(transport.vanished_apps())
        return Speculation(
            app_id=app_id,
            record=record,
            counters=transport.stats.snapshot(),
            events=list(transport.stats.event_log or []),
            breakers=sandbox.executor.snapshot_breakers(),
            call_index=call_index,
            vanished=vanished,
            drew_install=installer.drew,
        )

    # -- the commit phase ---------------------------------------------------

    def _valid(self, speculation: Speculation) -> bool:
        """Does the real state match what the sandbox assumed?

        The sandbox assumed pristine breakers; everything else it
        depends on is either app-local (fault draws, jitter, call
        indexes, its own vanished tombstone) or handled by the deferred
        installer draw.
        """
        del speculation  # the predicate is the same for every app
        return all(
            _pristine(snapshot)
            for snapshot in self._crawler.executor.snapshot_breakers().values()
        )

    def _commit(self, speculation: Speculation) -> CrawlRecord:
        """Merge a valid speculation into the real crawler state.

        Mirrors exactly what a sequential ``crawl_app`` would have done
        at this point: open a new app frame (rolling the previous app's
        frame, as ``crawl_app`` does on entry), replay the sandbox's
        clock increments one by one, merge the exact tallies, perform
        the deferred installer draw in canonical stream order, and
        transplant the sandbox's end-of-app breaker states (their
        timestamps are app-frame, hence base-independent).
        """
        crawler = self._crawler
        record = speculation.record
        crawler.executor.begin_app()
        if speculation.drew_install:
            # Perform the deferred client-ID rotation draw now, in
            # canonical order, from the shared installer stream.  The
            # sandbox verified the app is present and crawlable at the
            # install day, so this cannot raise.
            prompt = crawler._world.installer.visit_install_url(
                record.app_id, day=crawler._world.schedule.inst_crawl_day
            )
            record.observed_client_id = prompt.client_id
            record.permissions = prompt.permissions
            record.redirect_uri = prompt.redirect_uri
        crawler.stats.apply_events(speculation.events)
        crawler.stats.merge_counters(speculation.counters)
        transport = crawler.transport
        if isinstance(transport, FaultyTransport):
            transport.absorb_call_indexes(speculation.call_index)
            transport.seed_vanished(speculation.vanished)
        for endpoint, snapshot in speculation.breakers.items():
            breaker = crawler.executor.breaker(endpoint)
            if snapshot["opened_at"] == 0.0:
                # The sandbox breaker never opened (an open instant of
                # exactly 0.0 is impossible — a failure costs service
                # time first), so the sequential loop would have left
                # the real breaker's stale timestamp untouched.  It is
                # dead state, but checkpoints snapshot it bit for bit.
                snapshot = dict(snapshot)
                snapshot["opened_at"] = breaker.snapshot()["opened_at"]
            breaker.restore(snapshot)
        return record

    # -- the public API -----------------------------------------------------

    def crawl(
        self,
        app_ids: list[str] | set[str],
        journal: "CrawlJournal | None" = None,
        crash_plan: "object | None" = None,
    ) -> dict[str, CrawlRecord]:
        """Crawl *app_ids*; byte-identical to ``crawl_many`` at any width.

        Crash injection (*crash_plan*) targets the sequential loop's
        journaling windows, so it forces ``workers=1`` semantics.
        """
        if self.workers == 1 or crash_plan is not None:
            return self._crawler.crawl_many(
                app_ids, journal=journal, crash_plan=crash_plan
            )
        records, pending = self._crawler.journal_prologue(app_ids, journal)
        if not pending:
            return records
        width = clamp_width(self.workers, len(pending))
        speculations: dict[str, Speculation] = {}
        lock = threading.Lock()

        def run_partition(shard: list[str]) -> None:
            for app_id in shard:
                speculation = self.speculate(app_id)
                with lock:
                    speculations[app_id] = speculation

        shards = [pending[w::width] for w in range(width)]
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            for future in [pool.submit(run_partition, s) for s in shards]:
                future.result()

        return self.commit_all(
            pending, speculations, journal, records, width=width
        )

    def commit_all(
        self,
        pending: list[str],
        speculations: dict[str, Speculation],
        journal: "CrawlJournal | None",
        records: dict[str, CrawlRecord],
        *,
        width: int,
    ) -> dict[str, CrawlRecord]:
        """Commit *speculations* over *pending* in canonical order.

        The single sequential phase shared by the thread scheduler and
        the multi-process supervisor.  Apps whose speculation is missing
        (a worker died before producing it and every recovery rung was
        exhausted) or invalid (a previous app left a breaker
        non-pristine) are crawled inline against the true state — the
        graceful degradation to the sequential crawl that preserves
        byte-identical output no matter how the speculations were made.
        """
        obs = get_observer()
        for app_id in pending:
            speculation = speculations.get(app_id)
            if speculation is not None and self._valid(speculation):
                record = self._commit(speculation)
                self.committed_speculative += 1
                mode = "speculative"
            else:
                # Either no speculation survived for this app, or a
                # previous app left a breaker non-pristine so the
                # speculation's premise is wrong.  Crawl inline (exact,
                # just not parallel) and let later apps re-validate.
                # The inline crawl also re-records the app's trace
                # root, so — last recording wins — the surviving span
                # is the one whose record was committed, as in a
                # sequential run.
                record = self._crawler.crawl_app(app_id)
                self.recrawled_inline += 1
                mode = "inline"
            if obs.enabled:
                obs.event(
                    "schedule.commit",
                    t=self._crawler.stats.elapsed_s,
                    category="schedule",
                    app_id=app_id,
                    mode=mode,
                    workers=width,
                )
                obs.count("schedule_commits_total", mode=mode)
            if journal is not None:
                journal.append(record, self._crawler.snapshot_state())
            records[app_id] = record
        if obs.enabled:
            obs.gauge(
                "schedule_committed_speculative",
                float(self.committed_speculative),
            )
            obs.gauge("schedule_recrawled_inline", float(self.recrawled_inline))
        return records
