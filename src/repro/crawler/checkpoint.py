"""Crash-safe crawl persistence: write-ahead journal, snapshots, resume.

The paper's dataset is the product of a nine-month continuously running
crawl — a process that inevitably died and restarted many times.  PR 1
made the crawler survive the *network* failing; this module makes it
survive the *process* failing:

* :func:`atomic_write` — the shared all-or-nothing file write (tmp file
  + fsync + ``os.replace``) every persistent artifact goes through,
* :class:`CrawlJournal` — an append-only JSONL write-ahead log.  Each
  completed :class:`~repro.crawler.crawler.CrawlRecord` is one
  self-delimiting, per-line-checksummed entry carrying the full record
  *and* the transport/executor state needed to continue the crawl
  deterministically.  Periodically the journal compacts into a single
  checksummed snapshot file,
* :class:`CrashPlan` / :exc:`SimulatedCrash` — seeded crash injection
  at configurable points inside the crawl loop, including *between*
  journal write and flush (the torn-write window).

Durability contract
-------------------
An app is **durable** once ``CrawlJournal.append`` returns: its journal
line has been written, flushed, and ``fsync``\\ ed, so a process kill or
OS crash after that point cannot lose it (subject to the device
honouring fsync).  A crash *before* that point loses at most the app
being crawled; :meth:`AppCrawler.crawl_many
<repro.crawler.crawler.AppCrawler.crawl_many>` re-crawls it on resume
from journaled state, making the resumed run byte-identical to an
uninterrupted one.

Corruption policy
-----------------
A torn *final* journal line is the expected crash artifact and is
silently truncated.  A checksum-mismatched *interior* line is moved to
a ``.corrupt`` sidecar with a warning and its app is re-crawled — never
a crash, never silent acceptance.
"""

from __future__ import annotations

import json
import hashlib
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.crawler.crawler import COLLECTIONS, CrawlRecord
from repro.crawler.resilience import CrawlOutcome
from repro.obs.observer import get_observer
from repro.rng import derive_seed

__all__ = [
    "atomic_write",
    "next_sidecar_path",
    "SimulatedCrash",
    "CrashPlan",
    "CrawlJournal",
    "BEFORE_APP",
    "AFTER_CRAWL",
    "MID_APPEND",
    "AFTER_APPEND",
    "CRASH_POINTS",
    "record_to_jsonable",
    "record_from_jsonable",
]

logger = logging.getLogger(__name__)


def atomic_write(path: str | Path, data: str | bytes) -> Path:
    """Write *data* to *path* all-or-nothing.

    The data goes to a temporary file in the same directory, is flushed
    and ``fsync``\\ ed, and only then renamed over *path* with
    ``os.replace`` — so readers (and crash recovery) see either the old
    complete file or the new complete file, never a torn mixture.  The
    directory entry is fsynced best-effort afterwards.
    """
    path = Path(path)
    if isinstance(data, str):
        data = data.encode("utf-8")
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    try:  # directory fsync makes the rename itself durable (best-effort)
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    return path


def next_sidecar_path(path: str | Path) -> Path:
    """The first unused quarantine sidecar name for *path*.

    ``X.corrupt``, then ``X.corrupt.1``, ``X.corrupt.2``, … — each
    quarantine event gets its own sidecar, so interrupting and resuming
    a crawl repeatedly can never overwrite (or silently interleave
    with) the evidence of an earlier corruption.
    """
    path = Path(path)
    candidate = path.with_name(path.name + ".corrupt")
    counter = 0
    while candidate.exists():
        counter += 1
        candidate = path.with_name(f"{path.name}.corrupt.{counter}")
    return candidate


# -- crash injection --------------------------------------------------------


class SimulatedCrash(BaseException):
    """The process 'dies' here: an injected crash inside the crawl loop.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    no ordinary ``except Exception`` recovery path can accidentally
    swallow a simulated process death — the whole point is that nothing
    between the crash point and the journal gets a chance to clean up.
    """


#: crash before the app's crawl starts (nothing observed yet)
BEFORE_APP = "before_app"
#: crash after the crawl, before anything reaches the journal
AFTER_CRAWL = "after_crawl"
#: crash between journal write and flush — leaves a torn final line
MID_APPEND = "mid_append"
#: crash right after the record became durable
AFTER_APPEND = "after_append"

CRASH_POINTS = (BEFORE_APP, AFTER_CRAWL, MID_APPEND, AFTER_APPEND)


@dataclass
class CrashPlan:
    """Raise :exc:`SimulatedCrash` at one configurable crawl-loop point.

    ``app_index`` counts the apps *freshly crawled by this process* (the
    resume loop skips replayed apps), so a plan targets "the k-th app
    this incarnation works on".  A plan fires at most once; after the
    crash is raised, ``fired`` stays true and the plan is inert.
    """

    app_index: int
    point: str = MID_APPEND
    fired: bool = field(default=False, init=False)
    _started: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {self.point!r}; one of {CRASH_POINTS}"
            )
        if self.app_index < 0:
            raise ValueError(f"app_index must be >= 0, got {self.app_index}")

    @classmethod
    def random(cls, seed: int, n_apps: int) -> "CrashPlan":
        """A seeded plan crashing at a random (app, point) pair."""
        rng = np.random.default_rng(derive_seed(seed, "crash-plan"))
        index = int(rng.integers(0, max(1, n_apps)))
        point = CRASH_POINTS[int(rng.integers(0, len(CRASH_POINTS)))]
        return cls(app_index=index, point=point)

    def advance(self) -> None:
        """Move to the next app slot (called once per freshly crawled app)."""
        self._started += 1

    def due(self, point: str) -> bool:
        """Would the plan crash at *point* of the current app?"""
        return (
            not self.fired
            and point == self.point
            and self._started - 1 == self.app_index
        )

    def check(self, point: str) -> None:
        """Crash here if the plan says so."""
        if self.due(point):
            self.fired = True
            raise SimulatedCrash(
                f"injected crash at {point!r} of app #{self.app_index}"
            )


# -- record (de)serialisation ----------------------------------------------
#
# Unlike the dataset export (repro.io), the journal must be *lossless*:
# resume replays these records into feature extraction, so profile posts
# are kept in full, not reduced to a count.


def record_to_jsonable(record: CrawlRecord) -> dict[str, Any]:
    """A lossless, JSON-serialisable image of one crawl record."""
    return {
        "app_id": record.app_id,
        "summary_ok": bool(record.summary_ok),
        "name": record.name,
        "description": record.description,
        "company": record.company,
        "category": record.category,
        "mau_observations": [int(v) for v in record.mau_observations],
        "feed_ok": bool(record.feed_ok),
        "profile_posts": [
            {
                "message": str(post["message"]),
                "link": post["link"],
                "created_time": int(post["created_time"]),
                "from": int(post["from"]),
            }
            for post in record.profile_posts
        ],
        "inst_ok": bool(record.inst_ok),
        "permissions": list(record.permissions),
        "observed_client_id": record.observed_client_id,
        "redirect_uri": record.redirect_uri,
        "outcomes": {
            collection: {
                "status": outcome.status,
                "attempts": int(outcome.attempts),
                "faults": list(outcome.faults),
                "elapsed_s": float(outcome.elapsed_s),
            }
            for collection, outcome in record.outcomes.items()
        },
    }


def record_from_jsonable(data: dict[str, Any]) -> CrawlRecord:
    """The inverse of :func:`record_to_jsonable`.

    Outcomes are rebuilt in crawl order (summary, feed, install): the
    journal's canonical encoding sorts object keys, but a replayed
    record must be indistinguishable from a freshly crawled one — down
    to dict iteration order, which the dataset export serialises.
    """
    stored = data.get("outcomes", {})
    ordered = [c for c in COLLECTIONS if c in stored]
    ordered += [c for c in stored if c not in COLLECTIONS]
    return CrawlRecord(
        app_id=data["app_id"],
        summary_ok=bool(data["summary_ok"]),
        name=data.get("name"),
        description=data.get("description", ""),
        company=data.get("company", ""),
        category=data.get("category", ""),
        mau_observations=[int(v) for v in data.get("mau_observations", [])],
        feed_ok=bool(data["feed_ok"]),
        profile_posts=[dict(post) for post in data.get("profile_posts", [])],
        inst_ok=bool(data["inst_ok"]),
        permissions=tuple(data.get("permissions", ())),
        observed_client_id=data.get("observed_client_id"),
        redirect_uri=data.get("redirect_uri"),
        outcomes={
            collection: CrawlOutcome(
                collection=collection,
                status=stored[collection]["status"],
                attempts=int(stored[collection]["attempts"]),
                faults=list(stored[collection]["faults"]),
                elapsed_s=float(stored[collection]["elapsed_s"]),
            )
            for collection in ordered
        },
    )


# -- line / snapshot encoding ----------------------------------------------

_LINE_VERSION = 1


def _canonical(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _encode_line(payload: dict) -> bytes:
    body = _canonical(payload)
    digest = hashlib.sha256(body).hexdigest().encode("ascii")
    return digest + b"\t" + body + b"\n"


def _decode_line(line: bytes) -> dict | None:
    """Parse one journal line; ``None`` if torn or checksum-mismatched."""
    try:
        digest, body = line.split(b"\t", 1)
    except ValueError:
        return None
    if len(digest) != 64:
        return None
    if hashlib.sha256(body).hexdigest().encode("ascii") != digest:
        return None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or "app_id" not in payload:
        return None
    return payload


class CrawlJournal:
    """Write-ahead log + snapshot making a crawl kill-anywhere resumable.

    One directory holds everything:

    ``journal.jsonl``
        One checksummed line per durable app: the full crawl record plus
        the crawler state *after* that app (transport clock, fault-plan
        bookkeeping, breaker states, installer RNG).
    ``snapshot.json``
        Periodic compaction of the journal (every ``snapshot_every``
        appends) into one checksummed file, written atomically; the
        journal restarts empty afterwards.
    ``meta.json``
        The configuration fingerprint the journal was written under;
        resuming with a different configuration is refused loudly.
    ``journal.jsonl.corrupt`` / ``snapshot.json.corrupt``
        Quarantine sidecars for checksum-mismatched entries; repeated
        quarantines get counter-suffixed names (``….corrupt.1``, …) so
        no event overwrites another's evidence.

    ``append()`` returning *is* the durability point: line written,
    flushed, fsynced.  See the module docstring for the full contract.
    """

    JOURNAL_NAME = "journal.jsonl"
    SNAPSHOT_NAME = "snapshot.json"
    META_NAME = "meta.json"

    def __init__(
        self,
        directory: str | Path,
        snapshot_every: int = 64,
        resume: bool = True,
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.snapshot_every = snapshot_every
        #: app_id -> jsonable record, in durability order
        self._records: dict[str, dict] = {}
        self._state: dict | None = None
        self._since_compact = 0
        #: apps whose journal lines were quarantined at open (best-effort
        #: identification: a corrupt line may not name its app at all)
        self.quarantined: tuple[str, ...] = ()
        #: was a torn final line truncated at open?
        self.truncated_torn_line = False
        if not resume and self._has_data():
            raise FileExistsError(
                f"checkpoint directory {self.directory} already holds crawl "
                "data; pass resume=True (CLI: --resume) to continue it, or "
                "point --checkpoint at a fresh directory"
            )
        self._sweep_tmp_files()
        self._load()
        self._fh = open(self.journal_path, "ab")

    # -- paths ------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.directory / self.JOURNAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / self.SNAPSHOT_NAME

    @property
    def meta_path(self) -> Path:
        return self.directory / self.META_NAME

    def _has_data(self) -> bool:
        return any(
            p.exists() and p.stat().st_size > 0
            for p in (self.journal_path, self.snapshot_path)
        )

    def _sweep_tmp_files(self) -> None:
        """Remove half-written ``*.tmp`` leftovers of interrupted writes."""
        for tmp in self.directory.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - racy cleanup
                pass

    # -- loading -----------------------------------------------------------

    def _load(self) -> None:
        self._load_snapshot()
        self._load_journal()

    def _load_snapshot(self) -> None:
        path = self.snapshot_path
        if not path.exists():
            return
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            payload = doc["payload"]
            if hashlib.sha256(_canonical(payload)).hexdigest() != doc["sha256"]:
                raise ValueError("snapshot checksum mismatch")
            records = {e["app_id"]: e for e in payload["records"]}
            state = payload["state"]
        except (KeyError, TypeError, ValueError, UnicodeDecodeError) as err:
            corrupt = next_sidecar_path(path)
            os.replace(path, corrupt)
            logger.warning(
                "quarantined corrupt snapshot %s -> %s (%s); its apps will "
                "be re-crawled", path, corrupt, err,
            )
            return
        self._records.update(records)
        self._state = state

    def _load_journal(self) -> None:
        path = self.journal_path
        if not path.exists():
            return
        raw = path.read_bytes()
        if not raw:
            return
        pieces = raw.split(b"\n")
        tail = pieces.pop()  # b"" when the file ends with a newline
        torn = bool(tail)
        good: list[tuple[bytes, dict]] = []
        bad: list[bytes] = []
        for index, piece in enumerate(pieces):
            payload = _decode_line(piece)
            if payload is None:
                if index == len(pieces) - 1:
                    # A corrupt *final* line is the torn-write artifact
                    # of a crash mid-append: truncate it silently.
                    torn = True
                else:
                    bad.append(piece)
                continue
            good.append((piece, payload))
        for _, payload in good:
            self._records[payload["app_id"]] = payload["record"]
        if good:
            self._state = good[-1][1]["state"]
        self._since_compact = len(good)
        if bad:
            self._quarantine_lines(bad)
        if bad or torn:
            # Rewrite the journal to exactly the surviving lines so the
            # damage is handled once, not re-discovered on every open.
            atomic_write(path, b"".join(piece + b"\n" for piece, _ in good))
            self.truncated_torn_line = torn

    def _quarantine_lines(self, lines: list[bytes]) -> None:
        # A fresh counter-suffixed sidecar per quarantine event: resuming
        # twice must leave both corruption artifacts intact, never
        # overwrite or interleave them.
        corrupt_path = next_sidecar_path(self.journal_path)
        with open(corrupt_path, "wb") as sidecar:
            for line in lines:
                sidecar.write(line + b"\n")
        claimed = []
        for line in lines:
            try:  # best-effort: name the app if the payload still parses
                _, body = line.split(b"\t", 1)
                claimed.append(str(json.loads(body)["app_id"]))
            except Exception:  # noqa: BLE001 - corrupt by definition
                claimed.append("<unidentifiable>")
        self.quarantined = tuple(claimed)
        # The final journaled state may still carry the quarantined apps'
        # per-app fault bookkeeping; drop it so their re-crawl starts from
        # call index 0, like any fresh crawl.
        known = {c for c in claimed if c != "<unidentifiable>"}
        if known and self._state is not None:
            transport = self._state.get("transport", {})
            transport["call_index"] = [
                entry
                for entry in transport.get("call_index", [])
                if entry[1] not in known
            ]
            transport["vanished"] = [
                a for a in transport.get("vanished", []) if a not in known
            ]
        logger.warning(
            "quarantined %d corrupt journal line(s) in %s to sidecar "
            "%s (apps: %s); they will be re-crawled",
            len(lines), self.journal_path, corrupt_path, ", ".join(claimed),
        )

    # -- replay API --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._records

    @property
    def records(self) -> dict[str, CrawlRecord]:
        """Durable records, decoded fresh (callers may mutate them)."""
        return {
            app_id: record_from_jsonable(data)
            for app_id, data in self._records.items()
        }

    @property
    def state(self) -> dict | None:
        """The crawler state after the last durable app (``None`` if empty)."""
        return self._state

    # -- configuration fingerprint ----------------------------------------

    def validate_fingerprint(self, fingerprint: dict) -> None:
        """Refuse to mix crawls from different configurations.

        The first crawl stamps ``meta.json`` with its fingerprint (seed,
        scale, fault plan, retry policy); later opens must match it, or
        resuming would silently splice records from incompatible runs.
        """
        stored = None
        if self.meta_path.exists():
            try:
                stored = json.loads(
                    self.meta_path.read_text(encoding="utf-8")
                ).get("fingerprint")
            except (ValueError, UnicodeDecodeError):
                logger.warning(
                    "checkpoint meta %s is corrupt; rewriting it from the "
                    "current configuration", self.meta_path,
                )
        if stored is not None:
            if stored != fingerprint:
                raise ValueError(
                    f"checkpoint at {self.directory} was written under a "
                    f"different configuration.\n  stored:  {stored}\n"
                    f"  current: {fingerprint}\nResume with the original "
                    "settings, or start a fresh --checkpoint directory."
                )
            return
        atomic_write(
            self.meta_path,
            json.dumps(
                {"format_version": 1, "fingerprint": fingerprint},
                indent=1,
                sort_keys=True,
            ),
        )

    # -- writing -----------------------------------------------------------

    def append(
        self, record: CrawlRecord, state: dict, tear: bool = False
    ) -> None:
        """Make *record* durable; the crawler state rides along.

        When this returns, the line is on disk (written + flushed +
        fsynced) — the app counts as done across any crash.  ``tear``
        simulates a crash in the write/flush window: a prefix of the
        line is written and :exc:`SimulatedCrash` raised, producing
        exactly the torn-final-line artifact resume must absorb.
        """
        if self._fh is None:
            raise RuntimeError("journal is closed")
        payload = {
            "v": _LINE_VERSION,
            "app_id": record.app_id,
            "record": record_to_jsonable(record),
            "state": state,
        }
        line = _encode_line(payload)
        if tear:
            self._fh.write(line[: max(1, 2 * len(line) // 3)])
            self._fh.flush()
            raise SimulatedCrash(
                f"injected crash mid-append of {record.app_id} "
                "(torn journal line)"
            )
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._records[record.app_id] = payload["record"]
        self._state = state
        self._since_compact += 1
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "journal.append",
                t=self._journal_clock(state),
                category="checkpoint",
                app_id=record.app_id,
                line_bytes=len(line),
            )
            obs.count("journal_appends_total")
            obs.observe(
                "journal_line_bytes",
                float(len(line)),
                edges=(1024.0, 4096.0, 16384.0, 65536.0, 262144.0),
            )
        if self._since_compact >= self.snapshot_every:
            self.compact()

    def compact(self) -> None:
        """Fold journal + previous snapshot into one atomic snapshot file.

        Crash-safe at every step: the snapshot is written via
        :func:`atomic_write` first, and only then is the journal
        truncated.  A crash between the two leaves duplicate entries,
        which the loader resolves (journal lines win, identically).
        """
        if self._state is None:
            return
        payload = {
            "format_version": 1,
            "records": list(self._records.values()),
            "state": self._state,
            "count": len(self._records),
        }
        doc = {
            "sha256": hashlib.sha256(_canonical(payload)).hexdigest(),
            "payload": payload,
        }
        atomic_write(self.snapshot_path, json.dumps(doc))
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.journal_path, "wb")  # truncate: snapshot owns it
        self._since_compact = 0
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "journal.compact",
                t=self._journal_clock(self._state),
                category="checkpoint",
                records=len(self._records),
            )
            obs.count("journal_compactions_total")

    @staticmethod
    def _journal_clock(state: dict | None) -> float:
        """The global simulated clock carried by a journaled crawler state.

        The journal has no clock of its own; timestamps for its trace
        events come from the transport accounting in the state that
        rides along with every append.
        """
        stats = (state or {}).get("transport", {}).get("stats", {})
        return float(stats.get("service_s", 0.0)) + float(stats.get("wait_s", 0.0))

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CrawlJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
