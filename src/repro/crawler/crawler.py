"""The Selenium-style app crawler (Sec 2.3).

For each app ID the crawler attempts three collections over the
March–May window:

* **summaries** — weekly queries of ``graph.facebook.com/<id>``; a
  removed app makes the query fail,
* **profile feed** — one pass over ``graph.facebook.com/<id>/feed``,
* **install URL** — following the installation-URL redirect chain to
  observe the permission dialog (permission set, client ID, redirect
  URI).  This fails for removed apps *and* for the many apps whose
  redirect flows are built for humans, which is why D-Inst is the
  smallest dataset.

The crawler returns raw observations only; feature computation lives in
:mod:`repro.core.features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from typing import Any

from repro.platform.graph_api import GraphApiError
from repro.platform.install import AppRemovedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["CrawlRecord", "AppCrawler"]


@dataclass
class CrawlRecord:
    """Everything the crawler observed about one app ID."""

    app_id: str
    # summary crawl
    summary_ok: bool = False
    name: str | None = None
    description: str = ""
    company: str = ""
    category: str = ""
    mau_observations: list[int] = field(default_factory=list)
    # profile-feed crawl
    feed_ok: bool = False
    profile_posts: list[dict[str, Any]] = field(default_factory=list)
    # install-URL crawl
    inst_ok: bool = False
    permissions: tuple[str, ...] = ()
    observed_client_id: str | None = None
    redirect_uri: str | None = None

    @property
    def client_id_mismatch(self) -> bool | None:
        """Did the install URL hand out a different app's client ID?"""
        if not self.inst_ok or self.observed_client_id is None:
            return None
        return self.observed_client_id != self.app_id

    @property
    def median_mau(self) -> int:
        if not self.mau_observations:
            return 0
        ordered = sorted(self.mau_observations)
        return ordered[len(ordered) // 2]

    @property
    def max_mau(self) -> int:
        return max(self.mau_observations, default=0)

    @property
    def complete(self) -> bool:
        """Did all three collections succeed (D-Complete membership)?"""
        return self.summary_ok and self.feed_ok and self.inst_ok


class AppCrawler:
    """Crawls app IDs against the simulated platform."""

    def __init__(self, world: "SimulatedWorld") -> None:
        self._world = world

    def crawl_app(self, app_id: str) -> CrawlRecord:
        record = CrawlRecord(app_id=app_id)
        self._crawl_summaries(record)
        self._crawl_profile_feed(record)
        self._crawl_install_url(record)
        return record

    def crawl_many(self, app_ids: list[str] | set[str]) -> dict[str, CrawlRecord]:
        return {app_id: self.crawl_app(app_id) for app_id in sorted(app_ids)}

    # -- individual collections ------------------------------------------

    def _crawl_summaries(self, record: CrawlRecord) -> None:
        schedule = self._world.schedule
        graph = self._world.graph_api
        first = schedule.summary_crawl_day
        last = first + schedule.crawl_months * 30
        for day in range(first, last, 7):
            try:
                summary = graph.summary(record.app_id, day=day)
            except GraphApiError:
                continue
            record.summary_ok = True
            record.name = summary["name"]
            record.description = summary["description"]
            record.company = summary["company"]
            record.category = summary["category"]
            record.mau_observations.append(int(summary["monthly_active_users"]))

    def _crawl_profile_feed(self, record: CrawlRecord) -> None:
        try:
            feed = self._world.graph_api.profile_feed(
                record.app_id, day=self._world.schedule.profilefeed_crawl_day
            )
        except GraphApiError:
            return
        record.feed_ok = True
        record.profile_posts = feed

    def _crawl_install_url(self, record: CrawlRecord) -> None:
        day = self._world.schedule.inst_crawl_day
        app = self._world.registry.maybe_get(record.app_id)
        if app is None or not app.install_flow_crawlable:
            return  # human-only redirect flow: the crawler gets stuck
        try:
            prompt = self._world.installer.visit_install_url(record.app_id, day=day)
        except AppRemovedError:
            return
        record.inst_ok = True
        record.permissions = prompt.permissions
        record.observed_client_id = prompt.client_id
        record.redirect_uri = prompt.redirect_uri
