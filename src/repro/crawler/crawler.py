"""The Selenium-style app crawler (Sec 2.3), now failure-aware.

For each app ID the crawler attempts three collections over the
March–May window:

* **summaries** — weekly queries of ``graph.facebook.com/<id>``; a
  removed app makes the query fail,
* **profile feed** — one pass over ``graph.facebook.com/<id>/feed``,
* **install URL** — following the installation-URL redirect chain to
  observe the permission dialog (permission set, client ID, redirect
  URI).  This fails for removed apps *and* for the many apps whose
  redirect flows are built for humans, which is why D-Inst is the
  smallest dataset.

All platform access goes through a transport
(:mod:`repro.platform.transport`) under a retry policy and per-endpoint
circuit breakers (:mod:`repro.crawler.resilience`): transient faults
(rate limits, 5xx, timeouts) are retried with jittered backoff, while
authoritative failures (app removed) are never retried.  Each
collection's :class:`~repro.crawler.resilience.CrawlOutcome` is kept on
the record so downstream consumers can tell *the platform said no*
(informative missingness, Sec 4.1) from *we gave up* (no signal).

The crawler returns raw observations only; feature computation lives in
:mod:`repro.core.features`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING
from typing import Any

from repro.crawler.resilience import (
    GAVE_UP,
    OK,
    CrawlOutcome,
    ResilientExecutor,
    RetryPolicy,
)
from repro.obs.observer import get_observer
from repro.platform.transport import (
    DirectTransport,
    FaultPlan,
    FaultyTransport,
    TransportStats,
    draw_blackout_windows,
)
from repro.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crawler.checkpoint import CrashPlan, CrawlJournal
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = [
    "CrawlRecord",
    "AppCrawler",
    "make_crawler",
    "outcome_tallies",
    "recovery_rate",
]

#: collection names, in crawl order
COLLECTIONS = ("summary", "feed", "install")


@dataclass
class CrawlRecord:
    """Everything the crawler observed about one app ID."""

    app_id: str
    # summary crawl
    summary_ok: bool = False
    name: str | None = None
    description: str = ""
    company: str = ""
    category: str = ""
    mau_observations: list[int] = field(default_factory=list)
    # profile-feed crawl
    feed_ok: bool = False
    profile_posts: list[dict[str, Any]] = field(default_factory=list)
    # install-URL crawl
    inst_ok: bool = False
    permissions: tuple[str, ...] = ()
    observed_client_id: str | None = None
    redirect_uri: str | None = None
    #: per-collection crawl outcomes (empty for records built elsewhere,
    #: e.g. loaded from an export — treated as authoritative)
    outcomes: dict[str, CrawlOutcome] = field(default_factory=dict)

    @property
    def client_id_mismatch(self) -> bool | None:
        """Did the install URL hand out a different app's client ID?

        Tri-state: ``None`` means the install crawl yielded nothing —
        whether because the flow is human-only, the app is removed, or
        the crawl gave up — and *must not* be conflated with ``False``
        (verified match).  Callers deciding "is this suspicious?" should
        test ``is True``; callers deciding "is this verified-clean?"
        should test ``is False``.
        """
        if not self.inst_ok or self.observed_client_id is None:
            return None
        return self.observed_client_id != self.app_id

    @property
    def median_mau(self) -> int:
        if not self.mau_observations:
            return 0
        ordered = sorted(self.mau_observations)
        return ordered[len(ordered) // 2]

    @property
    def max_mau(self) -> int:
        return max(self.mau_observations, default=0)

    @property
    def complete(self) -> bool:
        """Did all three collections succeed (D-Complete membership)?"""
        return self.summary_ok and self.feed_ok and self.inst_ok

    # -- failure-awareness -------------------------------------------------

    def gave_up(self, collection: str) -> bool:
        """Did this collection end in a transient give-up (no verdict)?"""
        outcome = self.outcomes.get(collection)
        return outcome is not None and outcome.status == GAVE_UP

    @property
    def degraded_collections(self) -> tuple[str, ...]:
        """Collections whose absence is *uninformative* (crawler gave up)."""
        return tuple(c for c in COLLECTIONS if self.gave_up(c))

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_collections)


class AppCrawler:
    """Crawls app IDs against the simulated platform, resiliently.

    With the default :class:`DirectTransport` no transient fault can
    occur, every collection succeeds or fails authoritatively on the
    first attempt, and the records are identical to a crawler with no
    resilience layer at all.
    """

    def __init__(
        self,
        world: "SimulatedWorld",
        transport: DirectTransport | FaultyTransport | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._world = world
        self._transport = transport or DirectTransport(
            world.graph_api, world.installer
        )
        self._policy = retry_policy or RetryPolicy()
        self._executor = ResilientExecutor(
            self._policy,
            self._transport.stats,
            seed=derive_seed(world.config.master_seed, "crawler-retry"),
        )

    @property
    def stats(self) -> TransportStats:
        """Latency and fault accounting for everything this crawler did."""
        return self._transport.stats

    @property
    def transport(self) -> DirectTransport | FaultyTransport:
        """The transport under this crawler (shared with the service)."""
        return self._transport

    @property
    def executor(self) -> ResilientExecutor:
        return self._executor

    def crawl_app(
        self,
        app_id: str,
        deadline_at: float | None = None,
        bulkhead: "object | None" = None,
        strict_deadline: bool = False,
    ) -> CrawlRecord:
        """Crawl one app's three collections under a deadline budget.

        By default the deadline is the retry policy's per-app budget
        from now.  The online service passes an explicit *deadline_at*
        (the request's absolute deadline on the simulated clock) and a
        *bulkhead* (:class:`repro.service.bulkhead.Bulkhead`) that caps
        each endpoint class to its compartment of the remaining budget,
        so one slow Graph API class cannot consume the whole request.

        With *strict_deadline*, a collection whose start already lies
        past the deadline is not attempted at all: its outcome is a
        transient give-up tagged ``"deadline"`` (uninformative
        missingness — the classifier must degrade, not condemn).  The
        batch crawler keeps the historical lenient behaviour, where
        an exhausted deadline still allows fault-free attempts.

        Internally the whole crawl runs in a fresh *app frame* (time
        since this call started): the default deadline is the policy
        budget verbatim and an absolute *deadline_at* is converted on
        entry.  Frame-relative arithmetic is what lets the
        batch-parallel scheduler crawl apps in sandboxes and still
        produce bit-identical records (see
        :mod:`repro.crawler.scheduler`).
        """
        record = CrawlRecord(app_id=app_id)
        self._executor.begin_app()
        obs = get_observer()
        # The app frame opens at exactly 0.0, so the root span's t_start
        # is a literal — no clock read on the disabled path.
        with obs.span("crawl.app", key=app_id, category="crawl", t=0.0) as span, \
                obs.profile("crawl"):
            if deadline_at is None:
                rel_deadline = self._policy.per_app_deadline_s
            else:
                rel_deadline = deadline_at - self.stats.elapsed_s
            for crawl, endpoint in (
                (self._crawl_summaries, "summary"),
                (self._crawl_profile_feed, "feed"),
                (self._crawl_install_url, "install"),
            ):
                if strict_deadline and self.stats.app_elapsed_s >= rel_deadline:
                    record.outcomes[endpoint] = CrawlOutcome(
                        endpoint, status=GAVE_UP, faults=["deadline"]
                    )
                    if obs.enabled:
                        obs.event(
                            "crawl.deadline_skip",
                            t=self.stats.app_elapsed_s,
                            endpoint=endpoint,
                            app_id=app_id,
                        )
                        obs.count("crawl_deadline_skips_total", endpoint=endpoint)
                    continue
                endpoint_deadline = rel_deadline
                if bulkhead is not None:
                    endpoint_deadline = bulkhead.endpoint_deadline(
                        endpoint, self.stats.app_elapsed_s, rel_deadline
                    )
                if obs.enabled:
                    with obs.span(
                        f"crawl.{endpoint}",
                        key=app_id,
                        category="crawl",
                        t=self.stats.app_elapsed_s,
                    ) as child:
                        crawl(record, endpoint_deadline)
                        child.end(self.stats.app_elapsed_s)
                        outcome = record.outcomes.get(endpoint)
                        if outcome is not None:
                            child.note(
                                status=outcome.status, attempts=outcome.attempts
                            )
                else:
                    crawl(record, endpoint_deadline)
            if obs.enabled:
                elapsed = self.stats.app_elapsed_s
                span.end(elapsed)
                span.note(degraded=record.degraded, complete=record.complete)
                obs.count("crawl_apps_total")
                obs.observe("crawl_app_seconds", elapsed)
                obs.sim_cost("crawl", elapsed)
        return record

    def crawl_many(
        self,
        app_ids: list[str] | set[str],
        journal: "CrawlJournal | None" = None,
        crash_plan: "CrashPlan | None" = None,
        workers: int = 1,
        processes: int = 1,
    ) -> dict[str, CrawlRecord]:
        """Crawl *app_ids* in sorted order, optionally crash-safely.

        With a :class:`~repro.crawler.checkpoint.CrawlJournal`, every
        completed record is made durable (written, flushed, fsynced)
        before the next app starts, and apps already durable in the
        journal are *replayed* instead of re-crawled: the crawler state
        (transport clock, fault bookkeeping, breakers, installer RNG)
        is restored from the journal first, so interrupting anywhere and
        resuming yields records byte-identical to an uninterrupted run.

        *crash_plan* injects a :class:`SimulatedCrash` at a configured
        point of the loop (crash-injection tests); ``None`` means never.

        ``workers > 1`` runs the batch-parallel scheduler
        (:class:`~repro.crawler.scheduler.CrawlScheduler`), whose output
        — records and all crawler side effects — is byte-identical to
        this sequential loop by construction.  ``processes > 1`` runs
        the fault-tolerant multi-process supervisor
        (:class:`~repro.crawler.supervisor.ShardSupervisor`) with the
        same byte-identity contract; it takes precedence over
        ``workers``.  Crash injection targets this sequential loop's
        journaling windows, so a *crash_plan* forces the sequential
        path (as it does for the thread scheduler).
        """
        if processes > 1 and crash_plan is None:
            from repro.crawler.supervisor import ShardSupervisor

            return ShardSupervisor(self, processes=processes).crawl(
                app_ids, journal=journal
            )
        if workers > 1:
            from repro.crawler.scheduler import CrawlScheduler

            return CrawlScheduler(self, workers=workers).crawl(
                app_ids, journal=journal, crash_plan=crash_plan
            )
        records, pending = self.journal_prologue(app_ids, journal)
        for app_id in pending:
            if crash_plan is not None:
                crash_plan.advance()
                crash_plan.check("before_app")
            record = self.crawl_app(app_id)
            if crash_plan is not None:
                crash_plan.check("after_crawl")
            if journal is not None:
                tear = crash_plan is not None and crash_plan.due("mid_append")
                if tear:
                    crash_plan.fired = True
                journal.append(record, self.snapshot_state(), tear=tear)
                if crash_plan is not None:
                    crash_plan.check("after_append")
            records[app_id] = record
        return records

    def journal_prologue(
        self,
        app_ids: list[str] | set[str],
        journal: "CrawlJournal | None",
    ) -> tuple[dict[str, CrawlRecord], list[str]]:
        """Split *app_ids* into journal-replayed records and pending IDs.

        With a journal this validates the fingerprint, replays already
        durable records, and restores the crawler's continuation state —
        the shared resume prologue of the sequential loop and the
        batch-parallel scheduler.  Pending IDs come back in canonical
        (sorted) crawl order.
        """
        records: dict[str, CrawlRecord] = {}
        pending: list[str] = []
        if journal is None:
            pending = sorted(app_ids)
        else:
            journal.validate_fingerprint(self.checkpoint_fingerprint())
            replayed = journal.records
            for app_id in sorted(app_ids):
                if app_id in replayed:
                    records[app_id] = replayed[app_id]
                else:
                    pending.append(app_id)
            if journal.state is not None:
                self.restore_state(journal.state)
        return records, pending

    # -- checkpoint support -----------------------------------------------

    def snapshot_state(self) -> dict:
        """The crawler's continuation state (JSON-serialisable).

        Everything the next request's behaviour can depend on: the
        transport (simulated clock, fault-plan call indexes, vanished
        apps, installer RNG position) and the per-endpoint circuit
        breakers.  Retry jitter needs no capture — it is derived
        statelessly per ``(endpoint, app, attempt)``.
        """
        return {
            "transport": self._transport.snapshot_state(),
            "breakers": self._executor.snapshot_breakers(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` image, in place."""
        self._transport.restore_state(state["transport"])
        self._executor.restore_breakers(state["breakers"])

    def checkpoint_fingerprint(self) -> dict:
        """What a checkpoint must match before this crawler resumes it.

        Seed, scale, transport kind, fault plan, and retry policy — the
        knobs that change what an identical crawl would observe.
        """
        config = self._world.config
        fingerprint: dict = {
            "master_seed": config.master_seed,
            "scale": config.scale,
            "transport": type(self._transport).__name__,
            "retry_policy": {
                "max_attempts": self._policy.max_attempts,
                "base_delay_s": self._policy.base_delay_s,
                "max_delay_s": self._policy.max_delay_s,
                "per_app_deadline_s": self._policy.per_app_deadline_s,
            },
        }
        plan = getattr(self._transport, "plan", None)
        if plan is not None:
            fingerprint["fault_plan"] = {
                "fault_rate": plan.fault_rate,
                "seed": plan.seed,
            }
            if plan.blackout_windows:
                # Lists, not tuples: the stored fingerprint round-trips
                # through JSON and must compare equal afterwards.
                fingerprint["fault_plan"]["blackout_windows"] = [
                    [start, end] for start, end in plan.blackout_windows
                ]
        return fingerprint

    # -- individual collections ------------------------------------------

    def _crawl_summaries(self, record: CrawlRecord, deadline_at: float) -> None:
        schedule = self._world.schedule
        outcome = CrawlOutcome("summary")
        record.outcomes["summary"] = outcome
        first = schedule.summary_crawl_day
        last = first + schedule.crawl_months * 30
        for day in range(first, last, 7):
            summary = self._executor.call(
                "summary",
                record.app_id,
                lambda day=day: self._transport.summary(record.app_id, day=day),
                outcome,
                deadline_at=deadline_at,
            )
            if summary is None:
                continue
            record.summary_ok = True
            record.name = summary["name"]
            record.description = summary["description"]
            record.company = summary["company"]
            record.category = summary["category"]
            record.mau_observations.append(int(summary["monthly_active_users"]))

    def _crawl_profile_feed(self, record: CrawlRecord, deadline_at: float) -> None:
        outcome = CrawlOutcome("feed")
        record.outcomes["feed"] = outcome
        feed = self._executor.call(
            "feed",
            record.app_id,
            lambda: self._transport.profile_feed(
                record.app_id, day=self._world.schedule.profilefeed_crawl_day
            ),
            outcome,
            deadline_at=deadline_at,
        )
        if feed is None:
            return
        record.feed_ok = True
        record.profile_posts = feed

    def _crawl_install_url(self, record: CrawlRecord, deadline_at: float) -> None:
        day = self._world.schedule.inst_crawl_day
        outcome = CrawlOutcome("install")
        record.outcomes["install"] = outcome
        app = self._world.registry.maybe_get(record.app_id)
        if app is None or not app.install_flow_crawlable:
            return  # human-only redirect flow: the crawler gets stuck
        prompt = self._executor.call(
            "install",
            record.app_id,
            lambda: self._transport.visit_install_url(record.app_id, day=day),
            outcome,
            deadline_at=deadline_at,
        )
        if prompt is None:
            return
        record.inst_ok = True
        record.permissions = prompt.permissions
        record.observed_client_id = prompt.client_id
        record.redirect_uri = prompt.redirect_uri

    # -- summaries over many crawls ---------------------------------------

    def outcome_tallies(
        self, records: dict[str, CrawlRecord]
    ) -> dict[str, dict[str, int]]:
        return outcome_tallies(records)

    def recovery_rate(self, records: dict[str, CrawlRecord]) -> float | None:
        return recovery_rate(records)


def outcome_tallies(
    records: dict[str, CrawlRecord]
) -> dict[str, dict[str, int]]:
    """``{collection: {status: count}}`` over crawled *records*."""
    tallies: dict[str, dict[str, int]] = {c: {} for c in COLLECTIONS}
    for record in records.values():
        for collection in COLLECTIONS:
            outcome = record.outcomes.get(collection)
            status = outcome.status if outcome else OK
            per = tallies[collection]
            per[status] = per.get(status, 0) + 1
    return tallies


def recovery_rate(records: dict[str, CrawlRecord]) -> float | None:
    """Of the collections that saw transient faults, how many recovered?

    Recovery means retries still reached a definitive result — data
    (OK) or an authoritative removal (PERMANENT); only an exhausted
    budget (GAVE_UP) is a loss.  ``None`` when no collection was
    transiently faulted (nothing to recover — e.g. a fault-free crawl).
    """
    recovered = faulted = 0
    for record in records.values():
        for outcome in record.outcomes.values():
            if outcome.transiently_failed:
                faulted += 1
                if outcome.recovered:
                    recovered += 1
    if faulted == 0:
        return None
    return recovered / faulted


def make_crawler(world: "SimulatedWorld") -> AppCrawler:
    """Build the crawler the world's :class:`ScaleConfig` asks for.

    ``fault_rate == 0`` wires the fault-free :class:`DirectTransport`
    (the strict no-op path); a positive rate wires a
    :class:`FaultyTransport` whose plan is seeded from the master seed,
    so the whole faulted study stays a pure function of the seed.
    """
    config = world.config
    policy = RetryPolicy(max_attempts=config.retry_budget)
    blackouts = getattr(config, "blackouts", 0)
    if config.fault_rate <= 0.0 and not blackouts:
        return AppCrawler(world, retry_policy=policy)
    plan = FaultPlan(
        fault_rate=config.fault_rate,
        seed=derive_seed(config.master_seed, "fault-plan"),
        blackout_windows=draw_blackout_windows(
            derive_seed(config.master_seed, "blackout-plan"), blackouts
        ),
    )
    transport = FaultyTransport(world.graph_api, world.installer, plan)
    return AppCrawler(world, transport=transport, retry_policy=policy)
