"""Tiered recrawl scheduling for the continuous monitor.

FB-Monitor-style tiered recheck schedules: every monitored app sits on
a rung of a :class:`TierLadder`, and its rung decides how often the
monitor re-crawls it.  The tier is a pure function of the app's latest
suspicion score, its age (epochs since last observation), and its
forensic activity — so the schedule is deterministic and replayable
from journaled state alone.

The *policy* deciding which due apps an epoch actually crawls is
pluggable (:class:`RecrawlPolicy`), mirroring ReckDetector's
``input_policy`` hook: :class:`TieredPolicy` crawls exactly the due
set, :class:`ActiveLearningPolicy` additionally spends a small budget
on the most *uncertain* apps (suspicion nearest the decision boundary)
even when their tier says wait — uncertainty sampling, the classic
active-learning exploration move.

Scheduler state round-trips losslessly through ``snapshot()`` /
``restore()`` so the monitor journal can carry it alongside the crawler
state, preserving the kill-anywhere resume contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

__all__ = [
    "TIERS",
    "TierLadder",
    "ScheduleEntry",
    "RecrawlPolicy",
    "TieredPolicy",
    "ActiveLearningPolicy",
    "RecrawlScheduler",
]

#: rungs, hottest first; the index is the priority order within an epoch
TIERS = ("hot", "warm", "cold", "dormant")

#: recrawl every N epochs, per rung
DEFAULT_INTERVALS = {"hot": 1, "warm": 2, "cold": 4, "dormant": 8}


@dataclass(frozen=True)
class TierLadder:
    """tier = f(suspicion, age, forensic activity), deterministically.

    Suspicion uses the watchdog's calibrated [0, 100] risk scale
    (50 = decision boundary).  Any forensic activity forces ``hot`` —
    an app that just got deleted, renamed, or re-permissioned is
    exactly the app the paper's forensics chapter wants watched.  Age
    promotes one rung once an app has gone unobserved for twice its
    rung's interval, so nothing starves forever on ``dormant``.
    """

    hot_suspicion: float = 75.0
    warm_suspicion: float = 50.0
    cold_suspicion: float = 25.0

    def interval(self, tier: str) -> int:
        return DEFAULT_INTERVALS[tier]

    def classify(
        self, suspicion: float, age_epochs: int, forensic_hits: int
    ) -> str:
        if forensic_hits > 0 or suspicion >= self.hot_suspicion:
            tier = "hot"
        elif suspicion >= self.warm_suspicion:
            tier = "warm"
        elif suspicion >= self.cold_suspicion:
            tier = "cold"
        else:
            tier = "dormant"
        if tier != "hot" and age_epochs >= 2 * self.interval(tier):
            tier = TIERS[TIERS.index(tier) - 1]
        return tier


@dataclass
class ScheduleEntry:
    """One monitored app's place on the ladder."""

    app_id: str
    tier: str = "warm"
    #: epoch of the last completed observation (-1 = never observed)
    last_epoch: int = -1
    suspicion: float = 50.0
    forensic_hits: int = 0

    def jsonable(self) -> dict:
        return {
            "app_id": self.app_id,
            "tier": self.tier,
            "last_epoch": self.last_epoch,
            "suspicion": self.suspicion,
            "forensic_hits": self.forensic_hits,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "ScheduleEntry":
        return cls(
            app_id=str(data["app_id"]),
            tier=str(data["tier"]),
            last_epoch=int(data["last_epoch"]),
            suspicion=float(data["suspicion"]),
            forensic_hits=int(data["forensic_hits"]),
        )

    def due(self, epoch: int, ladder: TierLadder) -> bool:
        if self.last_epoch < 0:
            return True  # never observed: always due
        return epoch - self.last_epoch >= ladder.interval(self.tier)


class RecrawlPolicy(Protocol):
    """The pluggable which-apps-this-epoch hook (``input_policy`` shape)."""

    name: str

    def plan(
        self,
        entries: dict[str, ScheduleEntry],
        epoch: int,
        ladder: TierLadder,
    ) -> list[str]:
        """App IDs to crawl this epoch, in dispatch order."""
        ...  # pragma: no cover - protocol


def _priority_order(entries: list[ScheduleEntry]) -> list[str]:
    """Hot tiers first, canonical app-ID order within a tier."""
    return [
        e.app_id
        for e in sorted(
            entries, key=lambda e: (TIERS.index(e.tier), e.app_id)
        )
    ]


@dataclass(frozen=True)
class TieredPolicy:
    """Crawl exactly the due set, hot tiers first."""

    name: str = "tiered"

    def plan(
        self,
        entries: dict[str, ScheduleEntry],
        epoch: int,
        ladder: TierLadder,
    ) -> list[str]:
        due = [e for e in entries.values() if e.due(epoch, ladder)]
        return _priority_order(due)


@dataclass(frozen=True)
class ActiveLearningPolicy:
    """The due set plus a budget of boundary-uncertain extras.

    The extras are the not-yet-due apps whose suspicion sits closest to
    the decision boundary (score 50): the apps a label would teach the
    classifier the most about.  Never-observed apps are excluded from
    the uncertainty pool — they are already in the due set.
    """

    exploration_budget: int = 4
    name: str = "active-learning"

    def plan(
        self,
        entries: dict[str, ScheduleEntry],
        epoch: int,
        ladder: TierLadder,
    ) -> list[str]:
        due = [e for e in entries.values() if e.due(epoch, ladder)]
        planned = _priority_order(due)
        if self.exploration_budget <= 0:
            return planned
        chosen = set(planned)
        pool = [
            e for e in entries.values()
            if e.app_id not in chosen and e.last_epoch >= 0
        ]
        pool.sort(key=lambda e: (abs(e.suspicion - 50.0), e.app_id))
        return planned + [
            e.app_id for e in pool[: self.exploration_budget]
        ]


@dataclass
class RecrawlScheduler:
    """The monitor's schedule: ladder + entries + backpressure bookkeeping.

    Everything mutable round-trips through :meth:`snapshot` /
    :meth:`restore`; ``plan(epoch)`` recomputed from restored state is
    self-healing, because an observed app's ``last_epoch`` equals the
    current epoch and it simply stops being due.
    """

    ladder: TierLadder = field(default_factory=TierLadder)
    policy: RecrawlPolicy = field(default_factory=TieredPolicy)
    entries: dict[str, ScheduleEntry] = field(default_factory=dict)
    #: blackout-backpressure bookkeeping (counts pauses, not retries)
    pauses: int = 0
    paused_until_s: float = 0.0

    def ensure(self, app_ids) -> None:
        """Register any *app_ids* not yet on the ladder."""
        for app_id in sorted(app_ids):
            if app_id not in self.entries:
                self.entries[app_id] = ScheduleEntry(app_id=app_id)

    def plan(self, epoch: int) -> list[str]:
        """This epoch's dispatch list under the configured policy."""
        return self.policy.plan(self.entries, epoch, self.ladder)

    def observe(
        self,
        app_id: str,
        epoch: int,
        suspicion: float,
        forensic_hits: int = 0,
    ) -> ScheduleEntry:
        """Fold one completed observation into the ladder."""
        entry = self.entries.get(app_id)
        if entry is None:
            entry = ScheduleEntry(app_id=app_id)
            self.entries[app_id] = entry
        entry.last_epoch = epoch
        entry.suspicion = float(suspicion)
        entry.forensic_hits += int(forensic_hits)
        entry.tier = self.ladder.classify(
            entry.suspicion, age_epochs=0, forensic_hits=forensic_hits
        )
        return entry

    def record_pause(self, resume_at_s: float) -> None:
        """Account one scheduler-level blackout pause."""
        self.pauses += 1
        self.paused_until_s = max(self.paused_until_s, float(resume_at_s))

    def tier_census(self) -> dict[str, int]:
        census = {tier: 0 for tier in TIERS}
        for entry in self.entries.values():
            census[entry.tier] += 1
        return census

    # -- checkpoint support -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serialisable state (entries in canonical app-ID order)."""
        return {
            "policy": getattr(self.policy, "name", "tiered"),
            "pauses": self.pauses,
            "paused_until_s": self.paused_until_s,
            "entries": [
                self.entries[app_id].jsonable()
                for app_id in sorted(self.entries)
            ],
        }

    def restore(self, state: dict) -> None:
        """Restore a :meth:`snapshot` image in place (policy stays)."""
        self.pauses = int(state.get("pauses", 0))
        self.paused_until_s = float(state.get("paused_until_s", 0.0))
        self.entries = {
            str(e["app_id"]): ScheduleEntry.from_jsonable(e)
            for e in state.get("entries", [])
        }
