"""A Social-Bakers-style app vetting directory (Sec 2.3).

Social Bakers monitors the "social marketing success" of apps.  The
paper uses it to select benign apps for D-Sample: an app counts as
vetted when the directory lists it, and 90% of the vetted apps carry a
community rating of at least 3/5.  Hackers do not submit their throwaway
apps to marketing directories, so malicious apps are absent.
"""

from __future__ import annotations

import numpy as np

from repro.platform.apps import FacebookApp

__all__ = ["SocialBakers"]


class SocialBakers:
    """Directory of vetted apps with community ratings."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._ratings: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._ratings)

    def vet_population(
        self, apps: list[FacebookApp], coverage: float = 0.917
    ) -> None:
        """List a *coverage* fraction of *apps* with drawn ratings.

        Ratings are drawn so that ~90% land at 3/5 or above, matching
        the paper's description of the vetted set.
        """
        for app in apps:
            if self._rng.random() < coverage:
                self.list_app(app.app_id, self._draw_rating())

    def _draw_rating(self) -> float:
        # Beta(5, 2) scaled to [1, 5]: ~90% of mass >= 3.
        return float(1.0 + 4.0 * self._rng.beta(5.0, 2.0))

    def list_app(self, app_id: str, rating: float) -> None:
        if not 1.0 <= rating <= 5.0:
            raise ValueError(f"rating out of range: {rating}")
        self._ratings[app_id] = rating

    def is_vetted(self, app_id: str) -> bool:
        return app_id in self._ratings

    def rating(self, app_id: str) -> float | None:
        return self._ratings.get(app_id)

    def vetted_app_ids(self) -> set[str]:
        return set(self._ratings)
