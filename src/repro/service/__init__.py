"""The online FRAppE verdict service: overload-hardened scoring.

The paper's end product is an on-demand oracle — "given an app ID, is
it malicious?" (Sec 5).  This package serves that question against the
simulated platform with the defences a production watchdog needs:
priority-aware admission control, per-request deadline budgets,
per-endpoint bulkheads over the crawler's circuit breakers, a
stale-while-revalidate verdict cache, and a degradation ladder that
always returns a typed answer.  See :mod:`repro.service.service` for
the architecture notes and DESIGN.md's "Serving and overload model".
"""

from repro.service.admission import AdmissionQueue
from repro.service.bulkhead import Bulkhead
from repro.service.cache import CacheEntry, VerdictCache
from repro.service.loadgen import (
    LoadProfile,
    estimate_capacity_rps,
    generate_requests,
)
from repro.service.rollout import (
    CanaryStats,
    ModelRegistry,
    ModelVersion,
    RolloutConfig,
    RolloutController,
    RolloutIncident,
)
from repro.service.service import ServiceReport, VerdictService, make_service
from repro.service.types import (
    BULK,
    DEADLINE,
    INTERACTIVE,
    OVERLOADED,
    REFRESH,
    RUNG_ADVISORY,
    RUNG_CACHED,
    RUNG_FULL,
    RUNG_LITE,
    RUNG_NONE,
    RUNG_STALE,
    RUNGS,
    SERVED,
    ScoreRequest,
    VerdictResponse,
)

__all__ = [
    "AdmissionQueue",
    "Bulkhead",
    "CacheEntry",
    "VerdictCache",
    "LoadProfile",
    "estimate_capacity_rps",
    "generate_requests",
    "ModelRegistry",
    "ModelVersion",
    "RolloutConfig",
    "RolloutController",
    "RolloutIncident",
    "CanaryStats",
    "ServiceReport",
    "VerdictService",
    "make_service",
    "ScoreRequest",
    "VerdictResponse",
    "INTERACTIVE",
    "BULK",
    "REFRESH",
    "SERVED",
    "OVERLOADED",
    "DEADLINE",
    "RUNG_FULL",
    "RUNG_LITE",
    "RUNG_CACHED",
    "RUNG_STALE",
    "RUNG_ADVISORY",
    "RUNG_NONE",
    "RUNGS",
]
