"""The verdict cache: TTL, stale-while-revalidate, negative entries.

A verdict is expensive (a full resilient crawl plus an SVM evaluation)
and apps change slowly, so the service caches verdicts on the simulated
clock:

* within ``ttl_s`` of being stored an entry is **fresh** — served
  directly, no crawl;
* between ``ttl_s`` and ``stale_ttl_s`` it is **stale** — still served
  immediately (an old verdict beats a timeout), while the service
  schedules a background *revalidation* whose crawl cost is debited to
  the shared simulated clock like any other work;
* past ``stale_ttl_s`` it is **expired** and ignored, except as the
  last resort of the degradation ladder (an expired verdict still beats
  a summary-only advisory built from nothing).

**Negative caching**: an authoritative ``PERMANENT`` removal cannot
un-happen, so "this app is gone (and that absence is itself a malice
signal)" is cached under the longer ``negative_ttl_s`` instead of being
re-crawled on every request.

No wall clock anywhere: ``now_s`` always comes from the caller, which
reads the :class:`~repro.platform.transport.TransportStats` clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.observer import get_observer

__all__ = ["CacheEntry", "VerdictCache", "FRESH", "STALE", "EXPIRED", "MISS"]

FRESH = "fresh"
STALE = "stale"
EXPIRED = "expired"
MISS = "miss"


@dataclass
class CacheEntry:
    """One cached verdict and the evidence context it was computed in."""

    app_id: str
    verdict: bool | None
    risk_score: float
    confidence: str
    rung: str
    advisories: list[str] = field(default_factory=list)
    stored_s: float = 0.0
    #: authoritative PERMANENT removal (negative entry, longer TTL)
    negative: bool = False
    #: model version that produced the verdict (0 = the static model);
    #: part of the lookup key when the service runs under a rollout
    model_version: int = 0

    def age_s(self, now_s: float) -> float:
        return max(0.0, now_s - self.stored_s)


class VerdictCache:
    """TTL + stale-while-revalidate cache over app verdicts."""

    def __init__(
        self,
        ttl_s: float = 3600.0,
        stale_ttl_s: float = 6 * 3600.0,
        negative_ttl_s: float = 24 * 3600.0,
    ) -> None:
        if stale_ttl_s < ttl_s:
            raise ValueError(
                f"stale_ttl_s must be >= ttl_s ({stale_ttl_s} < {ttl_s})"
            )
        self.ttl_s = ttl_s
        self.stale_ttl_s = stale_ttl_s
        self.negative_ttl_s = negative_ttl_s
        self._entries: dict[str, CacheEntry] = {}
        #: apps with a background revalidation already scheduled
        self._revalidating: set[str] = set()
        self.hits_fresh = 0
        self.hits_stale = 0
        self.misses = 0
        #: entries dropped because they were scored by a retired model
        self.version_evictions = 0
        #: entries dropped because the monitor observed a forensic event
        self.forensic_evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, app_id: str) -> bool:
        return app_id in self._entries

    # -- lookup ------------------------------------------------------------

    def state_of(self, entry: CacheEntry, now_s: float) -> str:
        """FRESH / STALE / EXPIRED for *entry* at *now_s*."""
        age = entry.age_s(now_s)
        ttl = self.negative_ttl_s if entry.negative else self.ttl_s
        if age <= ttl:
            return FRESH
        # Negative entries skip the stale window: a removal does not
        # need revalidation until its (long) TTL runs out entirely.
        if not entry.negative and age <= self.stale_ttl_s:
            return STALE
        return EXPIRED

    def lookup(
        self,
        app_id: str,
        now_s: float,
        model_version: int | None = None,
    ) -> tuple[str, CacheEntry | None]:
        """(state, entry) for *app_id*; counts the hit/miss.

        When *model_version* is given, an entry produced by any other
        model version is a miss *and* is evicted on the spot: after a
        promotion or rollback the next request re-scores under the
        current champion rather than serving a stale-model verdict.
        """
        entry = self._entries.get(app_id)
        if entry is not None and (
            model_version is not None and entry.model_version != model_version
        ):
            self.evict(app_id)
            self.version_evictions += 1
            entry = None
        if entry is None:
            self.misses += 1
            return MISS, None
        state = self.state_of(entry, now_s)
        if state == FRESH:
            self.hits_fresh += 1
            return FRESH, entry
        if state == STALE:
            self.hits_stale += 1
            return STALE, entry
        self.misses += 1
        return EXPIRED, entry

    def last_resort(self, app_id: str) -> CacheEntry | None:
        """Any entry at all, however old — the ladder's cached rung.

        Used only when a live crawl could not support even FRAppE Lite:
        an expired verdict computed from real evidence still beats
        advising from nothing.  Does not count as a hit.
        """
        return self._entries.get(app_id)

    # -- mutation ----------------------------------------------------------

    def store(self, entry: CacheEntry, now_s: float) -> None:
        entry.stored_s = now_s
        self._entries[entry.app_id] = entry
        self._revalidating.discard(entry.app_id)

    def evict(self, app_id: str) -> None:
        self._entries.pop(app_id, None)
        self._revalidating.discard(app_id)

    def invalidate_forensic(
        self, app_id: str, reason: str, now_s: float = 0.0
    ) -> bool:
        """Evict *app_id* because the monitor observed a forensic event.

        A forensic event obsoletes whatever is cached for the app —
        **whichever polarity the entry has**.  A detected PERMANENT
        deletion in particular must drop a *positive* entry (the verdict
        was computed against an app that no longer exists) *and* a
        *negative* entry (it was stored before the deletion, under an
        unrelated reason, and its long TTL would otherwise pin the
        pre-event state for up to a day).  Any pending revalidation is
        abandoned too — refreshing a verdict the event just obsoleted
        would only re-cache stale evidence.

        The eviction reason is stamped on the trace so an operator can
        tell a forensic eviction from a TTL expiry or a model-version
        flush.  Returns True iff an entry was actually dropped.
        """
        entry = self._entries.pop(app_id, None)
        self._revalidating.discard(app_id)
        if entry is None:
            return False
        self.forensic_evictions += 1
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "cache.forensic_evict",
                t=now_s,
                category="service",
                app_id=app_id,
                reason=reason,
                negative=entry.negative,
            )
            obs.count("cache_forensic_evictions_total", reason=reason)
        return True

    def retain_version(self, model_version: int) -> int:
        """Flush every entry not scored by *model_version*.

        Called on promotion and on rollback.  Negative entries are
        flushed too: a PERMANENT removal is model-independent evidence,
        but its cached *verdict* was still rendered by the old model, and
        a rollback must never serve anything the bad model touched.
        Returns the number of entries flushed.
        """
        stale = [
            app_id
            for app_id, entry in self._entries.items()
            if entry.model_version != model_version
        ]
        for app_id in stale:
            self.evict(app_id)
        self.version_evictions += len(stale)
        return len(stale)

    # -- revalidation bookkeeping -----------------------------------------

    def begin_revalidation(self, app_id: str) -> bool:
        """Mark a background refresh as scheduled; False if already one."""
        if app_id in self._revalidating:
            return False
        self._revalidating.add(app_id)
        return True

    def abandon_revalidation(self, app_id: str) -> None:
        """The scheduled refresh was shed or expired; allow another."""
        self._revalidating.discard(app_id)

    # -- report helpers ----------------------------------------------------

    def hit_rate(self) -> float:
        total = self.hits_fresh + self.hits_stale + self.misses
        if total == 0:
            return 0.0
        return (self.hits_fresh + self.hits_stale) / total

    def snapshot(self) -> dict:
        """A uniform, JSON-serialisable image of the cache's counters.

        Same shape contract as ``TransportStats.snapshot`` and
        ``AdmissionQueue.snapshot``, so the metrics registry can fold it
        into gauges (``MetricsRegistry.scrape``) without an adapter.
        """
        return {
            "entries": len(self._entries),
            "revalidating": len(self._revalidating),
            "hits_fresh": self.hits_fresh,
            "hits_stale": self.hits_stale,
            "misses": self.misses,
            "version_evictions": self.version_evictions,
            "forensic_evictions": self.forensic_evictions,
            "hit_rate": self.hit_rate(),
        }
