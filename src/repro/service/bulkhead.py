"""Bulkheads: per-endpoint-class compartments of a request's deadline.

A verdict crawl touches three endpoint classes — summary, feed,
install — and without compartmentalisation one slow class (a
rate-limit storm on the summary endpoint, say) eats the *whole*
per-request deadline and every downstream collection starves.  The
bulkhead caps what each class may consume: a fraction of the deadline
budget that remains when the class starts.  Fractions may sum past 1.0
— a class that finishes early returns its unused budget to the pool —
but no single class can take the request past its overall deadline.

The second half of the bulkhead is the per-endpoint-class
:class:`~repro.crawler.resilience.CircuitBreaker` (shared with the
:class:`~repro.crawler.resilience.ResilientExecutor`): a class that is
failing for *everyone* is cut off at the breaker before it costs each
individual request its compartment budget.
"""

from __future__ import annotations

from repro.crawler.resilience import CircuitBreaker, ResilientExecutor

__all__ = ["Bulkhead"]


class Bulkhead:
    """Deadline compartments plus shared breakers per endpoint class."""

    def __init__(
        self,
        fractions: dict[str, float],
        executor: ResilientExecutor,
    ) -> None:
        for endpoint, fraction in fractions.items():
            if not 0.0 < fraction <= 1.0:
                raise ValueError(
                    f"bulkhead fraction for {endpoint!r} must be in "
                    f"(0, 1], got {fraction}"
                )
        self._fractions = dict(fractions)
        self._executor = executor

    def fraction(self, endpoint: str) -> float:
        return self._fractions.get(endpoint, 1.0)

    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The shared per-endpoint breaker (created on first use)."""
        return self._executor.breaker(endpoint)

    def endpoint_deadline(
        self, endpoint: str, now_s: float, deadline_at: float
    ) -> float:
        """The absolute deadline *endpoint* work may run to.

        ``now_s`` is when the class starts; it may spend at most its
        fraction of the budget remaining at that instant, and never
        more than the request's overall deadline.
        """
        remaining = max(0.0, deadline_at - now_s)
        return min(deadline_at, now_s + remaining * self.fraction(endpoint))

    def open_endpoints(self, now_s: float) -> tuple[str, ...]:
        """Endpoint classes currently refusing requests (breaker open)."""
        refused = []
        for endpoint, breaker in sorted(self._executor.breakers.items()):
            if breaker.state == CircuitBreaker.OPEN and (
                breaker.cooldown_remaining(now_s) > 0.0
            ):
                refused.append(endpoint)
        return tuple(refused)
