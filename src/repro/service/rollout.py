"""Champion–challenger model rollout with a health-gated canary.

The drift loop (``core/lifecycle``) retrains continuously, but a freshly
trained model must *earn* production traffic.  This module is the
gatekeeper:

* a :class:`ModelRegistry` keeps every model version ever registered
  (the payload is opaque — any object with the classifier interface),
  so rollback is always a pointer move, never a retrain;
* :meth:`RolloutController.evaluate_challenger` is the **promotion
  gate**: the challenger must beat the champion on a held-out window by
  at least ``min_accuracy_gain`` before it is allowed near traffic;
* a promoted challenger first runs as a **canary**: a deterministic
  fraction of requests (hash-split on the app id, no wall clock, no
  RNG shared with anything else) is scored by the canary while the
  champion shadow-scores the same evidence.  Excess disagreement with
  the champion, or an excess positive rate, trips the health gate;
* a tripped gate triggers **automatic rollback**: the champion is
  restored, the incident is recorded on the trace (`rollout.rollback`
  event) and in :attr:`RolloutController.incidents`, and the caller is
  told to flush every cache entry the bad model touched.

Determinism contract: given the same registered models and the same
request stream, every assignment, promotion, and rollback decision is
bit-identical across runs — assignment uses :func:`derive_seed` on the
app id, and all gates compare counters accumulated from the stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.obs import get_observer
from repro.rng import derive_seed

__all__ = [
    "ModelVersion",
    "ModelRegistry",
    "RolloutConfig",
    "RolloutIncident",
    "CanaryStats",
    "RolloutController",
]


@dataclass
class ModelVersion:
    """One immutable registered model and its provenance."""

    version: int
    model: Any
    #: simulated day the model's training window ended
    trained_day: int = 0
    #: held-out accuracy measured at registration time
    holdout_accuracy: float = float("nan")
    note: str = ""


class ModelRegistry:
    """Append-only store of model versions.

    Versions start at 1; version 0 is reserved for "the static model",
    i.e. a service running without any rollout controller attached.
    """

    def __init__(self) -> None:
        self._versions: dict[int, ModelVersion] = {}
        self._next = 1

    def __len__(self) -> int:
        return len(self._versions)

    def __contains__(self, version: int) -> bool:
        return version in self._versions

    def register(
        self,
        model: Any,
        trained_day: int = 0,
        holdout_accuracy: float = float("nan"),
        note: str = "",
    ) -> ModelVersion:
        entry = ModelVersion(
            version=self._next,
            model=model,
            trained_day=trained_day,
            holdout_accuracy=holdout_accuracy,
            note=note,
        )
        self._versions[entry.version] = entry
        self._next += 1
        return entry

    def get(self, version: int) -> ModelVersion:
        try:
            return self._versions[version]
        except KeyError:
            raise KeyError(f"unknown model version {version}") from None

    def versions(self) -> list[int]:
        return sorted(self._versions)


@dataclass(frozen=True)
class RolloutConfig:
    """Gates and knobs of the champion–challenger state machine."""

    #: fraction of traffic the canary scores while on probation
    canary_fraction: float = 0.2
    #: requests the canary must survive before it becomes champion
    canary_requests: int = 50
    #: disagreement rate with the champion's shadow score that trips
    #: the health gate (measured over the probation window so far)
    max_disagreement: float = 0.25
    #: canary positive (malicious) rate in excess of the champion's
    #: shadow rate that is presumed pathological even below the
    #: disagreement gate — a trigger-happy canary on a benign-heavy
    #: stream must not survive probation on agreement alone
    max_positive_excess: float = 0.5
    #: minimum canary verdicts before the health gate can trip (one
    #: early disagreement must not kill an otherwise healthy canary)
    min_canary_sample: int = 10
    #: held-out accuracy edge a challenger needs over the champion
    min_accuracy_gain: float = 0.0
    #: salt for the deterministic traffic split
    assignment_seed: int = 2012

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if self.canary_requests < 1:
            raise ValueError("canary_requests must be >= 1")
        if self.min_canary_sample < 1:
            raise ValueError("min_canary_sample must be >= 1")


@dataclass
class RolloutIncident:
    """One automatic rollback, kept for the post-mortem."""

    t: float
    canary_version: int
    restored_version: int
    reason: str
    disagreements: int
    canary_scored: int

    def jsonable(self) -> dict:
        """The incident as analytics-store / JSONL-export material."""
        return {
            "t": float(self.t),
            "canary_version": int(self.canary_version),
            "restored_version": int(self.restored_version),
            "reason": str(self.reason),
            "disagreements": int(self.disagreements),
            "canary_scored": int(self.canary_scored),
        }


@dataclass
class CanaryStats:
    """Probation counters for the canary now on trial."""

    version: int
    started_t: float = 0.0
    scored: int = 0
    positives: int = 0
    #: the champion's shadow positives on the same requests
    champion_positives: int = 0
    disagreements: int = 0

    def disagreement_rate(self) -> float:
        return self.disagreements / self.scored if self.scored else 0.0

    def positive_rate(self) -> float:
        return self.positives / self.scored if self.scored else 0.0

    def positive_excess(self) -> float:
        """Canary positive rate minus the champion shadow's."""
        if not self.scored:
            return 0.0
        return (self.positives - self.champion_positives) / self.scored


class RolloutController:
    """The champion–challenger state machine.

    States: *steady* (champion only) → *canary* (champion + canary
    splitting traffic) → back to *steady* by **promotion** (canary
    survived probation) or **rollback** (health gate tripped).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        champion_version: int,
        config: RolloutConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config or RolloutConfig()
        self.champion = registry.get(champion_version)
        self.canary: CanaryStats | None = None
        self.incidents: list[RolloutIncident] = []
        self.promotions: list[tuple[float, int]] = []
        #: set by promote/rollback; the service consumes it to flush
        #: stale-model cache entries exactly once per transition
        self._flush_pending = False

    # -- promotion gate ----------------------------------------------------

    def evaluate_challenger(
        self,
        challenger_version: int,
        holdout_x: np.ndarray,
        holdout_y: np.ndarray,
    ) -> bool:
        """Promotion gate: challenger must beat the champion held out.

        Returns True (and starts the canary probation) only when the
        challenger's held-out accuracy exceeds the champion's by at
        least ``min_accuracy_gain``.  A rejected challenger stays in the
        registry but never touches traffic.
        """
        challenger = self.registry.get(challenger_version)
        champion_acc = _accuracy(self.champion.model, holdout_x, holdout_y)
        challenger_acc = _accuracy(challenger.model, holdout_x, holdout_y)
        passed = (
            challenger_acc >= champion_acc + self.config.min_accuracy_gain
        )
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "rollout.gate",
                category="rollout",
                champion=self.champion.version,
                challenger=challenger_version,
                champion_accuracy=round(champion_acc, 6),
                challenger_accuracy=round(challenger_acc, 6),
                passed=passed,
            )
        return passed

    def start_canary(self, version: int, t: float = 0.0) -> None:
        """Put *version* on probation for the canary traffic slice."""
        if self.canary is not None:
            raise RuntimeError(
                f"canary v{self.canary.version} already on probation"
            )
        self.registry.get(version)  # validate
        self.canary = CanaryStats(version=version, started_t=t)

    # -- traffic split -----------------------------------------------------

    def assign(self, app_id: str) -> int:
        """Model version that scores *app_id*'s request right now.

        Deterministic hash split: the same app id lands on the same
        side of the canary fraction for the whole probation, across
        runs and processes.  No RNG stream is consumed.
        """
        if self.canary is None:
            return self.champion.version
        bucket = derive_seed(
            self.config.assignment_seed, f"rollout:{app_id}"
        ) % 10_000
        if bucket < self.config.canary_fraction * 10_000:
            return self.canary.version
        return self.champion.version

    def model_for(self, version: int) -> Any:
        return self.registry.get(version).model

    # -- canary health gate ------------------------------------------------

    def record_canary(
        self,
        verdict: bool | None,
        champion_verdict: bool | None,
        t: float,
    ) -> str:
        """Account one canary-scored request; advance the state machine.

        *champion_verdict* is the champion's shadow score on the same
        evidence.  Returns ``"canary"`` (probation continues),
        ``"promoted"``, or ``"rolled_back"``.
        """
        stats = self.canary
        if stats is None:
            raise RuntimeError("no canary on probation")
        stats.scored += 1
        if verdict:
            stats.positives += 1
        if champion_verdict:
            stats.champion_positives += 1
        if verdict != champion_verdict:
            stats.disagreements += 1

        cfg = self.config
        if stats.scored >= cfg.min_canary_sample and (
            stats.disagreement_rate() >= cfg.max_disagreement
            or stats.positive_excess() >= cfg.max_positive_excess
        ):
            self._rollback(t)
            return "rolled_back"
        if stats.scored >= cfg.canary_requests:
            self._promote(t)
            return "promoted"
        return "canary"

    def _promote(self, t: float) -> None:
        stats = self.canary
        assert stats is not None
        self.champion = self.registry.get(stats.version)
        self.canary = None
        self.promotions.append((t, stats.version))
        self._flush_pending = True
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "rollout.promote",
                t=t,
                category="rollout",
                version=stats.version,
                scored=stats.scored,
                disagreement_rate=round(stats.disagreement_rate(), 6),
            )
            obs.count("rollout_promotions_total")

    def _rollback(self, t: float) -> None:
        stats = self.canary
        assert stats is not None
        if stats.disagreement_rate() >= self.config.max_disagreement:
            reason = (
                f"disagreement {stats.disagreement_rate():.2f} >= "
                f"{self.config.max_disagreement:.2f}"
            )
        else:
            reason = (
                f"positive excess {stats.positive_excess():.2f} >= "
                f"{self.config.max_positive_excess:.2f}"
            )
        incident = RolloutIncident(
            t=t,
            canary_version=stats.version,
            restored_version=self.champion.version,
            reason=reason,
            disagreements=stats.disagreements,
            canary_scored=stats.scored,
        )
        self.incidents.append(incident)
        self.canary = None
        self._flush_pending = True
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "rollout.rollback",
                t=t,
                category="rollout",
                canary=incident.canary_version,
                restored=incident.restored_version,
                reason=incident.reason,
                scored=incident.canary_scored,
            )
            obs.count("rollout_rollbacks_total")

    # -- cache-coherence handshake ----------------------------------------

    def consume_flush(self) -> bool:
        """True exactly once after each promotion/rollback transition."""
        pending = self._flush_pending
        self._flush_pending = False
        return pending

    def snapshot(self) -> dict:
        return {
            "champion": self.champion.version,
            "canary": self.canary.version if self.canary else 0,
            "registered": len(self.registry),
            "promotions": len(self.promotions),
            "rollbacks": len(self.incidents),
        }


def _accuracy(model: Any, x: np.ndarray, y: np.ndarray) -> float:
    """Held-out accuracy of *model* (anything with ``predict``)."""
    if len(y) == 0:
        return 0.0
    predicted = np.asarray(model.predict(x))
    return float(np.mean(predicted == np.asarray(y)))
