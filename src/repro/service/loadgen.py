"""A deterministic open-loop load generator for the verdict service.

*Open-loop* means arrivals do not wait for responses: request ``i+1``
arrives a seeded-exponential interarrival after request ``i`` whether or
not the service has kept up.  That is the property that makes overload
*testable* — a closed-loop generator self-throttles and can never drive
the service past saturation, while an open-loop one at twice capacity
guarantees the queue fills and the shedding policy must act.

Everything is drawn from one RNG derived from the seed, so a workload
is a value: the same seed and profile produce the same arrival
instants, app choices, and priorities, and therefore (the service being
clock-deterministic too) the same responses, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import derive_seed
from repro.service.types import BULK, INTERACTIVE, ScoreRequest

__all__ = ["LoadProfile", "generate_requests", "estimate_capacity_rps"]


@dataclass(frozen=True)
class LoadProfile:
    """The shape of an offered load."""

    n_requests: int = 100
    #: mean arrival rate, requests per simulated second
    rate_rps: float = 0.2
    #: fraction of requests at ``interactive`` priority (rest: ``bulk``)
    interactive_fraction: float = 0.7
    interactive_deadline_s: float = 60.0
    bulk_deadline_s: float = 600.0
    #: apps are drawn (with repetition) from a pool of this size, so
    #: smaller pools exercise the verdict cache harder; ``None`` uses
    #: every app offered
    pool_size: int | None = None
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ValueError("n_requests must be >= 1")
        if self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must be in [0, 1]")


def generate_requests(
    app_ids, profile: LoadProfile | None = None
) -> list[ScoreRequest]:
    """The open-loop workload *profile* describes, over *app_ids*.

    Deterministic: sorted app pool, one derived RNG, monotone sequence
    numbers.  Interarrivals are exponential with mean ``1/rate_rps``.
    """
    profile = profile or LoadProfile()
    pool = sorted(app_ids)
    if not pool:
        raise ValueError("need at least one app id")
    rng = np.random.default_rng(derive_seed(profile.seed, "service-loadgen"))
    if profile.pool_size is not None and profile.pool_size < len(pool):
        chosen = rng.choice(len(pool), size=profile.pool_size, replace=False)
        pool = [pool[i] for i in sorted(chosen)]
    requests = []
    arrival = 0.0
    for sequence in range(profile.n_requests):
        arrival += float(rng.exponential(1.0 / profile.rate_rps))
        interactive = bool(rng.random() < profile.interactive_fraction)
        app_id = pool[int(rng.integers(len(pool)))]
        requests.append(
            ScoreRequest(
                app_id=app_id,
                arrival_s=arrival,
                deadline_s=(
                    profile.interactive_deadline_s
                    if interactive
                    else profile.bulk_deadline_s
                ),
                priority=INTERACTIVE if interactive else BULK,
                sequence=sequence,
            )
        )
    return requests


def estimate_capacity_rps(
    schedule,
    base_latency_s: float = 0.35,
    score_cost_s: float = 0.05,
) -> float:
    """Roughly how many *cold* requests/second one worker can serve.

    A cold verdict crawls every weekly summary plus the feed and the
    install URL; the estimate is analytic (no scratch crawl, nothing
    perturbed) and is only used to translate an ``--overload`` factor
    into an arrival rate.  Cache hits make real capacity higher.
    """
    weeks = len(
        range(
            schedule.summary_crawl_day,
            schedule.summary_crawl_day + schedule.crawl_months * 30,
            7,
        )
    )
    per_request_s = (weeks + 2) * base_latency_s + score_cost_s
    return 1.0 / per_request_s
