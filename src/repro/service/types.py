"""Typed requests and responses of the online verdict service.

Every interaction with the service is a value: a :class:`ScoreRequest`
goes in, a :class:`VerdictResponse` comes out — *always*.  Overload,
expired deadlines, open breakers, and failed crawls are encoded as
typed outcomes on the response, never as exceptions escaping the
service, so a caller (or a chaos test) can account for 100% of its
requests.

Vocabulary
----------
*Priority* orders requests for admission and shedding: ``interactive``
(a user is waiting in front of the install dialog) is shed last,
``bulk`` (batch rescoring) before it, and ``refresh`` (internal
stale-cache revalidation) first — background work is the first ballast
overboard.

*Outcome* says what happened to the request as a whole:

``served``
    A verdict (possibly degraded) was produced.
``overloaded``
    Admission control shed the request: the bounded queue was full of
    equal-or-higher-priority work.  The caller is told loudly instead
    of queueing unboundedly.
``deadline``
    The request's deadline budget expired before a verdict could be
    produced (typically: it aged out while queued).

*Rung* says which step of the degradation ladder answered a served
request: ``full`` → ``lite`` → ``cached`` / ``stale`` → ``advisory`` →
``none`` (decline to condemn — no trustworthy evidence at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "INTERACTIVE",
    "BULK",
    "REFRESH",
    "PRIORITIES",
    "SERVED",
    "OVERLOADED",
    "DEADLINE",
    "RUNG_FULL",
    "RUNG_LITE",
    "RUNG_CACHED",
    "RUNG_STALE",
    "RUNG_ADVISORY",
    "RUNG_NONE",
    "RUNGS",
    "ScoreRequest",
    "VerdictResponse",
    "BatchPlan",
]

# -- priorities, most important first ---------------------------------------

INTERACTIVE = "interactive"
BULK = "bulk"
REFRESH = "refresh"

#: admission order: index = importance (lower sheds later)
PRIORITIES = (INTERACTIVE, BULK, REFRESH)

# -- request outcomes -------------------------------------------------------

SERVED = "served"
OVERLOADED = "overloaded"
DEADLINE = "deadline"

# -- degradation-ladder rungs ----------------------------------------------

RUNG_FULL = "full"
RUNG_LITE = "lite"
RUNG_CACHED = "cached"
RUNG_STALE = "stale"
RUNG_ADVISORY = "advisory"
RUNG_NONE = "none"

#: ladder order, best evidence first
RUNGS = (
    RUNG_FULL,
    RUNG_LITE,
    RUNG_CACHED,
    RUNG_STALE,
    RUNG_ADVISORY,
    RUNG_NONE,
)


def rank_of(priority: str) -> int:
    """Importance rank of *priority* (0 = most important)."""
    try:
        return PRIORITIES.index(priority)
    except ValueError:
        raise ValueError(
            f"unknown priority {priority!r}; expected one of {PRIORITIES}"
        ) from None


@dataclass(frozen=True)
class BatchPlan:
    """One adaptive continuous-batching decision.

    Produced by :func:`repro.service.admission.plan_batch` as a pure
    function of the queue's state at the start of a tick: ``size``
    requests will be drained, out of ``depth`` queued, with
    ``headroom_s`` of simulated slack between now and the tightest
    deadline in the planned batch.  ``reason`` says which constraint
    bound the decision: ``"depth"`` (queue shallower than the cap),
    ``"max"`` (capped at ``batch_max``), or ``"headroom"`` (shrunk so
    the most urgent request is not delayed past its deadline by the
    batch it rides in).
    """

    size: int
    depth: int
    headroom_s: float
    reason: str


@dataclass(frozen=True)
class ScoreRequest:
    """One ``score(app_id, deadline, priority)`` call.

    ``arrival_s`` is the simulated instant the request reached the
    service; ``deadline_s`` is the *budget* from that instant, so the
    absolute deadline is ``arrival_s + deadline_s``.  ``sequence``
    breaks ties deterministically when two requests share an arrival
    instant (open-loop generators emit monotone sequences).
    """

    app_id: str
    arrival_s: float = 0.0
    deadline_s: float = 60.0
    priority: str = INTERACTIVE
    sequence: int = 0

    def __post_init__(self) -> None:
        rank_of(self.priority)  # validate
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")

    @property
    def deadline_at(self) -> float:
        return self.arrival_s + self.deadline_s

    @property
    def rank(self) -> int:
        return rank_of(self.priority)

    @property
    def internal(self) -> bool:
        """Internal bookkeeping work (cache refresh), not a client call."""
        return self.priority == REFRESH


@dataclass
class VerdictResponse:
    """The service's structured answer to one :class:`ScoreRequest`.

    ``verdict`` is ``True`` (malicious), ``False`` (benign), or ``None``
    (no verdict: the request was shed, expired, or reached the ``none``
    rung).  ``reason`` is a short human-readable note on *why* the rung
    or outcome was what it was — which collections gave up, whether a
    breaker was open, what was evicted.
    """

    app_id: str
    outcome: str
    rung: str = RUNG_NONE
    verdict: bool | None = None
    risk_score: float = 50.0
    confidence: str = "none"
    priority: str = INTERACTIVE
    reason: str = ""
    advisories: list[str] = field(default_factory=list)
    #: fresh | stale | miss | negative | "" (cache not consulted)
    cache_state: str = ""
    arrival_s: float = 0.0
    started_s: float = 0.0
    finished_s: float = 0.0
    #: crawl attempts / transient faults seen while serving (0 on
    #: cache hits and shed requests)
    attempts: int = 0
    faults: int = 0
    #: how many requests the serving tick drained together (1 when the
    #: service runs unbatched; all responses of one batch share a value)
    batch_size: int = 1
    #: model version that rendered the verdict (0 = the static model,
    #: i.e. no rollout controller attached; >= 1 under a rollout)
    model_version: int = 0
    #: the record the live crawl produced (None for cache hits and shed
    #: requests) — kept so equivalence against the batch classifier is
    #: checkable on exactly the evidence the service saw
    record: object | None = None

    @property
    def latency_s(self) -> float:
        """Arrival-to-answer simulated latency (what the caller felt)."""
        return max(0.0, self.finished_s - self.arrival_s)

    @property
    def queue_wait_s(self) -> float:
        """Time spent queued before the service started on it."""
        return max(0.0, self.started_s - self.arrival_s)

    @property
    def shed(self) -> bool:
        return self.outcome == OVERLOADED
