"""The online FRAppE verdict service (the paper's Sec 5 oracle, served).

``VerdictService`` answers "is this app malicious?" under load, on the
*simulated* clock (:class:`~repro.platform.transport.TransportStats`) —
no wall clock anywhere, so every run is a pure function of its seed and
configuration.  A request flows through four defences:

1. **Admission** — a bounded queue (:class:`AdmissionQueue`) sheds by
   priority when full: internal refreshes first, then bulk, and
   interactive only when nothing less important is left.  Shed requests
   get a typed ``overloaded`` response, never an unbounded queue.
2. **Deadline budgets** — each request carries a deadline from its
   arrival.  Requests that age out in the queue get a typed
   ``deadline`` response; admitted ones propagate the remaining budget
   down into :class:`~repro.crawler.resilience.ResilientExecutor` and
   the transport, so one slow Graph API call cannot eat the request.
3. **Bulkheads** — per-endpoint-class compartments of the budget plus
   the executor's shared :class:`CircuitBreaker`s
   (:mod:`repro.service.bulkhead`).
4. **The degradation ladder** — full FRAppE → FRAppE Lite → cached /
   stale verdict → summary-only advisory → decline-to-condemn, each
   response recording which rung answered and why.

A stale-while-revalidate :class:`VerdictCache` sits across the ladder:
fresh hits skip the crawl entirely, stale hits are served immediately
while a background refresh (priority ``refresh``, sheddable, debited to
the same simulated clock) revalidates them, and authoritative
``PERMANENT`` removals are negative-cached for much longer.

With ``fault_rate == 0``, a cold cache, and one request at a time, the
service's verdicts are bit-identical to
:meth:`repro.core.frappe.FrappeCascade.predict` over the same records —
the whole overload machinery is a strict no-op on the verdict itself.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.config import ServiceConfig
from repro.core.features import CONFIDENCE_BY_TIER, FeatureExtractor
from repro.core.frappe import FrappeCascade
from repro.core.watchdog import AppWatchdog
from repro.crawler.crawler import AppCrawler, CrawlRecord, make_crawler
from repro.crawler.resilience import (
    PERMANENT,
    CircuitBreaker,
    RetryPolicy,
)
from repro.obs.observer import get_observer
from repro.platform.transport import TransportStats
from repro.service.admission import AdmissionQueue, plan_batch
from repro.service.bulkhead import Bulkhead
from repro.service.cache import FRESH, MISS, STALE, CacheEntry, VerdictCache
from repro.service.rollout import RolloutController
from repro.service.types import (
    DEADLINE,
    INTERACTIVE,
    OVERLOADED,
    REFRESH,
    RUNG_ADVISORY,
    RUNG_CACHED,
    RUNG_FULL,
    RUNG_LITE,
    RUNG_NONE,
    RUNG_STALE,
    SERVED,
    ScoreRequest,
    VerdictResponse,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ecosystem.simulation import SimulatedWorld

__all__ = ["VerdictService", "ServiceReport", "make_service"]

#: tier -> ladder rung for live-crawl verdicts
_TIER_RUNG = {"frappe": RUNG_FULL, "lite": RUNG_LITE}


def _jsonable(value: Any) -> Any:
    """Coerce snapshot material to plain JSON-round-trippable types.

    Tuples/sets become sorted-or-ordered lists, numpy scalars become
    Python numbers, dict keys become strings — so ``json.loads(
    json.dumps(x))`` is an identity on the result.
    """
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int) or hasattr(value, "__index__"):
        return int(value)
    if isinstance(value, float) or hasattr(value, "__float__"):
        return float(value)
    return str(value)


@dataclass
class ServiceReport:
    """Everything one :meth:`VerdictService.serve` run produced."""

    #: client responses, in completion order (internal refreshes excluded)
    responses: list[VerdictResponse] = field(default_factory=list)
    #: client requests offered / shed at admission, by priority
    offered: dict[str, int] = field(default_factory=dict)
    shed: dict[str, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    queue_bound: int = 0
    #: background refreshes completed / shed at admission / aged out
    refreshes_done: int = 0
    refreshes_shed: int = 0
    refreshes_expired: int = 0
    cache_hits_fresh: int = 0
    cache_hits_stale: int = 0
    cache_misses: int = 0
    #: simulated seconds the run spanned, and of that, worker idleness
    elapsed_s: float = 0.0
    idle_s: float = 0.0
    transport: dict[str, Any] = field(default_factory=dict)
    #: rollout state machine snapshot (empty when no rollout attached)
    rollout: dict[str, Any] = field(default_factory=dict)

    # -- derived views -----------------------------------------------------

    def outcome_counts(self) -> Counter[str]:
        return Counter(response.outcome for response in self.responses)

    def rung_counts(self) -> Counter[str]:
        return Counter(
            response.rung for response in self.responses
            if response.outcome == SERVED
        )

    def version_outcome_counts(self) -> dict[int, Counter[str]]:
        """Per-model-version outcome tallies (the lifecycle audit view)."""
        counts: dict[int, Counter[str]] = {}
        for response in self.responses:
            counts.setdefault(response.model_version, Counter())[
                response.outcome
            ] += 1
        return counts

    def version_rung_counts(self) -> dict[int, Counter[str]]:
        """Per-model-version rung tallies over served responses."""
        counts: dict[int, Counter[str]] = {}
        for response in self.responses:
            if response.outcome != SERVED:
                continue
            counts.setdefault(response.model_version, Counter())[
                response.rung
            ] += 1
        return counts

    def shed_rate(self, priority: str) -> float:
        offered = self.offered.get(priority, 0)
        if offered == 0:
            return 0.0
        return self.shed.get(priority, 0) / offered

    def served_latencies(self) -> list[float]:
        return sorted(
            response.latency_s
            for response in self.responses
            if response.outcome == SERVED
        )

    def latency_percentile(self, quantile: float) -> float:
        """Deterministic (nearest-rank) latency percentile of served."""
        latencies = self.served_latencies()
        if not latencies:
            return 0.0
        rank = min(
            len(latencies) - 1,
            max(0, int(round(quantile / 100.0 * (len(latencies) - 1)))),
        )
        return latencies[rank]

    def throughput_rps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        served = sum(
            1 for response in self.responses if response.outcome == SERVED
        )
        return served / self.elapsed_s

    # -- persistence -------------------------------------------------------

    #: response fields persisted by :meth:`snapshot`; ``record`` is
    #: deliberately absent — a live CrawlRecord is not JSON material,
    #: and nothing in :meth:`summary` reads it
    _RESPONSE_FIELDS = (
        "app_id", "outcome", "rung", "verdict", "risk_score", "confidence",
        "priority", "reason", "advisories", "cache_state", "arrival_s",
        "started_s", "finished_s", "attempts", "faults", "batch_size",
        "model_version",
    )

    def snapshot(self) -> dict[str, Any]:
        """A JSON-round-trippable image of the whole run.

        ``ServiceReport.from_snapshot(json.loads(json.dumps(s)))`` must
        reproduce :meth:`summary` byte-for-byte, so serve runs can be
        persisted (``repro serve --store`` / ``--snapshot-out``) and
        diffed across sessions.  All numerics are coerced to plain
        Python types — a numpy scalar reaching ``json.dumps`` is a
        ``TypeError``, and a margin-derived float must not silently
        change width through the store.
        """
        responses = []
        for response in self.responses:
            row: dict[str, Any] = {}
            for name in self._RESPONSE_FIELDS:
                value = getattr(response, name)
                if name == "verdict":
                    value = None if value is None else bool(value)
                elif name == "advisories":
                    value = [str(item) for item in value]
                elif name in ("attempts", "faults", "batch_size",
                              "model_version"):
                    value = int(value)
                elif not isinstance(value, str):
                    value = float(value)
                row[name] = value
            responses.append(row)
        return {
            "responses": responses,
            "offered": {str(k): int(v) for k, v in self.offered.items()},
            "shed": {str(k): int(v) for k, v in self.shed.items()},
            "max_queue_depth": int(self.max_queue_depth),
            "queue_bound": int(self.queue_bound),
            "refreshes_done": int(self.refreshes_done),
            "refreshes_shed": int(self.refreshes_shed),
            "refreshes_expired": int(self.refreshes_expired),
            "cache_hits_fresh": int(self.cache_hits_fresh),
            "cache_hits_stale": int(self.cache_hits_stale),
            "cache_misses": int(self.cache_misses),
            "elapsed_s": float(self.elapsed_s),
            "idle_s": float(self.idle_s),
            "transport": _jsonable(self.transport),
            "rollout": _jsonable(self.rollout),
        }

    @classmethod
    def from_snapshot(cls, data: dict[str, Any]) -> "ServiceReport":
        """Rebuild a report (minus live records) from :meth:`snapshot`."""
        responses = [
            VerdictResponse(**{
                name: (
                    list(row.get(name, [])) if name == "advisories"
                    else row[name]
                )
                for name in cls._RESPONSE_FIELDS
            })
            for row in data.get("responses", [])
        ]
        return cls(
            responses=responses,
            offered=dict(data.get("offered", {})),
            shed=dict(data.get("shed", {})),
            max_queue_depth=int(data.get("max_queue_depth", 0)),
            queue_bound=int(data.get("queue_bound", 0)),
            refreshes_done=int(data.get("refreshes_done", 0)),
            refreshes_shed=int(data.get("refreshes_shed", 0)),
            refreshes_expired=int(data.get("refreshes_expired", 0)),
            cache_hits_fresh=int(data.get("cache_hits_fresh", 0)),
            cache_hits_stale=int(data.get("cache_hits_stale", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            idle_s=float(data.get("idle_s", 0.0)),
            transport=dict(data.get("transport", {})),
            rollout=dict(data.get("rollout", {})),
        )

    def summary(self) -> str:
        outcome = self.outcome_counts()
        rungs = self.rung_counts()
        lines = [
            f"requests:    {len(self.responses)} "
            f"(served={outcome.get(SERVED, 0)}, "
            f"overloaded={outcome.get(OVERLOADED, 0)}, "
            f"deadline={outcome.get(DEADLINE, 0)})",
            "rungs:       "
            + (", ".join(f"{r}={n}" for r, n in sorted(rungs.items())) or "-"),
            f"queue:       depth<= {self.max_queue_depth}/{self.queue_bound}, "
            + ", ".join(
                f"{p} shed {self.shed.get(p, 0)}/{self.offered.get(p, 0)}"
                for p in sorted(self.offered)
            ),
            f"cache:       fresh={self.cache_hits_fresh} "
            f"stale={self.cache_hits_stale} miss={self.cache_misses}; "
            f"refreshes done={self.refreshes_done} shed={self.refreshes_shed} "
            f"expired={self.refreshes_expired}",
            f"latency:     p50={self.latency_percentile(50):.1f}s "
            f"p95={self.latency_percentile(95):.1f}s "
            f"p99={self.latency_percentile(99):.1f}s (simulated)",
            f"clock:       {self.elapsed_s:.0f}s simulated "
            f"({self.idle_s:.0f}s idle), "
            f"throughput {self.throughput_rps() * 3600:.0f} served/h",
        ]
        # Only surface the model-version breakdown when a rollout was
        # live: a rollout-free run's summary stays byte-identical.
        versions = self.version_outcome_counts()
        if any(version != 0 for version in versions):
            rungs = self.version_rung_counts()
            for version in sorted(versions):
                outcome = versions[version]
                rung_note = ", ".join(
                    f"{r}={n}" for r, n in sorted(rungs.get(version, {}).items())
                ) or "-"
                lines.append(
                    f"model v{version}:    "
                    f"served={outcome.get(SERVED, 0)} "
                    f"overloaded={outcome.get(OVERLOADED, 0)} "
                    f"deadline={outcome.get(DEADLINE, 0)}; rungs {rung_note}"
                )
            if self.rollout:
                lines.append(
                    f"rollout:     champion=v{self.rollout.get('champion', 0)} "
                    f"canary=v{self.rollout.get('canary', 0)} "
                    f"promotions={self.rollout.get('promotions', 0)} "
                    f"rollbacks={self.rollout.get('rollbacks', 0)}"
                )
        return "\n".join(lines)


class VerdictService:
    """Admission-controlled, deadline-budgeted, cache-backed scoring."""

    def __init__(
        self,
        world: "SimulatedWorld",
        cascade: FrappeCascade,
        extractor: FeatureExtractor,
        config: ServiceConfig | None = None,
        crawler: AppCrawler | None = None,
        rollout: RolloutController | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self._cascade = cascade
        #: champion–challenger controller; None = static model (v0),
        #: every rollout branch below is a strict no-op
        self.rollout = rollout
        self._extractor = extractor
        self._crawler = crawler or AppCrawler(world)
        # Service breakers are tuned separately from the batch crawl's.
        executor = self._crawler.executor
        for endpoint in ("summary", "feed", "install"):
            executor.breakers.setdefault(
                endpoint,
                CircuitBreaker(
                    failure_threshold=self.config.breaker_failure_threshold,
                    cooldown_s=self.config.breaker_cooldown_s,
                ),
            )
        self._bulkhead = Bulkhead(
            dict(self.config.bulkhead_fractions), executor
        )
        # The watchdog supplies calibrated risk scores and advisories;
        # its own crawl/cache surface is not used by the service.
        self._watchdog = AppWatchdog(cascade, extractor, self._crawler)
        self.cache = VerdictCache(
            ttl_s=self.config.cache_ttl_s,
            stale_ttl_s=self.config.cache_stale_ttl_s,
            negative_ttl_s=self.config.negative_ttl_s,
        )
        self.queue = AdmissionQueue(max_depth=self.config.max_queue_depth)
        self._sequence = 0
        self._report = ServiceReport(queue_bound=self.config.max_queue_depth)
        #: simulated instant the (overlapped) scoring stage is busy
        #: until; stays 0.0 — and the whole overlap machinery inert —
        #: unless adaptive batching (batch_max > 1) is on
        self._score_busy_until = 0.0

    # -- clock -------------------------------------------------------------

    @property
    def cascade(self) -> FrappeCascade:
        """The static cascade (champion payload when a rollout attaches)."""
        return self._cascade

    @property
    def stats(self) -> TransportStats:
        return self._crawler.stats

    @property
    def now_s(self) -> float:
        return self.stats.elapsed_s

    # -- the public one-shot API -------------------------------------------

    def score(
        self,
        app_id: str,
        deadline_s: float | None = None,
        priority: str = INTERACTIVE,
    ) -> VerdictResponse:
        """Answer one request right now (no queueing — concurrency 1)."""
        if deadline_s is None:
            deadline_s = self.config.deadline_for(priority)
        request = ScoreRequest(
            app_id=app_id,
            arrival_s=self.now_s,
            deadline_s=deadline_s,
            priority=priority,
            sequence=self._next_sequence(),
        )
        response = self._handle(request)
        # One-shot mode has no serve loop to run scheduled background
        # refreshes; drain them now (after the response is complete, so
        # its latency is untouched — the cost still lands on the clock).
        self.drain()
        return response

    def on_forensic_event(self, app_id: str, kind: str) -> bool:
        """A monitor observed a lifecycle change: drop the cached verdict.

        The continuous monitor (:mod:`repro.crawler.monitor`) calls this
        for every forensic event it records.  Whatever the cache holds
        for the app — positive or negative — was computed against
        pre-event evidence, so it is evicted with the event kind stamped
        on the trace.  Returns True iff an entry was dropped.
        """
        return self.cache.invalidate_forensic(
            app_id, reason=kind, now_s=self.now_s
        )

    def drain(self) -> None:
        """Process queued work (notably background refreshes) to empty."""
        while self.queue:
            for request, response in self._serve_tick():
                if not request.internal:
                    self._report.responses.append(response)
        self._sync_scorer()

    def _sync_scorer(self, horizon_s: float | None = None) -> None:
        """Advance the clock into outstanding overlapped score work.

        With overlap on, a tick's scoring runs concurrently (on the
        simulated clock) with the next tick's crawl I/O, so the clock
        is not advanced when the score cost is incurred.  Whenever the
        worker would otherwise go idle — or the run ends — the clock
        catches up to the scorer here, up to ``horizon_s`` (e.g. the
        next arrival).  A strict no-op unless overlap charged work.
        """
        pending = self._score_busy_until - self.now_s
        if pending <= 0.0:
            return
        if horizon_s is not None:
            pending = min(pending, horizon_s - self.now_s)
        if pending > 0.0:
            self.stats.add_service(pending)

    # -- the served workload -----------------------------------------------

    def serve(self, requests: list[ScoreRequest]) -> ServiceReport:
        """Run an open-loop workload to completion; return the report.

        Arrivals are admitted in arrival order whenever the (single)
        worker is free; the worker serves the queue in priority order.
        The loop ends when every arrival has a response and the queue —
        including background refreshes — has drained.
        """
        arrivals = sorted(
            requests, key=lambda r: (r.arrival_s, r.sequence)
        )
        started_at = self.now_s
        report = self._report = ServiceReport(
            queue_bound=self.config.max_queue_depth
        )
        index = 0
        while True:
            now = self.now_s
            while index < len(arrivals) and arrivals[index].arrival_s <= now:
                self._admit(arrivals[index])
                index += 1
            if not self.queue:
                if index >= len(arrivals):
                    self._sync_scorer()
                    break
                self._sync_scorer(horizon_s=arrivals[index].arrival_s)
                idle = arrivals[index].arrival_s - self.now_s
                if idle > 0.0:
                    self.stats.add_wait(idle)
                    report.idle_s += idle
                continue
            for request, response in self._serve_tick():
                if not request.internal:
                    report.responses.append(response)
        report.elapsed_s = self.now_s - started_at
        report.offered = {
            priority: count
            for priority, count in sorted(self.queue.offered_counts.items())
            if priority != REFRESH
        }
        report.shed = {
            priority: count
            for priority, count in sorted(self.queue.shed_counts.items())
            if priority != REFRESH
        }
        report.refreshes_shed = self.queue.shed_counts[REFRESH]
        report.max_queue_depth = self.queue.max_depth_seen
        report.cache_hits_fresh = self.cache.hits_fresh
        report.cache_hits_stale = self.cache.hits_stale
        report.cache_misses = self.cache.misses
        report.transport = self.stats.snapshot()
        if self.rollout is not None:
            report.rollout = self.rollout.snapshot()
        obs = get_observer()
        if obs.enabled:
            # The three uniform snapshot() components, folded into gauges.
            obs.scrape("transport", self.stats)
            obs.scrape("admission", self.queue)
            obs.scrape("cache", self.cache)
            obs.gauge("serve_elapsed_seconds", report.elapsed_s)
            obs.gauge("serve_idle_seconds", report.idle_s)
        return report

    # -- admission ----------------------------------------------------------

    def _admit(self, request: ScoreRequest) -> None:
        for victim in self.queue.offer(request):
            self._shed(victim)

    def _shed(self, victim: ScoreRequest) -> None:
        """Answer a request evicted (or rejected) by admission control."""
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "serve.shed",
                t=self.now_s,
                category="serve",
                app_id=victim.app_id,
                priority=victim.priority,
                internal=victim.internal,
            )
            obs.count("serve_shed_total", priority=victim.priority)
        if victim.internal:
            self.cache.abandon_revalidation(victim.app_id)
            return
        now = self.now_s
        self._report.responses.append(
            VerdictResponse(
                app_id=victim.app_id,
                outcome=OVERLOADED,
                rung=RUNG_NONE,
                verdict=None,
                priority=victim.priority,
                reason=(
                    f"admission queue full "
                    f"(bound {self.queue.max_depth}); "
                    f"{victim.priority} load shed"
                ),
                arrival_s=victim.arrival_s,
                started_s=now,
                finished_s=now,
            )
        )

    def _next_sequence(self) -> int:
        self._sequence += 1
        return self._sequence

    # -- request handling ----------------------------------------------------

    def _handle(self, request: ScoreRequest) -> VerdictResponse:
        started = self.now_s
        obs = get_observer()
        with obs.span(
            "serve.request",
            key=f"{request.sequence:06d}",
            category="serve",
            t=started,
            app_id=request.app_id,
            priority=request.priority,
        ) as span, obs.profile("serve"):
            response = self._dispatch(request, started)
            if obs.enabled:
                self._note_response(obs, span, response)
        return response

    def _dispatch(self, request: ScoreRequest, started: float) -> VerdictResponse:
        if started > request.deadline_at:
            return self._expired(request, started)
        if request.internal:
            return self._refresh(request, started)
        hit, cache_state = self._consult_cache(request, started)
        if hit is not None:
            return hit
        return self._score_live(request, started, cache_state)

    def _note_response(self, obs, span, response: VerdictResponse) -> None:
        """Close a ``serve.request`` span with the response's verdict path."""
        span.end(response.finished_s)
        span.note(
            outcome=response.outcome,
            rung=response.rung,
            cache_state=response.cache_state,
        )
        obs.count(
            "serve_requests_total",
            priority=response.priority,
            outcome=response.outcome,
        )
        if response.outcome == SERVED:
            obs.count("serve_rungs_total", rung=response.rung)
        obs.observe("serve_latency_seconds", response.latency_s)
        obs.sim_cost("serve", response.latency_s)

    def _consult_cache(
        self, request: ScoreRequest, started: float
    ) -> tuple[VerdictResponse | None, str]:
        """Cache-served response, or the cache state a live crawl records."""
        obs = get_observer()
        with obs.profile("serve.cache"):
            return self._consult_cache_inner(request, started, obs)

    def _consult_cache_inner(
        self, request: ScoreRequest, started: float, obs
    ) -> tuple[VerdictResponse | None, str]:
        version = (
            self.rollout.champion.version if self.rollout is not None else None
        )
        state, entry = self.cache.lookup(
            request.app_id, started, model_version=version
        )
        if obs.enabled:
            obs.event(
                "cache.lookup",
                t=started,
                category="serve",
                app_id=request.app_id,
                state=state,
            )
            obs.count("cache_lookups_total", state=state)
        if state == FRESH and entry is not None:
            return self._from_cache(
                request, entry, started,
                rung=RUNG_CACHED,
                cache_state="negative" if entry.negative else "fresh",
                reason="verdict cache hit"
                + (" (negative: authoritative removal)" if entry.negative else ""),
            ), ""
        if state == STALE and entry is not None:
            self._schedule_refresh(request.app_id, started)
            return self._from_cache(
                request, entry, started,
                rung=RUNG_STALE,
                cache_state="stale",
                reason=(
                    f"stale verdict ({entry.age_s(started):.0f}s old) "
                    "served while a background refresh revalidates"
                ),
            ), ""
        return None, ("miss" if state == MISS else "expired")

    # -- batched ticks -------------------------------------------------------

    def _serve_tick(self) -> list[tuple[ScoreRequest, VerdictResponse]]:
        """Drain one scheduling tick of the queue.

        Three regimes, decided by configuration:

        * ``batch_max > 1`` — adaptive continuous batching: the tick
          drains a :func:`plan_batch`-planned number of requests (the
          batch grows with queue depth, shrinks when deadline headroom
          is tight) and overlaps its scoring with the next tick's crawl
          I/O when ``overlap`` is on.
        * ``batch_size > 1`` (and ``batch_max == 1``) — the legacy
          fixed-size drain.
        * otherwise — exactly one :meth:`AdmissionQueue.pop` plus
          :meth:`_handle`: the historical unbatched code path, bit for
          bit.
        """
        obs = get_observer()
        if self.config.batch_max > 1:
            with obs.profile("serve.pop"):
                plan = plan_batch(
                    self.queue,
                    self.now_s,
                    batch_max=self.config.batch_max,
                    service_estimate_s=self.config.batch_headroom_s,
                )
                batch = self.queue.pop_batch(plan.size)
            if obs.enabled:
                obs.event(
                    "serve.batch_planned",
                    t=self.now_s,
                    category="serve",
                    size=plan.size,
                    depth=plan.depth,
                    reason=plan.reason,
                )
                obs.observe("serve_batch_planned", float(plan.size))
            return self._handle_batch(batch)
        if self.config.batch_size <= 1:
            with obs.profile("serve.pop"):
                request = self.queue.pop()
            return [(request, self._handle(request))]
        with obs.profile("serve.pop"):
            batch = self.queue.pop_batch(self.config.batch_size)
        if len(batch) == 1:
            return [(batch[0], self._handle(batch[0]))]
        return self._handle_batch(batch)

    def _handle_batch(
        self, batch: list[ScoreRequest]
    ) -> list[tuple[ScoreRequest, VerdictResponse]]:
        """Handle one drained batch with a single classification pass.

        Per-request admission semantics are unchanged — deadline checks,
        cache consults, and crawls happen request by request on the
        simulated clock, in FIFO order.  What is batched is the scoring:
        every live crawl of the tick goes through one
        :meth:`FrappeCascade.score_batch` call (per-model sub-batches
        under a rollout), and the per-request ``score_cost_s`` is
        charged once for the whole batch.  All of the tick's responses
        complete together (at the tick's end) and record the drained
        batch size.

        With overlap on (adaptive mode), the score cost is *not*
        debited to the shared clock here: the scorer is modelled as a
        stage of its own that stays busy until
        ``max(now, previously busy until) + score_cost_s``, so the next
        tick's crawl I/O proceeds concurrently on the simulated clock
        and :meth:`_sync_scorer` reconciles any remainder when the
        worker idles or the run ends.  Live responses finish when the
        scorer does.
        """
        size = len(batch)
        obs = get_observer()
        staged: list[tuple[ScoreRequest, VerdictResponse | None]] = []
        spans: list[Any] = []
        live: list[tuple[int, float, str | None]] = []
        records: list[CrawlRecord] = []
        # One ``serve`` profile block per tick — the tick is the unit
        # of work on the batched path, so CPU attribution amortises
        # per batch instead of paying a timer pair per request.
        with obs.profile("serve"):
            for request in batch:
                started = self.now_s
                # The span closes at the end of this stage; batched
                # responses finish together later, so the span's end
                # time and outcome attrs are patched in below
                # (``note``/``end`` work after close).
                with obs.span(
                    "serve.request",
                    key=f"{request.sequence:06d}",
                    category="serve",
                    t=started,
                    app_id=request.app_id,
                    priority=request.priority,
                ) as span:
                    spans.append(span)
                    if started > request.deadline_at:
                        staged.append(
                            (request, self._expired(request, started))
                        )
                        continue
                    if request.internal:
                        records.append(self._crawl_request(request))
                        live.append((len(staged), started, None))
                        staged.append((request, None))
                        continue
                    hit, cache_state = self._consult_cache(request, started)
                    if hit is not None:
                        staged.append((request, hit))
                        continue
                    records.append(self._crawl_request(request))
                    live.append((len(staged), started, cache_state))
                    staged.append((request, None))
        if live:
            overlap = self.config.batch_max > 1 and self.config.overlap
            if overlap:
                start = self.now_s
                if self._score_busy_until > start:
                    start = self._score_busy_until
                finish = start + self.config.score_cost_s
                self._score_busy_until = finish
            else:
                self.stats.add_service(self.config.score_cost_s)
                finish = self.now_s
            with obs.profile("score"), obs.profile("serve.score"):
                scored = self._score_live_batch(staged, live, records)
            if obs.enabled:
                obs.sim_cost("score", self.config.score_cost_s)
                obs.observe("serve_batch_live", float(len(live)))
            with obs.profile("serve.respond"):
                for (
                    (index, started, cache_state),
                    record,
                    (prediction, margin, tier, version, shadow_prediction),
                ) in zip(live, records, scored):
                    request = staged[index][0]
                    if cache_state is None:
                        response = self._finish_refresh(
                            request, started, record, prediction, tier,
                            version=version, margin=margin,
                            finished_at=finish,
                        )
                    else:
                        response = self._respond_live(
                            request, started, cache_state, record, prediction,
                            tier, version=version,
                            shadow_prediction=shadow_prediction,
                            margin=margin, finished_at=finish,
                        )
                    staged[index] = (request, response)
        results: list[tuple[ScoreRequest, VerdictResponse]] = []
        for (request, response), span in zip(staged, spans):
            assert response is not None
            response.batch_size = size
            if obs.enabled:
                self._note_response(obs, span, response)
                span.note(batch_size=size)
            results.append((request, response))
        return results

    def _expired(self, request: ScoreRequest, now: float) -> VerdictResponse:
        if request.internal:
            self.cache.abandon_revalidation(request.app_id)
            self._report.refreshes_expired += 1
        return VerdictResponse(
            app_id=request.app_id,
            outcome=DEADLINE,
            rung=RUNG_NONE,
            verdict=None,
            priority=request.priority,
            reason=(
                f"deadline budget ({request.deadline_s:.0f}s) expired "
                f"{now - request.deadline_at:.0f}s before service started"
            ),
            arrival_s=request.arrival_s,
            started_s=now,
            finished_s=now,
        )

    def _schedule_refresh(self, app_id: str, now: float) -> None:
        if not self.config.revalidate:
            return
        if not self.cache.begin_revalidation(app_id):
            return  # one in flight already
        refresh = ScoreRequest(
            app_id=app_id,
            arrival_s=now,
            deadline_s=self.config.refresh_deadline_s,
            priority=REFRESH,
            sequence=self._next_sequence(),
        )
        obs = get_observer()
        if obs.enabled:
            obs.event(
                "cache.refresh_scheduled",
                t=now,
                category="serve",
                app_id=app_id,
            )
            obs.count("cache_refreshes_scheduled_total")
        self._admit(refresh)

    def _from_cache(
        self,
        request: ScoreRequest,
        entry: CacheEntry,
        started: float,
        rung: str,
        cache_state: str,
        reason: str,
    ) -> VerdictResponse:
        self.stats.add_service(self.config.cache_hit_cost_s)
        return VerdictResponse(
            app_id=request.app_id,
            outcome=SERVED,
            rung=rung,
            verdict=entry.verdict,
            risk_score=entry.risk_score,
            confidence=entry.confidence if rung == RUNG_CACHED else "stale",
            priority=request.priority,
            reason=reason,
            advisories=list(entry.advisories),
            cache_state=cache_state,
            arrival_s=request.arrival_s,
            started_s=started,
            finished_s=self.now_s,
            model_version=entry.model_version,
        )

    # -- live scoring --------------------------------------------------------

    def _crawl_request(self, request: ScoreRequest) -> CrawlRecord:
        with get_observer().profile("serve.crawl"):
            return self._crawler.crawl_app(
                request.app_id,
                deadline_at=request.deadline_at,
                bulkhead=self._bulkhead,
                strict_deadline=True,
            )

    def _select_model(self, request: ScoreRequest) -> tuple[Any, int, Any]:
        """(cascade, version, shadow) scoring this request.

        Without a rollout: the static cascade, version 0, no shadow.
        Under a rollout, client requests hash-split between champion and
        canary; when the canary draws the request, the champion comes
        along as *shadow* for the health gate's disagreement measure.
        Internal refreshes always use the champion — background cache
        work is not part of the canary experiment.
        """
        if self.rollout is None:
            return self._cascade, 0, None
        champion = self.rollout.champion.version
        if request.internal:
            return self.rollout.model_for(champion), champion, None
        version = self.rollout.assign(request.app_id)
        if version == champion:
            return self.rollout.model_for(version), version, None
        return (
            self.rollout.model_for(version),
            version,
            self.rollout.model_for(champion),
        )

    def _account_canary(self, prediction: int, shadow_prediction: int) -> None:
        """Feed one canary verdict (+ champion shadow) to the health gate."""
        assert self.rollout is not None
        if self.rollout.canary is None:
            # The canary left probation (promoted or rolled back) while
            # this tick's batch was in flight; the remaining verdicts
            # of the batch were still scored by it, but there is no
            # probation left to account them against.
            return
        transition = self.rollout.record_canary(
            bool(prediction), bool(shadow_prediction), t=self.now_s
        )
        if transition != "canary" and self.rollout.consume_flush():
            self.cache.retain_version(self.rollout.champion.version)

    def _crawl_and_score(
        self, request: ScoreRequest
    ) -> tuple[CrawlRecord, int, float, str, int, int | None]:
        record = self._crawl_request(request)
        self.stats.add_service(self.config.score_cost_s)
        obs = get_observer()
        with obs.profile("score"), obs.profile("serve.score"):
            cascade, version, shadow = self._select_model(request)
            prediction, margin, tier = cascade.score_record(record)
            shadow_prediction = (
                shadow.score_record(record)[0] if shadow is not None else None
            )
        return record, prediction, margin, tier, version, shadow_prediction

    @staticmethod
    def _score_with(
        model: Any, records: list[CrawlRecord]
    ) -> list[tuple[int, float, str]]:
        """Score *records* with *model*, batched when the model can.

        Rollout payloads are usually :class:`FrappeCascade` instances
        (batched), but anything exposing ``score_record`` — e.g. an
        experiment's wrapper model — still works record by record.
        """
        if hasattr(model, "score_batch"):
            return model.score_batch(records)
        return [model.score_record(record) for record in records]

    def _score_live_batch(
        self,
        staged: list[tuple[ScoreRequest, VerdictResponse | None]],
        live: list[tuple[int, float, str | None]],
        records: list[CrawlRecord],
    ) -> list[tuple[int, float, str, int, int | None]]:
        """``(prediction, margin, tier, version, shadow_prediction)``
        per live record of the tick, aligned with *live*.

        Without a rollout the whole tick is one
        :meth:`FrappeCascade.score_batch` call.  Under a rollout the
        tick splits into per-model-version sub-batches (champion
        requests, canary requests, internal refreshes), each scored
        with one batched pass — plus one champion shadow pass over the
        canary sub-batch for the health gate — instead of record by
        record.
        """
        if self.rollout is None:
            return [
                (prediction, margin, tier, 0, None)
                for prediction, margin, tier
                in self._cascade.score_batch(records)
            ]
        selections = [
            self._select_model(staged[index][0]) for index, _, _ in live
        ]
        # Positions sharing a model version form one sub-batch; the
        # shadow (champion or None) is uniform within a version.
        groups: dict[int, list[int]] = {}
        for position, (_, version, _) in enumerate(selections):
            groups.setdefault(version, []).append(position)
        scored: list[tuple[int, float, str, int, int | None]] = (
            [(0, 0.0, "none", 0, None)] * len(live)
        )
        for version, positions in groups.items():
            cascade, _, shadow = selections[positions[0]]
            subrecords = [records[position] for position in positions]
            results = self._score_with(cascade, subrecords)
            if shadow is not None:
                shadow_predictions: list[int | None] = [
                    result[0] for result in self._score_with(shadow, subrecords)
                ]
            else:
                shadow_predictions = [None] * len(positions)
            for position, (prediction, margin, tier), shadow_prediction in zip(
                positions, results, shadow_predictions
            ):
                scored[position] = (
                    prediction, margin, tier, version, shadow_prediction
                )
        return scored

    @staticmethod
    def _crawl_effort(record: CrawlRecord) -> tuple[int, int]:
        attempts = sum(o.attempts for o in record.outcomes.values())
        faults = sum(len(o.faults) for o in record.outcomes.values())
        return attempts, faults

    def _store(
        self, record: CrawlRecord, entry: CacheEntry, now_s: float | None = None
    ) -> None:
        summary = record.outcomes.get("summary")
        entry.negative = summary is not None and summary.status == PERMANENT
        self.cache.store(entry, self.now_s if now_s is None else now_s)

    def _score_live(
        self, request: ScoreRequest, started: float, cache_state: str
    ) -> VerdictResponse:
        record, prediction, margin, tier, version, shadow_prediction = (
            self._crawl_and_score(request)
        )
        with get_observer().profile("serve.respond"):
            return self._respond_live(
                request, started, cache_state, record, prediction, tier,
                version=version, shadow_prediction=shadow_prediction,
                margin=margin,
            )

    def _respond_live(
        self,
        request: ScoreRequest,
        started: float,
        cache_state: str,
        record: CrawlRecord,
        prediction: int,
        tier: str,
        version: int = 0,
        shadow_prediction: int | None = None,
        margin: float | None = None,
        finished_at: float | None = None,
    ) -> VerdictResponse:
        finished = self.now_s if finished_at is None else finished_at
        attempts, faults = self._crawl_effort(record)
        # The service already scored this record; hand the (margin,
        # tier) through so the watchdog skips a bit-identical
        # re-evaluation.  Under a rollout the watchdog keeps its own
        # static cascade's view (the margin may have come from a canary
        # model), so the pass-through is withheld there.
        scored = (
            (margin, tier)
            if margin is not None and self.rollout is None
            else None
        )
        if tier in _TIER_RUNG:
            if shadow_prediction is not None:
                self._account_canary(prediction, shadow_prediction)
            assessment = self._watchdog.assess_record(record, scored=scored)
            if shadow_prediction is None:
                # Only champion verdicts are cached: a canary on
                # probation must never leave verdicts behind that a
                # rollback would then serve.
                entry = CacheEntry(
                    app_id=request.app_id,
                    verdict=bool(prediction),
                    risk_score=assessment.risk_score,
                    confidence=assessment.confidence,
                    rung=_TIER_RUNG[tier],
                    advisories=list(assessment.advisories),
                    model_version=version,
                )
                self._store(record, entry, now_s=finished)
            return VerdictResponse(
                app_id=request.app_id,
                outcome=SERVED,
                rung=_TIER_RUNG[tier],
                verdict=bool(prediction),
                risk_score=assessment.risk_score,
                confidence=assessment.confidence,
                priority=request.priority,
                reason=self._degradation_reason(record, tier),
                advisories=list(assessment.advisories),
                cache_state=cache_state,
                arrival_s=request.arrival_s,
                started_s=started,
                finished_s=finished,
                attempts=attempts,
                faults=faults,
                record=record,
                model_version=version,
            )
        # The live crawl cannot support even FRAppE Lite: fall back to
        # any cached verdict (however old), then a summary-only
        # advisory, then decline to condemn.
        resort = self.cache.last_resort(request.app_id)
        if resort is not None:
            return VerdictResponse(
                app_id=request.app_id,
                outcome=SERVED,
                rung=RUNG_STALE,
                verdict=resort.verdict,
                risk_score=resort.risk_score,
                confidence="stale",
                priority=request.priority,
                reason=(
                    self._degradation_reason(record, tier)
                    + "; serving the last cached verdict "
                    f"({resort.age_s(finished):.0f}s old)"
                ),
                advisories=list(resort.advisories),
                cache_state=cache_state,
                arrival_s=request.arrival_s,
                started_s=started,
                finished_s=finished,
                attempts=attempts,
                faults=faults,
                record=record,
                model_version=resort.model_version,
            )
        if tier == "summary_only":
            assessment = self._watchdog.assess_record(record, scored=scored)
            return VerdictResponse(
                app_id=request.app_id,
                outcome=SERVED,
                rung=RUNG_ADVISORY,
                verdict=bool(prediction),
                risk_score=assessment.risk_score,
                confidence=assessment.confidence,
                priority=request.priority,
                reason=self._degradation_reason(record, tier)
                + "; summary-only advisory",
                advisories=list(assessment.advisories),
                cache_state=cache_state,
                arrival_s=request.arrival_s,
                started_s=started,
                finished_s=finished,
                attempts=attempts,
                faults=faults,
                record=record,
                model_version=version,
            )
        return VerdictResponse(
            app_id=request.app_id,
            outcome=SERVED,
            rung=RUNG_NONE,
            verdict=None,
            risk_score=50.0,
            confidence=CONFIDENCE_BY_TIER["none"],
            priority=request.priority,
            reason=self._degradation_reason(record, tier)
            + "; no trustworthy evidence — declining to condemn",
            cache_state=cache_state,
            arrival_s=request.arrival_s,
            started_s=started,
            finished_s=finished,
            attempts=attempts,
            faults=faults,
            record=record,
            model_version=version,
        )

    def _refresh(self, request: ScoreRequest, started: float) -> VerdictResponse:
        """Background revalidation of a stale entry (no client waiting)."""
        record, prediction, margin, tier, version, _ = (
            self._crawl_and_score(request)
        )
        with get_observer().profile("serve.respond"):
            return self._finish_refresh(
                request, started, record, prediction, tier, version=version,
                margin=margin,
            )

    def _finish_refresh(
        self,
        request: ScoreRequest,
        started: float,
        record: CrawlRecord,
        prediction: int,
        tier: str,
        version: int = 0,
        margin: float | None = None,
        finished_at: float | None = None,
    ) -> VerdictResponse:
        finished = self.now_s if finished_at is None else finished_at
        attempts, faults = self._crawl_effort(record)
        scored = (
            (margin, tier)
            if margin is not None and self.rollout is None
            else None
        )
        if tier in _TIER_RUNG:
            assessment = self._watchdog.assess_record(record, scored=scored)
            entry = CacheEntry(
                app_id=request.app_id,
                verdict=bool(prediction),
                risk_score=assessment.risk_score,
                confidence=assessment.confidence,
                rung=_TIER_RUNG[tier],
                advisories=list(assessment.advisories),
                model_version=version,
            )
            self._store(record, entry, now_s=finished)
            self._report.refreshes_done += 1
        else:
            # The refresh crawl came back without trustworthy evidence;
            # keep the old entry and allow a later retry.
            self.cache.abandon_revalidation(request.app_id)
        return VerdictResponse(
            app_id=request.app_id,
            outcome=SERVED,
            rung=_TIER_RUNG.get(tier, RUNG_NONE),
            verdict=bool(prediction) if tier in _TIER_RUNG else None,
            priority=REFRESH,
            reason="background cache revalidation",
            arrival_s=request.arrival_s,
            started_s=started,
            finished_s=finished,
            attempts=attempts,
            faults=faults,
            record=record,
            model_version=version,
        )

    @staticmethod
    def _degradation_reason(record: CrawlRecord, tier: str) -> str:
        degraded = record.degraded_collections
        if not degraded:
            return "all collections crawled"
        notes = []
        for collection in degraded:
            outcome = record.outcomes[collection]
            kinds = sorted(set(outcome.faults)) or ["gave up"]
            notes.append(f"{collection} gave up ({', '.join(kinds)})")
        return "; ".join(notes)


def make_service(
    result,
    config: ServiceConfig | None = None,
    rollout: RolloutController | None = None,
) -> VerdictService:
    """Build a :class:`VerdictService` from a pipeline result.

    Trains a :class:`FrappeCascade` on D-Sample when the pipeline did
    not already build one (fault-free runs train only the full model),
    and wires a crawler whose transport matches the world's fault
    configuration — the same faults the batch crawl fought, now fought
    per-request under deadlines.
    """
    cascade = result.cascade
    if cascade is None:
        records, labels = result.sample_records()
        cascade = FrappeCascade(result.extractor).fit(records, labels)
    world = result.world
    config = config or ServiceConfig()
    # The service's retry budget is deliberately smaller than the batch
    # crawler's: an online caller is waiting, and the per-request
    # deadline — not the per-app crawl budget — is the true limit.
    policy = RetryPolicy(max_attempts=config.retry_attempts)
    crawler = AppCrawler(
        world,
        transport=make_crawler(world).transport,
        retry_policy=policy,
    )
    return VerdictService(
        world,
        cascade,
        result.extractor,
        config=config,
        crawler=crawler,
        rollout=rollout,
    )
