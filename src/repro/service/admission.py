"""Admission control: a bounded queue that sheds by priority.

The service's first line of defence against overload is refusing work
*early and loudly*.  The queue holds at most ``max_depth`` admitted
requests; when a request arrives at a full queue the policy is:

* if anything queued is *less* important than the arrival (``bulk``
  below ``interactive``, internal ``refresh`` below both), the youngest
  such entry is evicted to make room — shed bulk before interactive;
* otherwise the arrival itself is shed.

Either way the shed request is returned to the caller so the service
can answer it with a typed ``overloaded`` response — nothing queues
unboundedly and nothing disappears silently.

Service order is strict priority (interactive first), FIFO within a
priority class.  All choices are deterministic: ties break on the
requests' monotone ``sequence`` numbers, never on dict order or clocks.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.service.types import PRIORITIES, BatchPlan, ScoreRequest

__all__ = ["AdmissionQueue", "plan_batch"]


class AdmissionQueue:
    """Bounded, priority-aware admission queue with eviction shedding."""

    def __init__(self, max_depth: int = 16) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        #: one FIFO per priority class, in importance order
        self._lanes: dict[str, list[ScoreRequest]] = {
            priority: [] for priority in PRIORITIES
        }
        #: requests shed at admission, by priority (for the report)
        self.shed_counts: Counter[str] = Counter()
        #: requests offered, by priority
        self.offered_counts: Counter[str] = Counter()
        #: high-water mark of the queue depth ever observed
        self.max_depth_seen = 0

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    def __bool__(self) -> bool:
        return len(self) > 0

    def depth_of(self, priority: str) -> int:
        return len(self._lanes[priority])

    def offer(self, request: ScoreRequest) -> list[ScoreRequest]:
        """Admit *request* if possible; return the requests shed by it.

        The returned list is empty (admitted, room to spare), contains
        an evicted lower-priority request (admitted by displacement),
        or contains *request* itself (rejected).
        """
        self.offered_counts[request.priority] += 1
        if len(self) < self.max_depth:
            self._lanes[request.priority].append(request)
            self.max_depth_seen = max(self.max_depth_seen, len(self))
            return []
        victim = self._youngest_below(request.rank)
        if victim is None:
            self.shed_counts[request.priority] += 1
            return [request]
        self._lanes[victim.priority].remove(victim)
        self.shed_counts[victim.priority] += 1
        self._lanes[request.priority].append(request)
        self.max_depth_seen = max(self.max_depth_seen, len(self))
        return [victim]

    def _youngest_below(self, rank: int) -> ScoreRequest | None:
        """The youngest queued request strictly less important than *rank*."""
        for priority in reversed(PRIORITIES):
            if PRIORITIES.index(priority) <= rank:
                return None
            lane = self._lanes[priority]
            if lane:
                return lane[-1]
        return None

    def pop(self) -> ScoreRequest:
        """The most important queued request (FIFO within its class)."""
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if lane:
                return lane.pop(0)
        raise IndexError("pop from an empty AdmissionQueue")

    def pop_batch(self, limit: int) -> list[ScoreRequest]:
        """Up to *limit* requests in strict priority order (FIFO per lane).

        The batch fills across priority lanes: the head lane is drained
        first, then — if the budget allows — the next lane, and so on.
        This is exactly the order ``limit`` consecutive :meth:`pop`
        calls would return (so ``pop_batch(1)`` is ``[pop()]``), which
        means batching can never reorder or starve a class relative to
        unbatched serving; it only lets one tick pay the scoring cost
        once for what :meth:`pop` would have served anyway.  Draining
        only the head lane — the previous behaviour — left batch slots
        empty whenever the interactive lane was shallow, capping the
        batched-service speedup on mixed workloads.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        batch: list[ScoreRequest] = []
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if not lane:
                continue
            take = limit - len(batch)
            batch.extend(lane[:take])
            del lane[:take]
            if len(batch) == limit:
                break
        if not batch:
            raise IndexError("pop from an empty AdmissionQueue")
        return batch

    def peek_batch(self, limit: int) -> list[ScoreRequest]:
        """The requests :meth:`pop_batch` would return, without removal.

        Same cross-lane strict-priority order; lets the adaptive
        batching controller inspect deadline headroom before deciding
        how much to drain, without mutating the queue.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        batch: list[ScoreRequest] = []
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            if not lane:
                continue
            batch.extend(lane[: limit - len(batch)])
            if len(batch) == limit:
                break
        return batch

    def total_shed(self) -> int:
        return sum(self.shed_counts.values())

    def snapshot(self) -> dict:
        """A uniform, JSON-serialisable image of the queue's counters.

        Same shape contract as ``TransportStats.snapshot`` and
        ``VerdictCache.snapshot``: scalars and ``{str: number}``
        sub-dicts only, so the metrics registry can fold it into gauges
        (``MetricsRegistry.scrape``) without a bespoke adapter.
        """
        return {
            "depth": len(self),
            "max_depth": self.max_depth,
            "max_depth_seen": self.max_depth_seen,
            "offered": {p: int(self.offered_counts[p]) for p in PRIORITIES},
            "shed": {p: int(self.shed_counts[p]) for p in PRIORITIES},
            "total_shed": self.total_shed(),
        }

    def shed_rate(self, priority: str) -> float:
        """Fraction of *priority* offers shed at admission (0 if none)."""
        offered = self.offered_counts[priority]
        if offered == 0:
            return 0.0
        return self.shed_counts[priority] / offered


def plan_batch(
    queue: AdmissionQueue,
    now_s: float,
    batch_max: int,
    service_estimate_s: float,
) -> BatchPlan:
    """Decide how many requests the next tick drains (adaptive batching).

    The inference-server-style continuous-batching rule: the batch
    *grows* with queue depth — a deep queue means per-tick fixed costs
    (the scoring pass) should amortise over more requests — and
    *shrinks* while the tightest deadline headroom in the candidate
    batch cannot absorb serving the whole batch.  Every response of a
    tick completes at the tick's end, so a ``k``-batch delays its most
    urgent member by roughly ``k`` per-request service times; the loop
    takes the largest ``k <= min(depth, batch_max)`` whose most urgent
    member still has ``k * service_estimate_s`` of slack (an already
    expired head degenerates to ``k = 1``, answering it immediately
    with a typed ``deadline`` response).

    A pure function of the queue state and ``now_s``: no clocks, no
    randomness, no queue mutation — the whole adaptive service stays a
    deterministic function of its seed and configuration.
    """
    depth = len(queue)
    size = min(depth, batch_max)
    if size <= 1:
        return BatchPlan(size=1, depth=depth, headroom_s=math.inf, reason="depth")
    heads = queue.peek_batch(size)
    # Prefix minima of the absolute deadlines, in drain order: the
    # tightest deadline among the first k candidates.
    tightest: list[float] = []
    low = math.inf
    for request in heads:
        low = min(low, request.deadline_at)
        tightest.append(low)
    reason = "max" if size == batch_max else "depth"
    while size > 1 and tightest[size - 1] - now_s < size * service_estimate_s:
        size -= 1
        reason = "headroom"
    return BatchPlan(
        size=size,
        depth=depth,
        headroom_s=tightest[size - 1] - now_s,
        reason=reason,
    )
