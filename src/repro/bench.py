"""The perf-regression harness behind ``repro bench``.

Every optimisation in this codebase keeps its naive reference path
alive (``FeatureExtractor.vector``, ``cluster_names(kernel="naive")``,
``name_similarity``, ``_smo(row_cache=False)``, ``batch_size=1``)
because exactness is asserted against it.  This harness turns those
pairs into a regression gate: each component is timed fast-vs-reference
on an identical deterministic workload, and the *speedup ratios* go
into a JSON report (``BENCH_<n>.json``).

CI compares a fresh report against the committed baseline and fails
when a gated ratio drops by more than the tolerance (default 20%).
Ratios — not absolute throughputs — are the comparison unit on
purpose: a ratio of fast to naive on the *same* machine and workload
cancels the machine out, so a laptop baseline remains meaningful on a
CI runner.  Absolute throughputs are recorded alongside for reading,
never for gating.

Workloads are pure functions of the seed; only the measured wall time
(``time.perf_counter``) varies between runs.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
import time
from typing import Any, Callable

__all__ = ["run_bench", "compare", "main"]

BENCH_VERSION = 1

#: ratios stable enough to gate on (large, workload-dominated, or —
#: for smo and batched_service — repeated and normalised until they
#: are); the remaining components are recorded for information only.
GATED_COMPONENTS = (
    "feature_matrix",
    "name_clustering",
    "similarity_kernel",
    "smo",
    "batched_service",
)

#: machine-independent absolute floors, checked on the *current* report
#: regardless of the baseline: an optimisation that stops winning at
#: all is a regression even if the baseline also recorded a loss.
#: ``strict=True`` demands measured > floor; otherwise measured >= floor.
ABSOLUTE_GATES = (
    ("batched_service_speedup", 1.0, True),
    ("smo_speedup", 1.0, False),
)


def _time(fn: Callable[[], Any], repeats: int = 1) -> tuple[float, Any]:
    """Best-of-``repeats`` wall time of ``fn`` and its last result."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, value


# -- deterministic workloads -------------------------------------------------


def _clustering_corpus(n_names: int, seed: int) -> list[str]:
    """A skewed app-name corpus: franchise variants plus noise names.

    Mimics the paper's D-Sample name distribution — a few heavily
    reused malicious names with typo/version variants, and a long tail
    of unrelated names (Fig 10/11's regime).
    """
    rnd = random.Random(seed)
    stems = [
        "Farm Ville", "Mafia Wars", "Candy Crush Saga",
        "Texas HoldEm Poker", "Pet Society", "Castle Age",
        "Birthday Cards", "Daily Horoscope", "Photo Frames",
        "Who Viewed My Profile",
    ]

    def variant(stem: str) -> str:
        chars = list(stem)
        op = rnd.randrange(4)
        if op == 0 and len(chars) > 2:
            k = rnd.randrange(len(chars) - 1)
            chars[k], chars[k + 1] = chars[k + 1], chars[k]
        elif op == 1:
            chars[rnd.randrange(len(chars))] = rnd.choice("abcdefgh ")
        elif op == 2:
            chars.insert(rnd.randrange(len(chars) + 1), rnd.choice("xyz"))
        else:
            return stem + " " + str(rnd.randrange(1, 30))
        return "".join(chars)

    n_variants = (n_names * 4) // 5
    names = [variant(rnd.choice(stems)) for _ in range(n_variants)]
    names += [
        "".join(rnd.choice("abcdefghijklmnop ") for _ in range(rnd.randrange(5, 25)))
        for _ in range(n_names - n_variants)
    ]
    rnd.shuffle(names)
    return names


def _pipeline_result(scale: float, seed: int):
    from repro.experiments import common

    return common.get_result(scale=scale, seed=seed, sweep=False)


# -- component benchmarks ----------------------------------------------------


def _bench_feature_matrix(result, rows: int) -> dict[str, Any]:
    import numpy as np

    from repro.core.features import ALL_FEATURES

    records, _ = result.sample_records()
    batch = (records * (rows // len(records) + 1))[:rows]
    extractor = result.extractor

    naive_s, reference = _time(
        lambda: np.vstack([extractor.vector(r, ALL_FEATURES) for r in batch]),
        repeats=2,
    )
    fast_s, matrix = _time(lambda: extractor.matrix(batch, ALL_FEATURES), repeats=3)
    assert np.array_equal(matrix, reference)
    return {
        "rows": len(batch),
        "naive_s": naive_s,
        "fast_s": fast_s,
        "rows_per_s": len(batch) / fast_s,
        "speedup": naive_s / fast_s,
    }


def _bench_name_clustering(n_names: int, seed: int) -> dict[str, Any]:
    from repro.text.clustering import cluster_names

    names = _clustering_corpus(n_names, seed)
    threshold = 0.8
    fast_s, fast = _time(lambda: cluster_names(names, threshold, kernel="fast"))
    naive_s, naive = _time(lambda: cluster_names(names, threshold, kernel="naive"))
    assert fast.clusters == naive.clusters
    return {
        "names": len(names),
        "unique": len(set(names)),
        "threshold": threshold,
        "n_clusters": fast.n_clusters,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "names_per_s": len(names) / fast_s,
        "speedup": naive_s / fast_s,
    }


def _bench_similarity_kernel(n_names: int, seed: int) -> dict[str, Any]:
    from repro.text.editdist import name_similarity
    from repro.text.fastdist import similar

    names = sorted(set(_clustering_corpus(n_names, seed)))
    pairs = [
        (names[i], names[j])
        for i in range(len(names))
        for j in range(i + 1, min(i + 40, len(names)))
    ]
    threshold = 0.8

    naive_s, reference = _time(
        lambda: [name_similarity(a, b) >= threshold for a, b in pairs],
        repeats=2,
    )
    fast_s, verdicts = _time(
        lambda: [similar(a, b, threshold) for a, b in pairs], repeats=3
    )
    assert verdicts == reference
    return {
        "pairs": len(pairs),
        "threshold": threshold,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "pairs_per_s": len(pairs) / fast_s,
        "speedup": naive_s / fast_s,
    }


def _bench_smo(n_samples: int, seed: int) -> dict[str, Any]:
    import numpy as np

    from repro.ml.kernels import rbf_kernel
    from repro.ml.svm import _smo

    rng = np.random.default_rng(seed)
    half = n_samples // 2
    x = np.vstack(
        [rng.normal(0.0, 1.0, (half, 9)), rng.normal(0.25, 1.0, (half, 9))]
    )
    signs = np.array([-1.0] * half + [1.0] * half)
    kernel_matrix = rbf_kernel(x, x, gamma=1.0 / 9.0)

    # Best-of-5: a single SMO run is short enough at CI scale that
    # scheduler noise alone once pushed the ratio below 1.0x.
    naive_s, reference = _time(
        lambda: _smo(kernel_matrix, signs, 1.0, 1e-3, 200, row_cache=False),
        repeats=5,
    )
    fast_s, fitted = _time(
        lambda: _smo(kernel_matrix, signs, 1.0, 1e-3, 200, row_cache=True),
        repeats=5,
    )
    assert np.array_equal(reference[0], fitted[0]) and reference[1] == fitted[1]
    return {
        "samples": n_samples,
        "iterations": fitted[2],
        "naive_s": naive_s,
        "fast_s": fast_s,
        "speedup": naive_s / fast_s,
    }


def _bench_batched_service(
    result, n_requests: int, batch_max: int, seed: int, repeats: int = 2
) -> dict[str, Any]:
    from repro.config import ServiceConfig
    from repro.core.frappe import FrappeCascade
    from repro.service.loadgen import (
        LoadProfile,
        estimate_capacity_rps,
        generate_requests,
    )
    from repro.service.service import make_service
    from repro.service.types import SERVED

    # Train the cascade once, outside every timed region.  The old
    # harness let ``make_service`` retrain it inside each timed run — a
    # constant cost larger than serving itself at CI scale, diluting
    # the measured ratio toward 1.0 regardless of how serving changed.
    if result.cascade is None:
        records, labels = result.sample_records()
        result.cascade = FrappeCascade(result.extractor).fit(records, labels)

    app_ids = sorted(result.bundle.d_sample)
    # Open-loop overload (3x the analytic single-worker capacity) over
    # the whole app pool: adaptive batching only wins when the queue
    # builds depth *and* the ticks actually score (a tiny hot pool
    # turns the run into cache hits, which cost the same either way).
    # Generous deadlines keep the headroom rule from forcing the batch
    # back down to 1 the moment the backlog grows.
    profile = LoadProfile(
        n_requests=n_requests,
        rate_rps=estimate_capacity_rps(result.world.schedule) * 3.0,
        interactive_deadline_s=600.0,
        bulk_deadline_s=1800.0,
        pool_size=None,
        seed=seed,
    )
    requests = generate_requests(app_ids, profile)
    queue_depth = 64

    def timed_serve(config: ServiceConfig):
        """Best-of-``repeats`` serve time; construction stays untimed."""
        best_s = float("inf")
        best = None
        for _ in range(repeats):
            service = make_service(result, config)
            start = time.perf_counter()
            report = service.serve(list(requests))
            elapsed = time.perf_counter() - start
            if elapsed < best_s:
                best_s, best = elapsed, report
        return best_s, best

    unbatched_s, seq_report = timed_serve(
        ServiceConfig(max_queue_depth=queue_depth)
    )
    batched_s, batch_report = timed_serve(
        ServiceConfig(max_queue_depth=queue_depth, batch_max=batch_max)
    )
    served_unbatched = seq_report.outcome_counts().get(SERVED, 0)
    served_batched = batch_report.outcome_counts().get(SERVED, 0)
    # Both runs consume the *identical* offered workload, but batching
    # moves simulated time, so the served subsets can differ by a few
    # requests; wall time per served request is the fair unit.
    per_served_unbatched = unbatched_s / max(1, served_unbatched)
    per_served_batched = batched_s / max(1, served_batched)
    return {
        "requests": n_requests,
        "batch_max": batch_max,
        "queue_depth": queue_depth,
        "served_unbatched": served_unbatched,
        "served": served_batched,
        "max_batch_drained": max(r.batch_size for r in batch_report.responses),
        "unbatched_s": unbatched_s,
        "batched_s": batched_s,
        "requests_per_s": served_batched / batched_s,
        "speedup": per_served_unbatched / per_served_batched,
    }


def _bench_crawl_processes(
    n_apps: int, seed: int, processes: int = 3
) -> dict[str, Any]:
    """Sequential vs supervised multi-process crawl under faults + a kill.

    The scaling-trajectory component: records/s at 1 vs N processes at
    ``fault_rate=0.2``, with one worker SIGKILLed mid-shard so the
    measured speedup includes the price of detection, journal recovery,
    and a respawn.  Byte-identity of the two runs is asserted (it is
    the supervisor's whole contract).  Not gated: process spawn cost is
    wall-clock noisy and the workload is small at CI scale.
    """
    from repro.config import ScaleConfig
    from repro.crawler.checkpoint import record_to_jsonable
    from repro.crawler.crawler import make_crawler
    from repro.crawler.supervisor import KILL, ShardSupervisor, WorkerChaos
    from repro.ecosystem.simulation import run_simulation

    world = run_simulation(
        ScaleConfig(scale=0.01, master_seed=seed, fault_rate=0.2)
    )
    apps = sorted(a.app_id for a in world.registry.all_apps())[:n_apps]
    rng_state = world.installer.rng_state()

    sequential_s, sequential = _time(lambda: make_crawler(world).crawl_many(apps))

    def supervised():
        world.installer.restore_rng_state(rng_state)
        supervisor = ShardSupervisor(
            make_crawler(world),
            processes=processes,
            chaos=WorkerChaos(mode=KILL, shard=0, app_index=1),
        )
        return supervisor.crawl(apps), supervisor

    supervised_s, (records, supervisor) = _time(supervised)
    assert {a: record_to_jsonable(r) for a, r in records.items()} == {
        a: record_to_jsonable(r) for a, r in sequential.items()
    }
    return {
        "apps": len(apps),
        "processes": processes,
        "fault_rate": 0.2,
        "worker_kills": supervisor.worker_deaths,
        "restarts": supervisor.restarts,
        "sequential_s": sequential_s,
        "supervised_s": supervised_s,
        "records_per_s_1p": len(apps) / sequential_s,
        "records_per_s_np": len(apps) / supervised_s,
        "speedup": sequential_s / supervised_s,
    }


def _bench_store_ingest(n_rows: int, seed: int) -> dict[str, Any]:
    """Analytics-store ingest + query throughput vs raw-artifact reparse.

    The store's value proposition in numbers: ingest N synthetic
    verdict rows once (rows/s recorded), then compute the operational
    aggregates (SLO burn-down, rung mix, version mix) from SQL, against
    the naive alternative a storeless report has — re-parse the JSONL
    artifact and aggregate in Python on every query.  Not gated: both
    sides are small at CI scale and sqlite cold-cache effects are
    wall-clock noisy.
    """
    import tempfile

    from repro.store import (
        AnalyticsStore,
        ingest_service_report,
        rung_mix,
        slo_burndown,
        version_mix,
    )

    rnd = random.Random(seed)
    outcomes = ("served", "served", "served", "overloaded", "deadline")
    rungs = ("full", "lite", "cached", "stale", "advisory")
    responses = []
    for index in range(n_rows):
        outcome = outcomes[rnd.randrange(len(outcomes))]
        arrival = index * 0.25
        responses.append({
            "app_id": f"app{index % 97:05d}",
            "outcome": outcome,
            "rung": rungs[rnd.randrange(len(rungs))]
            if outcome == "served" else "none",
            "verdict": rnd.random() < 0.3 if outcome == "served" else None,
            "risk_score": round(rnd.random() * 100.0, 3),
            "confidence": "high", "priority": "interactive",
            "reason": "", "advisories": [], "cache_state": "",
            "arrival_s": arrival, "started_s": arrival + 0.5,
            "finished_s": arrival + 1.5, "attempts": 1, "faults": 0,
            "batch_size": 4, "model_version": index % 3,
        })
    text = "".join(
        json.dumps(r, sort_keys=True) + "\n" for r in responses
    )

    def naive():
        rows = [json.loads(line) for line in text.splitlines()]
        t0 = min(r["arrival_s"] for r in rows)
        windows: dict[int, list[int]] = {}
        mix: dict[int, dict[str, int]] = {}
        versions: dict[int, dict[str, int]] = {}
        for row in rows:
            window = int((row["finished_s"] - t0) / 60.0)
            counts = windows.setdefault(window, [0, 0])
            counts[0] += 1
            served = row["outcome"] == "served"
            counts[1] += served
            if served:
                per = mix.setdefault(window, {})
                per[row["rung"]] = per.get(row["rung"], 0) + 1
            per_version = versions.setdefault(row["model_version"], {})
            per_version[row["outcome"]] = \
                per_version.get(row["outcome"], 0) + 1
        return windows, mix, versions

    naive_s, _ = _time(naive, repeats=3)
    with tempfile.TemporaryDirectory() as tmp:
        store = AnalyticsStore(os.path.join(tmp, "bench.sqlite"))
        try:
            ingest_s, _ = _time(lambda: ingest_service_report(
                store, {"responses": responses}, label="bench"
            ))
            fast_s, _ = _time(
                lambda: (
                    slo_burndown(store, window_s=60.0),
                    rung_mix(store, window_s=60.0),
                    version_mix(store),
                ),
                repeats=3,
            )
        finally:
            store.close()
    return {
        "n_rows": n_rows,
        "ingest_s": ingest_s,
        "ingest_rows_per_s": n_rows / ingest_s,
        "query_rows_per_s": n_rows / fast_s,
        "naive_s": naive_s,
        "fast_s": fast_s,
        "speedup": naive_s / fast_s,
    }


# -- the harness -------------------------------------------------------------


def run_bench(mode: str = "quick", seed: int = 2012) -> dict[str, Any]:
    """Run every component benchmark; return the report dict.

    ``mode="quick"`` sizes workloads for CI (a couple of minutes);
    ``mode="full"`` runs the acceptance-scale workloads (10K names for
    clustering) and is what the committed ``BENCH_<n>.json`` records.
    """
    import numpy as np

    if mode not in ("quick", "full"):
        raise ValueError(f"unknown mode: {mode!r}")
    full = mode == "full"
    result = _pipeline_result(scale=0.02 if full else 0.01, seed=seed)

    components = {
        "feature_matrix": _bench_feature_matrix(
            result, rows=100_000 if full else 20_000
        ),
        "name_clustering": _bench_name_clustering(
            n_names=10_000 if full else 2_000, seed=seed
        ),
        "similarity_kernel": _bench_similarity_kernel(
            n_names=1_500 if full else 600, seed=seed
        ),
        "smo": _bench_smo(n_samples=600 if full else 300, seed=seed),
        "batched_service": _bench_batched_service(
            result,
            n_requests=120 if full else 60,
            batch_max=8,
            seed=seed,
        ),
        "crawl_processes": _bench_crawl_processes(
            n_apps=96 if full else 24, seed=seed
        ),
        "store_ingest": _bench_store_ingest(
            n_rows=50_000 if full else 10_000, seed=seed
        ),
    }
    return {
        "schema_version": BENCH_VERSION,
        "bench_version": BENCH_VERSION,  # legacy alias for old tooling
        "mode": mode,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "components": components,
        "gates": {
            f"{name}_speedup": components[name]["speedup"]
            for name in GATED_COMPONENTS
        },
    }


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.2,
) -> list[str]:
    """Regression check: gated ratios must not drop > ``tolerance``.

    Returns a list of human-readable failures (empty = pass).  Only the
    machine-independent speedup ratios are gated; extra gates in the
    current report (new components) pass trivially.  On top of the
    relative check, :data:`ABSOLUTE_GATES` demands that the batched
    service and the SMO row cache keep *winning at all* — a fast path
    slower than its reference is a bug, whatever the baseline says.
    """
    failures = []
    gates = current.get("gates", {})
    for gate, floor, strict in ABSOLUTE_GATES:
        measured = gates.get(gate)
        if measured is None:
            failures.append(f"{gate}: missing from the current report")
        elif measured < floor or (strict and measured == floor):
            op = ">" if strict else ">="
            failures.append(
                f"{gate}: {measured:.2f}x violates the absolute floor "
                f"(must be {op} {floor:.2f}x: the fast path must not "
                "lose to its reference)"
            )
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')!r} "
            f"baseline={baseline.get('mode')!r} — ratios are only "
            "comparable between same-mode runs"
        )
    for gate, reference in sorted(baseline.get("gates", {}).items()):
        measured = current.get("gates", {}).get(gate)
        if measured is None:
            failures.append(f"{gate}: missing from the current report")
            continue
        floor = (1.0 - tolerance) * reference
        if measured < floor:
            failures.append(
                f"{gate}: {measured:.2f}x is below {floor:.2f}x "
                f"(baseline {reference:.2f}x - {tolerance:.0%})"
            )
    return failures


def render(report: dict[str, Any]) -> str:
    lines = [
        f"bench mode={report['mode']} seed={report['seed']} "
        f"(python {report['python']}, numpy {report['numpy']})"
    ]
    timing_keys = (
        "naive_s", "fast_s", "unbatched_s", "batched_s",
        "sequential_s", "supervised_s", "speedup",
    )
    for name, data in report["components"].items():
        gated = " [gated]" if name in GATED_COMPONENTS else ""
        slow = data.get(
            "naive_s", data.get("unbatched_s", data.get("sequential_s"))
        )
        fast = data.get(
            "fast_s", data.get("batched_s", data.get("supervised_s"))
        )
        detail = ", ".join(
            f"{key}={value:.3g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in data.items()
            if key not in timing_keys
        )
        lines.append(
            f"  {name:<18} {data['speedup']:6.1f}x "
            f"(reference {slow:.2f}s -> fast {fast:.2f}s; {detail}){gated}"
        )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point for ``repro bench`` (and ``benchmarks/baseline.py``)."""
    report = run_bench(mode="full" if args.full else "quick", seed=args.seed)
    print(render(report))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.compare:
        # A missing baseline is a first-run / fresh-checkout situation,
        # not a regression: warn and pass so CI can bootstrap the
        # baseline instead of tracebacking.
        if not os.path.exists(args.compare):
            print(
                f"warning: baseline {args.compare} not found; skipping "
                "the regression gate (write one with --out)",
                file=sys.stderr,
            )
            return 0
        with open(args.compare, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = compare(report, baseline, tolerance=args.tolerance)
        if failures:
            print(f"PERF REGRESSION vs {args.compare}:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            f"no regression vs {args.compare} "
            f"(tolerance {args.tolerance:.0%} on "
            f"{len(baseline.get('gates', {}))} gated ratios)"
        )
    return 0
