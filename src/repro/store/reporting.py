"""``repro report``: the paper's evaluation plus operational views,
rendered from stored data.

The paper-table section must be **byte-identical** to what the
in-process run (``repro experiments``) prints for the same seed: the
store holds the measured rows, the rendering goes through the same
:class:`~repro.analysis.report.ExperimentReport`, and a CI job diffs
the two outputs.  The operational sections are the new capability —
temporal views no single in-process object ever held, computed by
:mod:`repro.store.queries` over everything the store has ingested.
"""

from __future__ import annotations

import json

from repro.analysis.report import ExperimentReport, render_table
from repro.store.db import AnalyticsStore
from repro.store.queries import (
    appnet_evolution,
    campaign_timeline,
    census,
    rung_mix,
    slo_burndown,
    version_mix,
)

__all__ = [
    "stored_experiment_reports",
    "render_paper_tables",
    "render_operational_views",
    "render_report",
]


def stored_experiment_reports(store: AnalyticsStore) -> list[ExperimentReport]:
    """Rebuild the latest stored experiment run's reports."""
    ingest_id = store.latest_ingest("experiments")
    if ingest_id is None:
        return []
    reports = []
    for experiment_id, title, notes, rows in store.query(
        "SELECT experiment_id, title, notes, rows FROM experiments "
        "WHERE ingest_id = ? ORDER BY ord", (ingest_id,)
    ):
        report = ExperimentReport(
            experiment_id=str(experiment_id), title=str(title),
            notes=str(notes),
        )
        report.rows = [tuple(row) for row in json.loads(rows)]
        reports.append(report)
    return reports


def render_paper_tables(store: AnalyticsStore) -> str:
    """Exactly the bytes ``repro experiments`` prints for the same run."""
    return "".join(
        report.render() + "\n\n" for report in stored_experiment_reports(store)
    )


def _fmt_span(start_s: float, end_s: float) -> str:
    return f"[{start_s:.0f}s, {end_s:.0f}s)"


def render_operational_views(
    store: AnalyticsStore,
    window_s: float = 60.0,
    slo_target: float = 0.99,
) -> str:
    """The fleet views: census, SLO burn-down, rung/version mixes,
    AppNet evolution, campaign timelines — only sections with data."""
    sections: list[str] = []

    rows = census(store)
    sections.append("== store census ==")
    sections.append(f"schema_version: {store.schema_version()}")
    if rows:
        sections.append(render_table(
            ["ingest", "kind", "label", "rows"],
            [(r.ingest_id, r.kind, r.label, r.rows) for r in rows],
        ))
    else:
        sections.append("(empty store)")

    burndown = slo_burndown(store, window_s=window_s, target=slo_target)
    if burndown:
        sections.append(
            f"== SLO burn-down (availability target {slo_target:.1%}, "
            f"{window_s:.0f}s windows, simulated clock) =="
        )
        sections.append(render_table(
            ["window", "span", "requests", "served", "violations",
             "budget spent"],
            [
                (w.window, _fmt_span(w.start_s, w.end_s), w.requests,
                 w.served, w.violations, f"{w.budget_spent:.1%}")
                for w in burndown
            ],
        ))

    mix = rung_mix(store, window_s=window_s)
    if mix:
        rung_names = sorted({rung for w in mix for rung in w.rungs})
        sections.append(
            f"== degradation-rung mix ({window_s:.0f}s windows) =="
        )
        sections.append(render_table(
            ["window", "span", "served"] + rung_names,
            [
                (w.window, _fmt_span(w.start_s, w.end_s), w.served,
                 *(w.rungs.get(rung, 0) for rung in rung_names))
                for w in mix
            ],
        ))

    versions = version_mix(store)
    if versions:
        sections.append("== model-version served/rung mix ==")
        sections.append(render_table(
            ["version", "served", "overloaded", "deadline", "rungs"],
            [
                (
                    f"v{v.model_version}",
                    v.outcomes.get("served", 0),
                    v.outcomes.get("overloaded", 0),
                    v.outcomes.get("deadline", 0),
                    ", ".join(
                        f"{rung}={count}"
                        for rung, count in sorted(v.rungs.items())
                    ) or "-",
                )
                for v in versions
            ],
        ))

    incidents = store.query(
        "SELECT ingest_id, t, canary_version, restored_version, reason "
        "FROM rollout_incidents ORDER BY ingest_id, ord"
    )
    if incidents:
        sections.append("== rollout incidents ==")
        sections.append(render_table(
            ["ingest", "t", "canary", "restored", "reason"],
            [
                (i, f"{t:.1f}s", f"v{c}", f"v{r}", reason)
                for i, t, c, r, reason in incidents
            ],
        ))

    evolution = appnet_evolution(store)
    if evolution:
        sections.append("== AppNet evolution (per monitoring epoch) ==")
        sections.append(render_table(
            ["epoch", "observed", "alive", "deleted (cum)", "events"],
            [
                (
                    e.epoch, e.observed, e.alive, e.deleted_cumulative,
                    ", ".join(
                        f"{kind}={count}"
                        for kind, count in sorted(e.events.items())
                    ) or "-",
                )
                for e in evolution
            ],
        ))

    timeline = campaign_timeline(store)
    if timeline:
        sections.append("== campaign timeline (forensic events) ==")
        sections.append(render_table(
            ["epoch", "kind", "apps", "affected"],
            [
                (
                    row.epoch, row.kind, row.count,
                    ", ".join(row.apps[:4])
                    + (", ..." if row.count > 4 else ""),
                )
                for row in timeline
            ],
        ))

    return "\n".join(sections) + "\n"


def render_report(
    store: AnalyticsStore,
    paper_only: bool = False,
    window_s: float = 60.0,
    slo_target: float = 0.99,
) -> str:
    """The whole ``repro report`` output."""
    tables = render_paper_tables(store)
    if paper_only:
        return tables
    parts = []
    if tables:
        parts.append("== paper tables (from store) ==\n")
        parts.append(tables)
    parts.append(
        render_operational_views(
            store, window_s=window_s, slo_target=slo_target
        )
    )
    return "".join(parts)
