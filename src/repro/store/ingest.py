"""Sinks and ingesters: everything that writes the analytics store.

One artifact = one **ingest** = one atomic sqlite transaction, keyed by
the sha256 of its cleaned content.  Re-offering an artifact the store
already holds is detected before any write begins and changes zero
bytes — ingestion is idempotent by construction, so crash-and-rerun
loops (the operational norm) can re-offer everything blindly.

Corruption policy (same stance as the crawl WAL): a torn *final* line
of a JSONL input is the expected crash artifact and is silently
dropped; an unparseable *interior* line is quarantined to a
counter-suffixed ``.corrupt`` sidecar next to the input and ingestion
continues with the survivors.  The content hash is computed over the
survivors, so re-ingesting a repaired input is still a no-op.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.crawler.checkpoint import _decode_line, next_sidecar_path
from repro.obs.observer import TracingObserver
from repro.store.db import AnalyticsStore, canonical_json, content_sha256

__all__ = [
    "IngestResult",
    "StoreSink",
    "read_jsonl_tolerant",
    "ingest_trace",
    "ingest_trace_text",
    "ingest_metrics",
    "ingest_metrics_text",
    "ingest_experiments",
    "ingest_service_report",
    "ingest_incidents",
    "ingest_monitor_history",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class IngestResult:
    """What one ingest attempt did (``skipped`` = already durable)."""

    kind: str
    label: str
    ingest_id: int
    rows: int
    skipped: bool = False
    torn: bool = False
    quarantined: int = 0

    def describe(self) -> str:
        note = "already ingested, unchanged" if self.skipped else \
            f"{self.rows} rows"
        extras = []
        if self.torn:
            extras.append("torn final line dropped")
        if self.quarantined:
            extras.append(f"{self.quarantined} corrupt line(s) quarantined")
        tail = f" ({'; '.join(extras)})" if extras else ""
        return f"{self.kind}[{self.label}]: {note}{tail}"


# -- tolerant JSONL reading --------------------------------------------------


def read_jsonl_tolerant(
    path: str | Path,
) -> tuple[list[dict], bytes, bool, int]:
    """Read a JSONL artifact the way the crawl WAL reads its journal.

    Returns ``(rows, clean_bytes, torn, quarantined)`` where
    ``clean_bytes`` is exactly the surviving lines (the idempotency-key
    material), ``torn`` flags a dropped unterminated/unparseable final
    line, and ``quarantined`` counts interior lines moved to a
    ``.corrupt`` sidecar.
    """
    path = Path(path)
    raw = path.read_bytes()
    pieces = raw.split(b"\n")
    tail = pieces.pop()  # b"" when the file ends with a newline
    torn = bool(tail)
    rows: list[dict] = []
    good: list[bytes] = []
    bad: list[bytes] = []
    for index, piece in enumerate(pieces):
        try:
            payload = json.loads(piece)
            if not isinstance(payload, dict):
                raise ValueError("not an object")
        except ValueError:
            if index == len(pieces) - 1:
                torn = True  # torn-write artifact: truncate silently
            else:
                bad.append(piece)
            continue
        rows.append(payload)
        good.append(piece)
    if bad:
        sidecar = next_sidecar_path(path)
        with open(sidecar, "wb") as handle:
            for piece in bad:
                handle.write(piece + b"\n")
        logger.warning(
            "quarantined %d corrupt line(s) of %s to sidecar %s; "
            "ingesting the %d survivors",
            len(bad), path, sidecar, len(good),
        )
    return rows, b"".join(p + b"\n" for p in good), torn, len(bad)


# -- traces ------------------------------------------------------------------


def _flatten_span(
    span: dict, rows: list[tuple], events: list[tuple],
    root_ord: int, parent_ord: int | None, depth: int,
) -> None:
    ord_ = len(rows)
    rows.append((
        ord_, root_ord, parent_ord, depth,
        str(span.get("category", "")), str(span.get("key", "")),
        str(span.get("name", "")),
        float(span.get("t_start", 0.0)), float(span.get("t_end", 0.0)),
        canonical_json(span.get("attrs", {})),
    ))
    for index, event in enumerate(span.get("events", ())):
        events.append((
            ord_, index, str(event.get("name", "")),
            float(event.get("t", 0.0)),
            canonical_json(event.get("attrs", {})),
        ))
    for child in span.get("children", ()):
        _flatten_span(child, rows, events, root_ord, ord_, depth + 1)


def ingest_trace_text(
    store: AnalyticsStore, text: str | bytes, label: str = "",
    torn: bool = False, quarantined: int = 0,
) -> IngestResult:
    """Ingest a canonical trace export (the ``Tracer.to_jsonl`` text)."""
    if isinstance(text, bytes):
        raw_lines = [ln for ln in text.split(b"\n") if ln]
        roots = [json.loads(ln) for ln in raw_lines]
        clean = b"".join(ln + b"\n" for ln in raw_lines)
    else:
        roots = [json.loads(ln) for ln in text.splitlines() if ln]
        clean = text
    sha = content_sha256(clean)
    existing = store.find_ingest("trace", sha)
    span_rows: list[tuple] = []
    event_rows: list[tuple] = []
    for root in roots:
        _flatten_span(root, span_rows, event_rows,
                      root_ord=len(span_rows), parent_ord=None, depth=0)
    if existing is not None:
        return IngestResult("trace", label, existing, len(span_rows),
                            skipped=True, torn=torn, quarantined=quarantined)
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "trace", label, sha, len(span_rows)
        )
        con.executemany(
            "INSERT INTO spans VALUES(?,?,?,?,?,?,?,?,?,?,?)",
            [(ingest_id, *row) for row in span_rows],
        )
        con.executemany(
            "INSERT INTO span_events VALUES(?,?,?,?,?,?)",
            [(ingest_id, *row) for row in event_rows],
        )
    return IngestResult("trace", label, ingest_id, len(span_rows),
                        torn=torn, quarantined=quarantined)


def ingest_trace(
    store: AnalyticsStore, path: str | Path, label: str | None = None
) -> IngestResult:
    """Ingest a ``--trace`` JSONL export file (torn/corrupt tolerated)."""
    _rows, clean, torn, quarantined = read_jsonl_tolerant(path)
    return ingest_trace_text(
        store, clean, label=label if label is not None else str(path),
        torn=torn, quarantined=quarantined,
    )


# -- metrics -----------------------------------------------------------------


def _metric_row(ord_: int, series: dict) -> tuple:
    histogram = series.get("type") == "histogram"
    return (
        ord_, str(series.get("type", "")), str(series.get("name", "")),
        canonical_json(series.get("labels", {})),
        None if histogram else float(series.get("value", 0.0)),
        float(series["sum"]) if histogram else None,
        int(series["count"]) if histogram else None,
        canonical_json(series["edges"]) if histogram else None,
        canonical_json(series["counts"]) if histogram else None,
    )


def ingest_metrics_text(
    store: AnalyticsStore, text: str | bytes, label: str = "",
    torn: bool = False, quarantined: int = 0,
) -> IngestResult:
    """Ingest a metrics JSONL dump (the ``MetricsRegistry.to_jsonl`` text)."""
    if isinstance(text, bytes):
        text = text.decode("utf-8")
    series = [json.loads(ln) for ln in text.splitlines() if ln]
    sha = content_sha256(text)
    existing = store.find_ingest("metrics", sha)
    if existing is not None:
        return IngestResult("metrics", label, existing, len(series),
                            skipped=True, torn=torn, quarantined=quarantined)
    rows = [_metric_row(i, s) for i, s in enumerate(series)]
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "metrics", label, sha, len(rows)
        )
        con.executemany(
            "INSERT INTO metrics VALUES(?,?,?,?,?,?,?,?,?,?)",
            [(ingest_id, *row) for row in rows],
        )
    return IngestResult("metrics", label, ingest_id, len(rows),
                        torn=torn, quarantined=quarantined)


def ingest_metrics(
    store: AnalyticsStore, path: str | Path, label: str | None = None
) -> IngestResult:
    """Ingest a ``--metrics`` JSONL export file (torn/corrupt tolerated)."""
    _rows, clean, torn, quarantined = read_jsonl_tolerant(path)
    return ingest_metrics_text(
        store, clean, label=label if label is not None else str(path),
        torn=torn, quarantined=quarantined,
    )


# -- the Observer-compatible sink --------------------------------------------


class StoreSink(TracingObserver):
    """A :class:`TracingObserver` that can persist what it saw.

    Drop-in wherever an ``Observer`` goes (``set_observer``,
    ``observation(...)``); at the end of the run :meth:`flush` sinks
    the tracer's canonical spans/events and the metrics snapshot into
    an analytics store — the same bytes ``--trace`` / ``--metrics``
    would have exported, so a file export ingested later is recognised
    as a duplicate and skipped.
    """

    def flush(
        self, store: AnalyticsStore, label: str = ""
    ) -> list[IngestResult]:
        results = []
        trace_text = self.tracer.to_jsonl()
        if trace_text:
            results.append(ingest_trace_text(store, trace_text, label=label))
        metrics_text = self.metrics.to_jsonl()
        if metrics_text:
            results.append(
                ingest_metrics_text(store, metrics_text, label=label)
            )
        return results


# -- experiments -------------------------------------------------------------


def ingest_experiments(
    store: AnalyticsStore, reports: Iterable[Any], label: str = ""
) -> IngestResult:
    """Persist ``ExperimentReport`` results (the paper's tables/figures)."""
    payload = [
        {
            "experiment_id": report.experiment_id,
            "title": report.title,
            "notes": report.notes,
            "rows": [list(row) for row in report.rows],
        }
        for report in reports
    ]
    text = canonical_json(payload)
    sha = content_sha256(text)
    existing = store.find_ingest("experiments", sha)
    if existing is not None:
        return IngestResult("experiments", label, existing, len(payload),
                            skipped=True)
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "experiments", label, sha, len(payload)
        )
        con.executemany(
            "INSERT INTO experiments VALUES(?,?,?,?,?,?)",
            [
                (ingest_id, ord_, entry["experiment_id"], entry["title"],
                 entry["notes"], canonical_json(entry["rows"]))
                for ord_, entry in enumerate(payload)
            ],
        )
    return IngestResult("experiments", label, ingest_id, len(payload))


# -- verdict histories -------------------------------------------------------


def _verdict_row(ord_: int, response: dict) -> tuple:
    verdict = response.get("verdict")
    return (
        ord_, str(response["app_id"]), str(response["outcome"]),
        str(response.get("rung", "none")),
        None if verdict is None else int(bool(verdict)),
        float(response.get("risk_score", 50.0)),
        str(response.get("confidence", "none")),
        str(response.get("priority", "interactive")),
        str(response.get("cache_state", "")),
        str(response.get("reason", "")),
        float(response.get("arrival_s", 0.0)),
        float(response.get("started_s", 0.0)),
        float(response.get("finished_s", 0.0)),
        int(response.get("attempts", 0)), int(response.get("faults", 0)),
        int(response.get("batch_size", 1)),
        int(response.get("model_version", 0)),
    )


def _incident_row(ord_: int, incident: Any) -> tuple:
    if not isinstance(incident, dict):
        incident = incident.jsonable()
    return (
        ord_, float(incident["t"]), int(incident["canary_version"]),
        int(incident["restored_version"]), str(incident["reason"]),
        int(incident.get("disagreements", 0)),
        int(incident.get("canary_scored", 0)),
    )


def ingest_service_report(
    store: AnalyticsStore,
    snapshot: dict,
    label: str = "",
    incidents: Iterable[Any] | None = None,
) -> IngestResult:
    """Persist one serve run: a ``ServiceReport.snapshot()`` + incidents.

    The full snapshot is kept verbatim (so the run can be rebuilt with
    ``ServiceReport.from_snapshot`` and diffed across sessions) and the
    responses are unpacked into queryable ``verdicts`` rows.  Incidents
    default to the snapshot's own ``incidents`` key, so ingesting a
    ``--snapshot-out`` file hashes identically to the in-process sink.
    """
    if incidents is None:
        incidents = snapshot.get("incidents", ())
    incident_rows = [_incident_row(i, inc) for i, inc in enumerate(incidents)]
    body = {k: v for k, v in snapshot.items() if k != "incidents"}
    text = canonical_json(
        {"snapshot": body, "incidents": incident_rows}
    )
    sha = content_sha256(text)
    responses = snapshot.get("responses", [])
    existing = store.find_ingest("serve", sha)
    if existing is not None:
        return IngestResult("serve", label, existing, len(responses),
                            skipped=True)
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "serve", label, sha, len(responses)
        )
        con.execute(
            "INSERT INTO serve_runs VALUES(?,?)",
            (ingest_id, canonical_json(body)),
        )
        con.executemany(
            "INSERT INTO verdicts VALUES(?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?,?)",
            [(ingest_id, *_verdict_row(i, r)) for i, r in enumerate(responses)],
        )
        con.executemany(
            "INSERT INTO rollout_incidents VALUES(?,?,?,?,?,?,?,?)",
            [(ingest_id, *row) for row in incident_rows],
        )
    return IngestResult("serve", label, ingest_id, len(responses))


def ingest_incidents(
    store: AnalyticsStore, path: str | Path, label: str | None = None
) -> IngestResult:
    """Ingest a standalone rollout-incident JSONL file."""
    rows, clean, torn, quarantined = read_jsonl_tolerant(path)
    label = label if label is not None else str(path)
    sha = content_sha256(clean)
    existing = store.find_ingest("incidents", sha)
    if existing is not None:
        return IngestResult("incidents", label, existing, len(rows),
                            skipped=True, torn=torn, quarantined=quarantined)
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "incidents", label, sha, len(rows)
        )
        con.executemany(
            "INSERT INTO rollout_incidents VALUES(?,?,?,?,?,?,?,?)",
            [(ingest_id, *_incident_row(i, r)) for i, r in enumerate(rows)],
        )
    return IngestResult("incidents", label, ingest_id, len(rows),
                        torn=torn, quarantined=quarantined)


# -- monitor histories -------------------------------------------------------


def ingest_monitor_history(
    store: AnalyticsStore, directory: str | Path, label: str | None = None
) -> IngestResult:
    """Ingest a monitor history store (the ``monitor.jsonl`` WAL).

    Read-only: the journal is decoded with the WAL's own checksummed
    line format (torn final line dropped, checksum-failed interior
    lines quarantined to a sidecar) but never rewritten — the monitor
    owns its journal; the analytics store only observes it.
    """
    directory = Path(directory)
    path = directory / "monitor.jsonl"
    label = label if label is not None else str(directory)
    raw = path.read_bytes() if path.exists() else b""
    pieces = raw.split(b"\n")
    tail = pieces.pop()
    torn = bool(tail)
    entries: list[dict] = []
    good: list[bytes] = []
    bad: list[bytes] = []
    for index, piece in enumerate(pieces):
        payload = _decode_line(piece)
        if payload is None:
            if index == len(pieces) - 1:
                torn = True
            else:
                bad.append(piece)
            continue
        entries.append(payload)
        good.append(piece)
    quarantined = 0
    if bad:
        sidecar = next_sidecar_path(path)
        with open(sidecar, "wb") as handle:
            for piece in bad:
                handle.write(piece + b"\n")
        quarantined = len(bad)
        logger.warning(
            "quarantined %d corrupt monitor line(s) of %s to sidecar %s",
            quarantined, path, sidecar,
        )
    sha = content_sha256(b"".join(p + b"\n" for p in good))
    observation_rows: list[tuple] = []
    event_rows: list[tuple] = []
    for entry in entries:
        app_id = entry.get("app_id")
        if not isinstance(app_id, str) or app_id == "__plan__":
            continue
        record = entry.get("record")
        if not isinstance(record, dict):
            continue
        observation_rows.append((
            len(observation_rows), int(entry.get("epoch", 0)), app_id,
            int(bool(record.get("summary_ok"))),
            len(entry.get("events", ())), canonical_json(record),
        ))
        for event in entry.get("events", ()):
            event_rows.append((
                len(event_rows), int(event.get("epoch", 0)),
                str(event.get("app_id", app_id)),
                str(event.get("kind", "")), str(event.get("detail", "")),
            ))
    existing = store.find_ingest("monitor", sha)
    if existing is not None:
        return IngestResult("monitor", label, existing,
                            len(observation_rows), skipped=True,
                            torn=torn, quarantined=quarantined)
    with store.transaction() as con:
        ingest_id = store.register_ingest(
            con, "monitor", label, sha, len(observation_rows)
        )
        con.executemany(
            "INSERT INTO observations VALUES(?,?,?,?,?,?,?)",
            [(ingest_id, *row) for row in observation_rows],
        )
        con.executemany(
            "INSERT INTO forensic_events VALUES(?,?,?,?,?,?)",
            [(ingest_id, *row) for row in event_rows],
        )
    return IngestResult("monitor", label, ingest_id, len(observation_rows),
                        torn=torn, quarantined=quarantined)
