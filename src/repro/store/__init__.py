"""``repro.store``: the fleet analytics store.

Every other subsystem in this codebase produces operational evidence —
tracer spans, metrics snapshots, verdict histories, monitor epochs,
forensic events, rollout incidents — and until now all of it evaporated
when the process exited.  This package is the durable side: a sqlite
store with

* **sinks** (:mod:`repro.store.ingest`) — an ``Observer``-compatible
  :class:`StoreSink` plus idempotent ingesters for every export the
  system writes,
* a **query layer** (:mod:`repro.store.queries`) — typed temporal
  aggregates windowed by the simulated clock,
* a **report renderer** (:mod:`repro.store.reporting`) — the paper's
  tables byte-identical to the in-process run, plus the operational
  views, all computed from stored data.
"""

from repro.store.db import SCHEMA_VERSION, AnalyticsStore
from repro.store.ingest import (
    IngestResult,
    StoreSink,
    ingest_experiments,
    ingest_incidents,
    ingest_metrics,
    ingest_metrics_text,
    ingest_monitor_history,
    ingest_service_report,
    ingest_trace,
    ingest_trace_text,
    read_jsonl_tolerant,
)
from repro.store.queries import (
    EpochEvolution,
    IngestRow,
    RungWindow,
    SloWindow,
    TimelineRow,
    VersionMix,
    appnet_evolution,
    campaign_timeline,
    census,
    rung_mix,
    slo_burndown,
    version_mix,
)
from repro.store.reporting import (
    render_operational_views,
    render_paper_tables,
    render_report,
)

__all__ = [
    "SCHEMA_VERSION",
    "AnalyticsStore",
    "IngestResult",
    "StoreSink",
    "ingest_experiments",
    "ingest_incidents",
    "ingest_metrics",
    "ingest_metrics_text",
    "ingest_monitor_history",
    "ingest_service_report",
    "ingest_trace",
    "ingest_trace_text",
    "read_jsonl_tolerant",
    "EpochEvolution",
    "IngestRow",
    "RungWindow",
    "SloWindow",
    "TimelineRow",
    "VersionMix",
    "appnet_evolution",
    "campaign_timeline",
    "census",
    "rung_mix",
    "slo_burndown",
    "version_mix",
    "render_operational_views",
    "render_paper_tables",
    "render_report",
]
