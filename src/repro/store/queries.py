"""Typed temporal queries over the analytics store.

Every function takes an :class:`~repro.store.db.AnalyticsStore`, runs
deterministically ordered SQL, and returns typed rows — the analytics
analogue of the in-process derived views (``ServiceReport`` tallies,
``MonitorReport`` censuses) but computed over *stored* history, across
any number of runs and sessions.

Time windows are windows of the **simulated clock** (the only clock
that ever reaches the store — see the observability determinism
contract), bucketed from the earliest arrival in the data, so the same
stored history always yields the same windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.db import AnalyticsStore

__all__ = [
    "IngestRow",
    "SloWindow",
    "RungWindow",
    "VersionMix",
    "EpochEvolution",
    "TimelineRow",
    "census",
    "slo_burndown",
    "rung_mix",
    "version_mix",
    "appnet_evolution",
    "campaign_timeline",
]


@dataclass(frozen=True)
class IngestRow:
    """One artifact the store holds."""

    ingest_id: int
    kind: str
    label: str
    schema_version: int
    rows: int


def census(store: AnalyticsStore) -> list[IngestRow]:
    """Everything ingested, oldest first."""
    return [
        IngestRow(int(i), str(k), str(label), int(v), int(n))
        for i, k, label, v, n in store.query(
            "SELECT id, kind, label, schema_version, n_rows "
            "FROM ingests ORDER BY id"
        )
    ]


# -- serving: SLO burn-down and degradation mix ------------------------------


@dataclass(frozen=True)
class SloWindow:
    """One simulated-clock window of the availability SLO burn-down.

    The SLO is availability-shaped: a request counts against the error
    budget when it was *not* served (shed at admission or expired in
    queue).  ``budget_spent`` is the cumulative fraction of the whole
    history's error budget consumed by the end of this window — the
    burn-down curve an on-call dashboard plots.
    """

    window: int
    start_s: float
    end_s: float
    requests: int
    served: int
    violations: int
    budget_spent: float


def slo_burndown(
    store: AnalyticsStore, window_s: float = 60.0, target: float = 0.99
) -> list[SloWindow]:
    """Availability burn-down over all stored verdicts, per window."""
    if not 0.0 < target < 1.0:
        raise ValueError(f"target must be in (0, 1), got {target}")
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    bounds = store.query(
        "SELECT min(arrival_s), count(*) FROM verdicts"
    )[0]
    if not bounds[1]:
        return []
    t0, total = float(bounds[0]), int(bounds[1])
    budget = max(1.0, (1.0 - target) * total)
    rows = store.query(
        "SELECT cast((finished_s - ?) / ? AS INTEGER) AS w, "
        "count(*), sum(outcome = 'served') "
        "FROM verdicts GROUP BY w ORDER BY w",
        (t0, window_s),
    )
    out: list[SloWindow] = []
    spent = 0
    for window, requests, served in rows:
        window, requests = int(window), int(requests)
        served = int(served or 0)
        spent += requests - served
        out.append(SloWindow(
            window=window,
            start_s=t0 + window * window_s,
            end_s=t0 + (window + 1) * window_s,
            requests=requests,
            served=served,
            violations=requests - served,
            budget_spent=spent / budget,
        ))
    return out


@dataclass(frozen=True)
class RungWindow:
    """Degradation-rung mix of served verdicts in one clock window."""

    window: int
    start_s: float
    end_s: float
    rungs: dict[str, int] = field(default_factory=dict)

    @property
    def served(self) -> int:
        return sum(self.rungs.values())


def rung_mix(store: AnalyticsStore, window_s: float = 60.0) -> list[RungWindow]:
    """Which ladder rung answered, per simulated-clock window."""
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    bounds = store.query(
        "SELECT min(arrival_s), count(*) FROM verdicts "
        "WHERE outcome = 'served'"
    )[0]
    if not bounds[1]:
        return []
    t0 = float(bounds[0])
    rows = store.query(
        "SELECT cast((finished_s - ?) / ? AS INTEGER) AS w, rung, count(*) "
        "FROM verdicts WHERE outcome = 'served' "
        "GROUP BY w, rung ORDER BY w, rung",
        (t0, window_s),
    )
    windows: dict[int, dict[str, int]] = {}
    for window, rung, count in rows:
        windows.setdefault(int(window), {})[str(rung)] = int(count)
    return [
        RungWindow(
            window=window,
            start_s=t0 + window * window_s,
            end_s=t0 + (window + 1) * window_s,
            rungs=rungs,
        )
        for window, rungs in sorted(windows.items())
    ]


@dataclass(frozen=True)
class VersionMix:
    """Outcome and rung tallies of one served model version."""

    model_version: int
    outcomes: dict[str, int] = field(default_factory=dict)
    rungs: dict[str, int] = field(default_factory=dict)


def version_mix(store: AnalyticsStore) -> list[VersionMix]:
    """Per-model-version served/rung mix across all stored serve runs."""
    outcome_rows = store.query(
        "SELECT model_version, outcome, count(*) FROM verdicts "
        "GROUP BY model_version, outcome ORDER BY model_version, outcome"
    )
    rung_rows = store.query(
        "SELECT model_version, rung, count(*) FROM verdicts "
        "WHERE outcome = 'served' "
        "GROUP BY model_version, rung ORDER BY model_version, rung"
    )
    outcomes: dict[int, dict[str, int]] = {}
    for version, outcome, count in outcome_rows:
        outcomes.setdefault(int(version), {})[str(outcome)] = int(count)
    rungs: dict[int, dict[str, int]] = {}
    for version, rung, count in rung_rows:
        rungs.setdefault(int(version), {})[str(rung)] = int(count)
    return [
        VersionMix(
            model_version=version,
            outcomes=outcomes[version],
            rungs=rungs.get(version, {}),
        )
        for version in sorted(outcomes)
    ]


# -- monitoring: AppNet evolution and campaign timelines ---------------------


@dataclass(frozen=True)
class EpochEvolution:
    """One monitoring epoch's census: the AppNet evolving over time."""

    epoch: int
    observed: int
    alive: int
    #: apps whose durable history records a deletion at or before here
    deleted_cumulative: int
    events: dict[str, int] = field(default_factory=dict)


def appnet_evolution(store: AnalyticsStore) -> list[EpochEvolution]:
    """Per-epoch app census over all stored monitor histories.

    The longitudinal view the paper's dataset never had (and Kagan et
    al.'s temporal analysis is built on): how many monitored apps were
    still alive, and what the forensic detectors saw, epoch by epoch.
    """
    observation_rows = store.query(
        "SELECT epoch, count(*), sum(summary_ok) FROM observations "
        "GROUP BY epoch ORDER BY epoch"
    )
    event_rows = store.query(
        "SELECT epoch, kind, count(*) FROM forensic_events "
        "GROUP BY epoch, kind ORDER BY epoch, kind"
    )
    events: dict[int, dict[str, int]] = {}
    for epoch, kind, count in event_rows:
        events.setdefault(int(epoch), {})[str(kind)] = int(count)
    out: list[EpochEvolution] = []
    deleted = 0
    for epoch, observed, alive in observation_rows:
        epoch = int(epoch)
        deleted += events.get(epoch, {}).get("deletion", 0)
        out.append(EpochEvolution(
            epoch=epoch,
            observed=int(observed),
            alive=int(alive or 0),
            deleted_cumulative=deleted,
            events=events.get(epoch, {}),
        ))
    return out


@dataclass(frozen=True)
class TimelineRow:
    """One (epoch, event-kind) step of the campaign timeline."""

    epoch: int
    kind: str
    count: int
    #: affected apps, canonically ordered (truncated views slice this)
    apps: tuple[str, ...] = ()


def campaign_timeline(store: AnalyticsStore) -> list[TimelineRow]:
    """Forensic events as a timeline: what changed, when, to which apps.

    Coordinated campaign moves (mass deletions after a crackdown,
    permission-grab waves) show up as same-epoch same-kind clusters.
    """
    rows = store.query(
        "SELECT epoch, kind, app_id FROM forensic_events "
        "ORDER BY epoch, kind, app_id"
    )
    grouped: dict[tuple[int, str], list[str]] = {}
    for epoch, kind, app_id in rows:
        grouped.setdefault((int(epoch), str(kind)), []).append(str(app_id))
    return [
        TimelineRow(epoch=epoch, kind=kind, count=len(apps),
                    apps=tuple(apps))
        for (epoch, kind), apps in sorted(grouped.items())
    ]
