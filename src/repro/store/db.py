"""The sqlite analytics store: schema, durability, determinism.

Why sqlite
----------
The store must survive process death mid-ingest (the same contract the
crawl WAL honours), admit a reader while a sink appends, and stay
byte-stable under re-ingestion.  sqlite in WAL journal mode gives all
three natively: transactions are atomic across a SIGKILL, WAL readers
see the last committed snapshot while a writer holds its transaction,
and — because sqlite's page allocation is a pure function of the
operation sequence — two stores built by the same ingest sequence are
byte-identical files.

Determinism contract
--------------------
* **Fresh builds are byte-deterministic.**  Ingesting the same inputs
  in the same order into a fresh store always produces the same file
  bytes (``tests/test_store.py`` asserts the file sha256).
* **Re-ingestion changes zero bytes.**  Every ingest is keyed by the
  sha256 of its (cleaned) content; a duplicate is detected *before any
  write transaction begins*, so re-running an ingest over an existing
  store leaves the file untouched.
* **Logical canonical form.**  After a crash *recovery* the physical
  page layout may legitimately differ from an uninterrupted build, so
  the cross-crash identity contract lives one level up:
  :meth:`AnalyticsStore.canonical_bytes` dumps every table in a
  canonical order and is byte-identical wherever the logical content
  is — the analogue of comparing journal *records*, not journal files.

Every row belongs to exactly one **ingest** (one artifact: a trace
export, a serve snapshot, a monitor history, …), stamped with the
store ``schema_version`` current at write time, so a reader can always
tell which schema era produced which rows.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

__all__ = ["SCHEMA_VERSION", "AnalyticsStore", "StoreSchemaError"]

#: bump on any table/column change; stamped into ``meta`` at creation
#: and onto every ingest row at write time
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta(
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS ingests(
    id             INTEGER PRIMARY KEY,
    kind           TEXT NOT NULL,
    label          TEXT NOT NULL,
    content_sha256 TEXT NOT NULL,
    schema_version INTEGER NOT NULL,
    n_rows         INTEGER NOT NULL,
    UNIQUE(kind, content_sha256)
);
CREATE TABLE IF NOT EXISTS spans(
    ingest_id  INTEGER NOT NULL,
    ord        INTEGER NOT NULL,
    root_ord   INTEGER NOT NULL,
    parent_ord INTEGER,
    depth      INTEGER NOT NULL,
    category   TEXT NOT NULL,
    key        TEXT NOT NULL,
    name       TEXT NOT NULL,
    t_start    REAL NOT NULL,
    t_end      REAL NOT NULL,
    attrs      TEXT NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS span_events(
    ingest_id INTEGER NOT NULL,
    span_ord  INTEGER NOT NULL,
    ord       INTEGER NOT NULL,
    name      TEXT NOT NULL,
    t         REAL NOT NULL,
    attrs     TEXT NOT NULL,
    PRIMARY KEY(ingest_id, span_ord, ord)
);
CREATE TABLE IF NOT EXISTS metrics(
    ingest_id INTEGER NOT NULL,
    ord       INTEGER NOT NULL,
    type      TEXT NOT NULL,
    name      TEXT NOT NULL,
    labels    TEXT NOT NULL,
    value     REAL,
    sum       REAL,
    count     INTEGER,
    edges     TEXT,
    counts    TEXT,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS experiments(
    ingest_id     INTEGER NOT NULL,
    ord           INTEGER NOT NULL,
    experiment_id TEXT NOT NULL,
    title         TEXT NOT NULL,
    notes         TEXT NOT NULL,
    rows          TEXT NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS serve_runs(
    ingest_id INTEGER PRIMARY KEY,
    snapshot  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS verdicts(
    ingest_id     INTEGER NOT NULL,
    ord           INTEGER NOT NULL,
    app_id        TEXT NOT NULL,
    outcome       TEXT NOT NULL,
    rung          TEXT NOT NULL,
    verdict       INTEGER,
    risk_score    REAL NOT NULL,
    confidence    TEXT NOT NULL,
    priority      TEXT NOT NULL,
    cache_state   TEXT NOT NULL,
    reason        TEXT NOT NULL,
    arrival_s     REAL NOT NULL,
    started_s     REAL NOT NULL,
    finished_s    REAL NOT NULL,
    attempts      INTEGER NOT NULL,
    faults        INTEGER NOT NULL,
    batch_size    INTEGER NOT NULL,
    model_version INTEGER NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS rollout_incidents(
    ingest_id        INTEGER NOT NULL,
    ord              INTEGER NOT NULL,
    t                REAL NOT NULL,
    canary_version   INTEGER NOT NULL,
    restored_version INTEGER NOT NULL,
    reason           TEXT NOT NULL,
    disagreements    INTEGER NOT NULL,
    canary_scored    INTEGER NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS observations(
    ingest_id  INTEGER NOT NULL,
    ord        INTEGER NOT NULL,
    epoch      INTEGER NOT NULL,
    app_id     TEXT NOT NULL,
    summary_ok INTEGER NOT NULL,
    n_events   INTEGER NOT NULL,
    record     TEXT NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
CREATE TABLE IF NOT EXISTS forensic_events(
    ingest_id INTEGER NOT NULL,
    ord       INTEGER NOT NULL,
    epoch     INTEGER NOT NULL,
    app_id    TEXT NOT NULL,
    kind      TEXT NOT NULL,
    detail    TEXT NOT NULL,
    PRIMARY KEY(ingest_id, ord)
);
"""

#: canonical dump order: every data table, name-ascending, rows by PK
_DUMP_TABLES = (
    ("ingests", "id"),
    ("experiments", "ingest_id, ord"),
    ("forensic_events", "ingest_id, ord"),
    ("metrics", "ingest_id, ord"),
    ("observations", "ingest_id, ord"),
    ("rollout_incidents", "ingest_id, ord"),
    ("serve_runs", "ingest_id"),
    ("span_events", "ingest_id, span_ord, ord"),
    ("spans", "ingest_id, ord"),
    ("verdicts", "ingest_id, ord"),
)


class StoreSchemaError(RuntimeError):
    """The store on disk was written by an incompatible schema era."""


def content_sha256(data: str | bytes) -> str:
    """The idempotency key of one ingest artifact."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def canonical_json(value: Any) -> str:
    """The one JSON spelling used everywhere in the store."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


class AnalyticsStore:
    """One sqlite analytics database (see module docstring).

    ``readonly=True`` opens an existing store without write access —
    the mode the concurrent-reader tests (and dashboards) use while a
    sink is appending in another connection or process.
    """

    def __init__(self, path: str | Path, readonly: bool = False) -> None:
        self.path = Path(path)
        self.readonly = readonly
        if readonly:
            if not self.path.exists():
                raise FileNotFoundError(f"no analytics store at {self.path}")
            self._con = sqlite3.connect(
                f"file:{self.path}?mode=ro", uri=True
            )
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._con = sqlite3.connect(self.path)
        if not readonly:
            # Journal mode is a property of the database file; a
            # read-only connection inherits it and must not set it.
            self._con.execute("PRAGMA journal_mode=WAL")
            # Same durability stance as the crawl WAL: a committed
            # transaction has been fsynced before control returns.
            self._con.execute("PRAGMA synchronous=FULL")
            self._init_schema()
        self._check_schema()

    # -- lifecycle ---------------------------------------------------------

    def _init_schema(self) -> None:
        with self._con:
            self._con.executescript(_SCHEMA)
            self._con.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES(?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )

    def _check_schema(self) -> None:
        try:
            row = self._con.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError as exc:
            raise StoreSchemaError(
                f"{self.path} is not an analytics store: {exc}"
            ) from None
        if row is None or int(row[0]) > SCHEMA_VERSION:
            raise StoreSchemaError(
                f"{self.path} was written by schema era "
                f"{row[0] if row else '?'}; this build reads <= "
                f"{SCHEMA_VERSION}"
            )

    def close(self) -> None:
        if self._con is None:
            return
        if not self.readonly:
            # Fold the WAL back into the main file so the store is one
            # self-contained artifact (and byte-comparable) at rest.
            try:
                self._con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.OperationalError:  # pragma: no cover - racy
                pass
        self._con.close()
        self._con = None

    def __enter__(self) -> "AnalyticsStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[sqlite3.Connection]:
        """One atomic write unit (BEGIN IMMEDIATE … COMMIT/ROLLBACK)."""
        if self.readonly:
            raise StoreSchemaError(f"{self.path} was opened read-only")
        self._con.execute("BEGIN IMMEDIATE")
        try:
            yield self._con
        except BaseException:
            self._con.rollback()
            raise
        self._con.commit()

    def find_ingest(self, kind: str, sha: str) -> int | None:
        """The existing ingest id for this content, or None.

        The duplicate check happens *here*, before any write
        transaction opens — a skipped re-ingest must not touch the
        file at all.
        """
        row = self._con.execute(
            "SELECT id FROM ingests WHERE kind = ? AND content_sha256 = ?",
            (kind, sha),
        ).fetchone()
        return None if row is None else int(row[0])

    def register_ingest(
        self, con: sqlite3.Connection, kind: str, label: str,
        sha: str, n_rows: int,
    ) -> int:
        """Insert the ingest row inside an open transaction."""
        cursor = con.execute(
            "INSERT INTO ingests(kind, label, content_sha256, "
            "schema_version, n_rows) VALUES(?, ?, ?, ?, ?)",
            (kind, label, sha, SCHEMA_VERSION, n_rows),
        )
        return int(cursor.lastrowid)

    # -- reading -----------------------------------------------------------

    def query(self, sql: str, params: tuple = ()) -> list[tuple]:
        return self._con.execute(sql, params).fetchall()

    def schema_version(self) -> int:
        row = self._con.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0])

    def latest_ingest(self, kind: str) -> int | None:
        """The most recent ingest id of *kind* (None when absent)."""
        row = self._con.execute(
            "SELECT max(id) FROM ingests WHERE kind = ?", (kind,)
        ).fetchone()
        return None if row[0] is None else int(row[0])

    def canonical_bytes(self) -> bytes:
        """The store's logical content in one canonical byte string.

        Tables in fixed order, rows in primary-key order, each row one
        canonical JSON line — byte-identical wherever the logical
        content is, independent of sqlite's physical page layout.
        """
        lines: list[str] = [canonical_json(
            {"meta": {"schema_version": self.schema_version()}}
        )]
        for table, order in _DUMP_TABLES:
            columns = [
                str(row[1]) for row in
                self._con.execute(f"PRAGMA table_info({table})")
            ]
            for row in self._con.execute(
                f"SELECT * FROM {table} ORDER BY {order}"  # noqa: S608
            ):
                lines.append(canonical_json(
                    {"table": table, "row": dict(zip(columns, row))}
                ))
        return "".join(line + "\n" for line in lines).encode("utf-8")
