"""The online verdict service: admission, cache, bulkheads, degradation.

Unit tests for the service's parts (queue, cache, bulkhead, typed
request/response values) plus end-to-end behaviour on a private small
world — the shared session fixtures are *not* used because serving
advances the world's installer RNG, and these tests need worlds whose
state they fully own.
"""

from __future__ import annotations

import pytest

from repro.config import ScaleConfig, ServiceConfig
from repro.core.pipeline import FrappePipeline
from repro.crawler.resilience import CircuitBreaker, ResilientExecutor, RetryPolicy
from repro.platform.transport import TransportStats
from repro.service import (
    BULK,
    DEADLINE,
    INTERACTIVE,
    REFRESH,
    RUNG_CACHED,
    RUNG_FULL,
    RUNG_STALE,
    SERVED,
    AdmissionQueue,
    Bulkhead,
    CacheEntry,
    ScoreRequest,
    VerdictCache,
    make_service,
)
from repro.service.cache import EXPIRED, FRESH, MISS, STALE


def request(
    app_id: str = "app",
    priority: str = INTERACTIVE,
    sequence: int = 0,
    arrival_s: float = 0.0,
    deadline_s: float = 60.0,
) -> ScoreRequest:
    return ScoreRequest(
        app_id=app_id,
        arrival_s=arrival_s,
        deadline_s=deadline_s,
        priority=priority,
        sequence=sequence,
    )


def entry(app_id: str = "app", negative: bool = False) -> CacheEntry:
    return CacheEntry(
        app_id=app_id,
        verdict=True,
        risk_score=90.0,
        confidence="high",
        rung=RUNG_FULL,
        negative=negative,
    )


@pytest.fixture(scope="module")
def clean_result():
    """A private fault-free pipeline (module-owned; serving mutates it)."""
    return FrappePipeline(
        ScaleConfig(scale=0.01, master_seed=424242, fault_rate=0.0)
    ).run(sweep_unlabelled=False)


class TestScoreRequest:
    def test_deadline_and_rank(self):
        r = request(priority=BULK, arrival_s=10.0, deadline_s=5.0)
        assert r.deadline_at == pytest.approx(15.0)
        assert r.rank == 1
        assert not r.internal

    def test_refresh_is_internal(self):
        assert request(priority=REFRESH).internal

    def test_validation(self):
        with pytest.raises(ValueError):
            request(priority="vip")
        with pytest.raises(ValueError):
            request(deadline_s=0.0)


class TestAdmissionQueue:
    def test_depth_never_exceeds_bound(self):
        queue = AdmissionQueue(max_depth=3)
        for i in range(10):
            queue.offer(request(f"a{i}", sequence=i))
        assert len(queue) == 3
        assert queue.max_depth_seen == 3

    def test_full_queue_of_equals_rejects_the_arrival(self):
        queue = AdmissionQueue(max_depth=2)
        queue.offer(request("a", sequence=0))
        queue.offer(request("b", sequence=1))
        arrival = request("c", sequence=2)
        assert queue.offer(arrival) == [arrival]
        assert queue.shed_counts[INTERACTIVE] == 1

    def test_interactive_evicts_the_youngest_bulk(self):
        queue = AdmissionQueue(max_depth=3)
        old_bulk = request("b0", priority=BULK, sequence=0)
        young_bulk = request("b1", priority=BULK, sequence=1)
        queue.offer(old_bulk)
        queue.offer(young_bulk)
        queue.offer(request("i0", sequence=2))
        shed = queue.offer(request("i1", sequence=3))
        assert shed == [young_bulk]  # youngest lower-priority entry goes
        assert queue.shed_counts[BULK] == 1
        assert queue.shed_counts[INTERACTIVE] == 0
        assert len(queue) == 3

    def test_refresh_is_shed_before_bulk(self):
        queue = AdmissionQueue(max_depth=2)
        refresh = request("r", priority=REFRESH, sequence=0)
        bulk = request("b", priority=BULK, sequence=1)
        queue.offer(refresh)
        queue.offer(bulk)
        assert queue.offer(request("b2", priority=BULK, sequence=2)) == [refresh]
        assert queue.depth_of(BULK) == 2

    def test_bulk_cannot_displace_interactive(self):
        queue = AdmissionQueue(max_depth=1)
        queue.offer(request("i", sequence=0))
        bulk = request("b", priority=BULK, sequence=1)
        assert queue.offer(bulk) == [bulk]

    def test_pop_is_priority_then_fifo(self):
        queue = AdmissionQueue(max_depth=8)
        queue.offer(request("b0", priority=BULK, sequence=0))
        queue.offer(request("i0", sequence=1))
        queue.offer(request("r0", priority=REFRESH, sequence=2))
        queue.offer(request("i1", sequence=3))
        assert [queue.pop().app_id for _ in range(4)] == ["i0", "i1", "b0", "r0"]
        with pytest.raises(IndexError):
            queue.pop()

    def test_shed_rate_accounting(self):
        queue = AdmissionQueue(max_depth=1)
        queue.offer(request("a", sequence=0))
        queue.offer(request("b", sequence=1))
        assert queue.shed_rate(INTERACTIVE) == pytest.approx(0.5)
        assert queue.shed_rate(BULK) == 0.0
        assert queue.total_shed() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)


class TestVerdictCache:
    def cache(self) -> VerdictCache:
        return VerdictCache(ttl_s=100.0, stale_ttl_s=300.0, negative_ttl_s=1000.0)

    def test_fresh_within_ttl(self):
        cache = self.cache()
        cache.store(entry(), now_s=0.0)
        state, found = cache.lookup("app", now_s=100.0)
        assert state == FRESH
        assert found is not None and found.verdict is True
        assert cache.hits_fresh == 1

    def test_stale_between_ttls(self):
        cache = self.cache()
        cache.store(entry(), now_s=0.0)
        state, found = cache.lookup("app", now_s=200.0)
        assert state == STALE
        assert found is not None
        assert cache.hits_stale == 1

    def test_expired_past_stale_ttl_counts_as_miss(self):
        cache = self.cache()
        cache.store(entry(), now_s=0.0)
        state, found = cache.lookup("app", now_s=301.0)
        assert state == EXPIRED
        assert cache.misses == 1
        # ... but the last resort still surfaces it for the ladder.
        assert cache.last_resort("app") is found

    def test_unknown_app_is_a_miss(self):
        cache = self.cache()
        assert cache.lookup("ghost", now_s=0.0) == (MISS, None)
        assert cache.last_resort("ghost") is None

    def test_negative_entries_use_the_long_ttl_and_skip_stale(self):
        cache = self.cache()
        cache.store(entry(negative=True), now_s=0.0)
        # Fresh far past the positive TTLs...
        assert cache.state_of(cache.last_resort("app"), now_s=900.0) == FRESH
        # ...and expired (not stale) once the negative TTL runs out:
        # a removal needs no revalidation, only eventual expiry.
        assert cache.state_of(cache.last_resort("app"), now_s=1001.0) == EXPIRED

    def test_revalidation_is_single_flight(self):
        cache = self.cache()
        assert cache.begin_revalidation("app")
        assert not cache.begin_revalidation("app")
        cache.abandon_revalidation("app")
        assert cache.begin_revalidation("app")
        cache.store(entry(), now_s=0.0)  # a store resolves the flight
        assert cache.begin_revalidation("app")

    def test_hit_rate(self):
        cache = self.cache()
        assert cache.hit_rate() == 0.0
        cache.store(entry(), now_s=0.0)
        cache.lookup("app", 10.0)
        cache.lookup("ghost", 10.0)
        assert cache.hit_rate() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            VerdictCache(ttl_s=100.0, stale_ttl_s=50.0)


class TestBulkhead:
    def bulkhead(self, **fractions) -> Bulkhead:
        executor = ResilientExecutor(RetryPolicy(), TransportStats())
        return Bulkhead(fractions or {"summary": 0.5}, executor)

    def test_endpoint_gets_its_fraction_of_the_remaining_budget(self):
        bulkhead = self.bulkhead(summary=0.5)
        assert bulkhead.endpoint_deadline(
            "summary", now_s=10.0, deadline_at=110.0
        ) == pytest.approx(60.0)

    def test_unknown_endpoint_gets_the_whole_budget(self):
        bulkhead = self.bulkhead(summary=0.5)
        assert bulkhead.endpoint_deadline(
            "feed", now_s=10.0, deadline_at=110.0
        ) == pytest.approx(110.0)

    def test_never_past_the_overall_deadline(self):
        bulkhead = self.bulkhead(summary=1.0)
        assert bulkhead.endpoint_deadline(
            "summary", now_s=200.0, deadline_at=110.0
        ) == pytest.approx(110.0)

    def test_open_endpoints_reports_open_breakers(self):
        executor = ResilientExecutor(RetryPolicy(), TransportStats())
        bulkhead = Bulkhead({"summary": 0.5}, executor)
        breaker = bulkhead.breaker("summary")
        assert bulkhead.open_endpoints(now_s=0.0) == ()
        for _ in range(breaker.failure_threshold):
            breaker.record_failure(now_s=0.0)
        assert bulkhead.open_endpoints(now_s=0.0) == ("summary",)
        # Past the cooldown the endpoint is probe-able again.
        assert bulkhead.open_endpoints(now_s=breaker.cooldown_s + 1.0) == ()

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            self.bulkhead(summary=0.0)
        with pytest.raises(ValueError):
            self.bulkhead(summary=1.5)


class TestServiceConfig:
    def test_deadline_for_priority(self):
        config = ServiceConfig()
        assert config.deadline_for(INTERACTIVE) == config.interactive_deadline_s
        assert config.deadline_for(BULK) == config.bulk_deadline_s
        assert config.deadline_for(REFRESH) == config.refresh_deadline_s

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            ServiceConfig(cache_ttl_s=100.0, cache_stale_ttl_s=10.0)


class TestVerdictServiceOneShot:
    """End-to-end scoring on a private fault-free world."""

    def test_fault_free_verdicts_match_the_batch_classifier(self, clean_result):
        # The tentpole invariant: fault_rate == 0, cold cache, one
        # request at a time -> bit-identical to FrappeCascade.predict
        # on the records the service crawled.
        service = make_service(clean_result)
        cascade = service._cascade
        sample = sorted(clean_result.bundle.d_sample)[:20]
        for app_id in sample:
            response = service.score(app_id)
            assert response.outcome == SERVED
            assert response.rung == RUNG_FULL  # no faults -> never degraded
            assert response.cache_state == "miss"
            assert response.record is not None
            expected = int(cascade.predict([response.record])[0])
            assert response.verdict == bool(expected)

    def test_second_call_is_a_fresh_cache_hit(self, clean_result):
        service = make_service(clean_result)
        app_id = sorted(clean_result.bundle.d_sample)[0]
        first = service.score(app_id)
        requests_after_first = service.stats.requests
        second = service.score(app_id)
        assert second.outcome == SERVED
        assert second.rung == RUNG_CACHED
        assert second.cache_state == "fresh"
        assert second.verdict == first.verdict
        assert second.attempts == 0
        assert service.stats.requests == requests_after_first  # no crawl
        assert second.latency_s < first.latency_s

    def test_stale_serves_immediately_and_revalidates_in_background(
        self, clean_result
    ):
        config = ServiceConfig(cache_ttl_s=50.0, cache_stale_ttl_s=100_000.0)
        service = make_service(clean_result, config)
        app_id = sorted(clean_result.bundle.d_sample)[0]
        first = service.score(app_id)
        service.stats.add_wait(60.0)  # age the entry past ttl, not stale_ttl
        stale = service.score(app_id)
        assert stale.rung == RUNG_STALE
        assert stale.cache_state == "stale"
        assert stale.confidence == "stale"
        assert stale.verdict == first.verdict
        assert stale.attempts == 0  # the client never waited on a crawl
        # score() drained the scheduled background refresh, so the entry
        # is fresh again — revalidation happened off the client's path.
        third = service.score(app_id)
        assert third.rung == RUNG_CACHED
        assert third.cache_state == "fresh"

    def test_permanent_removal_is_negative_cached(self, clean_result):
        world = clean_result.world
        gone = [
            app_id
            for app_id in sorted(clean_result.bundle.d_sample)
            if (app := world.registry.get(app_id)).deleted_day is not None
            and app.deleted_day <= world.schedule.summary_crawl_day
        ]
        assert gone, "the small world should contain pre-crawl removals"
        service = make_service(clean_result)
        first = service.score(gone[0])
        assert first.outcome == SERVED
        stored = service.cache.last_resort(gone[0])
        assert stored is not None and stored.negative
        second = service.score(gone[0])
        assert second.rung == RUNG_CACHED
        assert second.cache_state == "negative"
        assert second.verdict == first.verdict
        # Negative entries stay fresh far beyond the positive TTL.
        far = service.now_s + service.config.cache_ttl_s * 2
        assert service.cache.state_of(stored, far) == FRESH

    def test_tiny_deadline_degrades_instead_of_failing(self, clean_result):
        # A deadline smaller than one crawl can ever fit still yields a
        # typed, served (degraded) response — never an exception.
        service = make_service(clean_result)
        app_id = sorted(clean_result.bundle.d_sample)[1]
        response = service.score(app_id, deadline_s=0.5)
        assert response.outcome == SERVED
        assert response.rung != RUNG_FULL
        assert "gave up" in response.reason
        record = response.record
        assert record is not None
        assert any(
            "deadline" in outcome.faults
            for outcome in record.outcomes.values()
        )

    def test_queue_aged_requests_expire_with_a_typed_outcome(self, clean_result):
        service = make_service(clean_result)
        app_id = sorted(clean_result.bundle.d_sample)[0]
        aged = ScoreRequest(
            app_id=app_id, arrival_s=0.0, deadline_s=5.0, sequence=1
        )
        service.stats.add_wait(10.0)  # the worker got to it too late
        response = service._handle(aged)
        assert response.outcome == DEADLINE
        assert response.verdict is None
        assert "expired" in response.reason

    def test_breakers_are_shared_with_the_bulkhead(self, clean_result):
        service = make_service(clean_result)
        executor = service._crawler.executor
        for endpoint in ("summary", "feed", "install"):
            assert service._bulkhead.breaker(endpoint) is executor.breakers[endpoint]
            assert (
                executor.breakers[endpoint].failure_threshold
                == service.config.breaker_failure_threshold
            )

    def test_breaker_objects_survive(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0)
        snapshot = breaker.snapshot()
        assert snapshot["probe_in_flight"] is False
