"""Tests for MyPageKeeper: keywords, URL features, classifier, monitor."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mypagekeeper.classifier import UrlClassifier, url_features
from repro.mypagekeeper.keywords import contains_spam_keyword, spam_keyword_count
from repro.mypagekeeper.monitor import AppLabeler, MyPageKeeper
from repro.platform.posts import Post, PostLog
from repro.urlinfra.blacklist import UrlBlacklist


class TestKeywords:
    def test_paper_examples(self):
        assert spam_keyword_count("WOW I just got 5000 Facebook Credits for Free") >= 3
        assert spam_keyword_count("Hurry, exclusive deal!") >= 3

    def test_case_insensitive(self):
        assert contains_spam_keyword("FREE stuff") and contains_spam_keyword("free stuff")

    def test_benign_text(self):
        assert spam_keyword_count("I just reached level 23 in Happy Farm") == 0

    def test_substring_does_not_match(self):
        # 'freedom' contains 'free' but is not a keyword token
        assert spam_keyword_count("freedom of speech") == 0

    @given(st.text(max_size=80))
    def test_count_nonnegative(self, message):
        assert spam_keyword_count(message) >= 0


def _post(post_id, message, link=None, likes=0, comments=0, app="a"):
    return Post(
        post_id=post_id, day=0, user_id=0, app_id=app,
        message=message, link=link, likes=likes, comments=comments,
    )


class TestUrlFeatures:
    def test_single_post_has_zero_similarity(self):
        features = url_features([_post(0, "hello world")])
        assert features.message_similarity == 0.0
        assert features.log_post_count == pytest.approx(np.log1p(1))

    def test_identical_messages_have_similarity_one(self):
        posts = [_post(i, "WOW free credits now") for i in range(4)]
        assert url_features(posts).message_similarity == pytest.approx(1.0)

    def test_engagement_averaging(self):
        posts = [_post(0, "m", likes=2, comments=4), _post(1, "m", likes=6, comments=0)]
        features = url_features(posts)
        assert features.mean_likes == 4.0
        assert features.mean_comments == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            url_features([])


class TestUrlClassifier:
    @pytest.fixture(scope="class")
    def classifier(self):
        return UrlClassifier(UrlBlacklist(), rng=np.random.default_rng(0))

    def test_spam_campaign_flagged(self, classifier):
        posts = [
            _post(i, f"WOW I just got {n} Facebook Credits for Free", likes=0)
            for i, n in enumerate((100, 200, 500, 900, 5000))
        ]
        assert classifier.classify_url("http://spam.com/a", posts)

    def test_benign_single_post_passes(self, classifier):
        posts = [_post(0, "I just reached level 23 in Happy Farm", likes=9, comments=3)]
        assert not classifier.classify_url("http://apps.facebook.com/happyfarm", posts)

    def test_benign_campaign_passes(self, classifier):
        posts = [
            _post(i, f"I scored {i * 37} points playing Happy Farm", likes=8, comments=2)
            for i in range(30)
        ]
        assert not classifier.classify_url("https://apps.facebook.com/hf", posts)

    def test_blacklist_overrides_features(self, classifier):
        classifier.blacklist.add_url("http://evil.com/x", day=0)
        posts = [_post(0, "totally innocuous text", likes=10)]
        assert classifier.classify_url("http://evil.com/x", posts, day=5)
        # ... but not before the listing day
        assert not classifier.classify_url("http://evil.com/x", posts, day=-1)

    def test_classify_many_matches_single(self, classifier):
        spam = [_post(i, "Free iPad hurry, exclusive prize!", likes=0) for i in range(5)]
        ham = [_post(9, "level up in Happy Farm", likes=7, comments=3)]
        batch = classifier.classify_many(
            {"http://spam.com/b": spam, "http://apps.facebook.com/hf": ham}
        )
        assert ("http://spam.com/b" in batch) == classifier.classify_url(
            "http://spam.com/b", spam
        )
        assert ("http://apps.facebook.com/hf" in batch) == classifier.classify_url(
            "http://apps.facebook.com/hf", ham
        )


class TestMonitorAndLabeler:
    def _tiny_world(self):
        log = PostLog()
        # A loud malicious app posting one shared spam URL.
        for index in range(5):
            log.new_post(
                day=index, user_id=index, app_id="evil", app_name="Scam",
                message="WOW free credits, hurry, exclusive prize",
                link="http://spam.com/lure", likes=0, comments=0,
                truth_malicious=True,
            )
        # A benign app with varied posts and no external links.
        for index in range(5):
            log.new_post(
                day=index, user_id=index, app_id="good", app_name="Happy Farm",
                message=f"I just reached level {index * 17} in Happy Farm",
                likes=8, comments=3,
            )
        # A post with no application field (manual post).
        log.new_post(day=9, user_id=1, app_id=None, message="sunny day")
        return log

    def test_scan_flags_the_campaign_only(self, rng):
        log = self._tiny_world()
        report = MyPageKeeper(UrlClassifier(rng=rng), log).scan()
        assert report.posts_scanned == 11
        assert "http://spam.com/lure" in report.flagged_urls
        assert report.flagged_count("evil") == 5
        assert report.flagged_count("good") == 0
        labeler = AppLabeler(report)
        assert labeler.malicious_app_ids() == {"evil"}
        assert labeler.observed_app_ids() == {"evil", "good"}

    def test_scan_day_cutoff(self, rng):
        log = self._tiny_world()
        report = MyPageKeeper(UrlClassifier(rng=rng), log).scan(day=2)
        assert report.posts_scanned == 6  # three evil + three good posts

    def test_malicious_post_ratio(self, rng):
        log = self._tiny_world()
        report = MyPageKeeper(UrlClassifier(rng=rng), log).scan()
        assert report.malicious_post_ratio("evil") == 1.0
        assert report.malicious_post_ratio("good") == 0.0

    def test_flagged_by_apps_fraction(self, rng):
        log = self._tiny_world()
        report = MyPageKeeper(UrlClassifier(rng=rng), log).scan()
        assert report.flagged_by_apps_fraction == 1.0
