"""Invariant tests over the fully built simulated world."""

import numpy as np

from repro.config import ScaleConfig
from repro.ecosystem.simulation import run_simulation
from repro.urlinfra.url import is_facebook_url


class TestWorldInvariants:
    def test_every_app_posts_at_least_once(self, world):
        log = world.post_log
        for app in world.registry.all_apps():
            assert log.post_count(app.app_id) >= 1

    def test_malicious_fraction_near_13_percent(self, world):
        registry = world.registry
        fraction = len(registry.malicious()) / len(registry)
        assert 0.10 <= fraction <= 0.16

    def test_appless_post_fraction(self, world):
        log = world.post_log
        appless = sum(1 for p in log if p.app_id is None)
        assert abs(appless / len(log) - 0.37) < 0.03

    def test_post_days_within_horizon(self, world):
        horizon = world.schedule.horizon_days
        assert all(0 <= p.day < horizon for p in world.post_log)

    def test_truth_labels_consistent_with_registry(self, world):
        truth = world.truth_malicious_ids()
        for post in world.post_log:
            if post.app_id is None:
                continue
            app = world.registry.get(post.app_id)
            if post.truth_malicious and not post.truth_piggybacked:
                # non-forged malicious posts come from malicious apps
                # or from app-less manual shares (app_id None, skipped)
                assert app.truth_malicious or app.app_id in world.piggybacked_ids()

    def test_piggybacked_posts_attributed_to_benign_apps(self, world):
        for post in world.post_log:
            if post.truth_piggybacked:
                app = world.registry.get(post.app_id)
                assert not app.truth_malicious

    def test_loud_apps_are_malicious(self, world):
        truth = world.truth_malicious_ids()
        assert world.loud_app_ids() <= truth

    def test_colluding_subset_of_malicious(self, world):
        assert world.colluding_truth_ids() <= world.truth_malicious_ids()

    def test_indirection_sites_registered_and_targeted(self, world):
        truth = world.truth_malicious_ids()
        sites = world.services.redirector.sites()
        assert sites
        for site in sites:
            assert site.target_app_ids
            assert set(site.target_app_ids) <= truth

    def test_moderation_removed_more_malicious_than_benign(self, world):
        day = world.schedule.summary_crawl_day
        malicious = world.registry.malicious()
        benign = world.registry.benign()
        malicious_alive = np.mean([not a.is_deleted(day) for a in malicious])
        benign_alive = np.mean([not a.is_deleted(day) for a in benign])
        assert benign_alive > 0.9
        assert 0.25 < malicious_alive < 0.6
        assert benign_alive > malicious_alive

    def test_short_links_accumulated_clicks(self, world):
        links = [
            link
            for shortener in world.services.shorteners.values()
            for link in shortener.all_links()
        ]
        assert links
        assert all(link.total_clicks >= 1 for link in links)
        unresolvable = np.mean([not link.resolvable for link in links])
        assert 0.02 < unresolvable < 0.2

    def test_mau_series_cover_crawl_months(self, world):
        months = world.schedule.crawl_months
        for app in world.registry.all_apps():
            assert len(app.mau_series) == months

    def test_socialbakers_vets_only_benign(self, world):
        vetted = world.socialbakers.vetted_app_ids()
        assert vetted
        assert vetted <= {a.app_id for a in world.registry.benign()}

    def test_spam_domain_pool_seeded(self, world):
        pool = world.services.spam_domain_pool
        assert len(pool) >= 2
        weights = world.services.spam_domain_weights
        assert weights is not None
        assert np.isclose(weights.sum(), 1.0)

    def test_benign_links_rarely_external(self, world):
        log = world.post_log
        external = internal = 0
        for app in world.registry.benign()[:100]:
            for url, count in log.urls_of_app(app.app_id).items():
                if is_facebook_url(url):
                    internal += count
                else:
                    external += count
        assert internal > external


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = ScaleConfig(scale=0.01, master_seed=99)
        world_a = run_simulation(config)
        world_b = run_simulation(ScaleConfig(scale=0.01, master_seed=99))
        assert len(world_a.post_log) == len(world_b.post_log)
        ids_a = sorted(a.app_id for a in world_a.registry.all_apps())
        ids_b = sorted(a.app_id for a in world_b.registry.all_apps())
        assert ids_a == ids_b
        post_a = world_a.post_log.get(100)
        post_b = world_b.post_log.get(100)
        assert post_a.message == post_b.message
        assert post_a.link == post_b.link

    def test_different_seed_different_world(self):
        world_a = run_simulation(ScaleConfig(scale=0.01, master_seed=1))
        world_b = run_simulation(ScaleConfig(scale=0.01, master_seed=2))
        ids_a = sorted(a.app_id for a in world_a.registry.all_apps())
        ids_b = sorted(a.app_id for a in world_b.registry.all_apps())
        assert ids_a != ids_b
