"""Tests for the ASCII CDF/bar renderers."""

from hypothesis import given, settings, strategies as st

from repro.analysis.curves import ascii_bars, ascii_cdf


class TestAsciiCdf:
    def test_basic_shape(self):
        text = ascii_cdf({"a": [1, 2, 3, 4, 5]}, width=20, height=6, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 6 + 3  # title + grid + axis + ticks + legend
        assert "100%" in lines[1]
        assert "a" in lines[-1]

    def test_log_scale_drops_nonpositive(self):
        text = ascii_cdf({"a": [0, 10, 100, 1000]}, log_x=True)
        assert "[log x]" in text
        assert "10" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_cdf({"a": []}, title="x")

    def test_multiple_series_get_distinct_glyphs(self):
        text = ascii_cdf({"one": [1, 2], "two": [3, 4]})
        legend = text.splitlines()[-1]
        assert "* one" in legend and "o two" in legend

    def test_constant_data_does_not_crash(self):
        text = ascii_cdf({"a": [5, 5, 5]})
        assert "100%" in text

    @settings(deadline=None)
    @given(
        values=st.lists(st.floats(0.1, 1e6), min_size=1, max_size=50),
        log_x=st.booleans(),
    )
    def test_never_crashes_on_positive_data(self, values, log_x):
        text = ascii_cdf({"s": values}, log_x=log_x)
        assert isinstance(text, str) and text


class TestAsciiBars:
    def test_fractions_render(self):
        text = ascii_bars([("benign", 0.9), ("malicious", 0.1)], maximum=1.0)
        lines = text.splitlines()
        assert "90.0%" in lines[0]
        assert "10.0%" in lines[1]
        assert lines[0].count("#") > lines[1].count("#")

    def test_empty_rows(self):
        assert ascii_bars([], title="nothing") == "nothing"

    def test_values_above_maximum_are_clipped(self):
        text = ascii_bars([("x", 2.0)], width=10, maximum=1.0)
        assert "#" * 10 in text
