"""Shared fixtures: one small simulated world per test session.

Building a world and running the pipeline is the expensive part, so the
suite shares session-scoped instances at ``scale=0.01``; tests must not
mutate them (tests that need mutation build their own tiny worlds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ScaleConfig
from repro.core.pipeline import FrappePipeline, PipelineResult
from repro.collusion.appnets import CollusionAnalyzer, CollusionGraph
from repro.ecosystem.simulation import SimulatedWorld, run_simulation

TEST_SCALE = 0.01
TEST_SEED = 424242


@pytest.fixture(scope="session")
def world() -> SimulatedWorld:
    """A small, fully built world (shared; do not mutate)."""
    return run_simulation(ScaleConfig(scale=TEST_SCALE, master_seed=TEST_SEED))


@pytest.fixture(scope="session")
def pipeline_result(world: SimulatedWorld) -> PipelineResult:
    """The measurement pipeline over the shared world, sweep included."""
    return FrappePipeline().run_on_world(world, sweep_unlabelled=True)


@pytest.fixture(scope="session")
def collusion(pipeline_result: PipelineResult) -> CollusionGraph:
    analyzer = CollusionAnalyzer(pipeline_result.world, probe_visits=1500)
    return analyzer.discover()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
